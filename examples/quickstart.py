#!/usr/bin/env python
"""Quickstart: record a racy execution, replay it, slice the failure.

This walks the core DrDebug loop on a minimal data race (the paper's
Figure 5 shape): thread2 assumes ``k = 5; k = k + x`` runs atomically
with respect to ``x``, but thread1 writes ``x`` concurrently.

Run:  python examples/quickstart.py
"""

from repro import (
    RandomScheduler,
    RegionSpec,
    SlicingSession,
    compile_source,
    record_region,
    replay,
)

SOURCE = r"""
int x; int y; int z;

int thread1(int unused) {
    z = 1;
    x = z + 1;          // racy write: the root cause
    y = x + 1;
    return 0;
}

int thread2(int unused) {
    int k;
    k = 5;
    k = k + x;          // reads x mid-"atomic" region
    assert(k == 5, 13); // the symptom
    return 0;
}

int main() {
    int a; int b;
    a = spawn(thread1, 0);
    b = spawn(thread2, 0);
    join(a);
    join(b);
    return 0;
}
"""


def main():
    program = compile_source(SOURCE, name="quickstart")

    # 1. Hunt for a schedule that trips the race, recording it as a
    #    pinball the moment we find it.
    pinball = None
    for seed in range(64):
        candidate = record_region(
            program, RandomScheduler(seed=seed, switch_prob=0.4),
            RegionSpec())
        if candidate.meta["failure"]:
            pinball = candidate
            print("seed %d exposed the race: %r"
                  % (seed, candidate.meta["failure"]))
            break
    assert pinball is not None, "no seed exposed the race"
    print("pinball: %d instructions, %d bytes compressed"
          % (pinball.total_instructions, pinball.size_bytes()))

    # 2. Deterministic replay: the failure reproduces, every time.
    for iteration in range(3):
        machine, result = replay(pinball, program)
        print("replay %d -> failure %r (deterministic)"
              % (iteration + 1, result.failure["code"]))

    # 3. Dynamic slice at the failure: who influenced k?
    session = SlicingSession(pinball, program)
    dslice = session.slice_for(session.failure_criterion())
    print("\nslice: %d instruction instances across threads %s"
          % (len(dslice), sorted(dslice.threads())))
    for func, line in sorted(dslice.source_statements(),
                             key=lambda fl: (fl[0] or "", fl[1] or 0)):
        if func:
            print("   %s:%s" % (func, line))
    print("\nthread1's 'x = z + 1' is in the slice: the race is exposed.")

    # 4. Execution slice: replay only the slice, skipping everything else.
    slice_pb = session.make_slice_pinball(dslice)
    machine, result = replay(slice_pb, program, verify=False)
    print("\nslice pinball: kept %d of %d instructions, skipped %d "
          "excluded runs, failure still reproduces: %r"
          % (slice_pb.meta["kept_instructions"],
             slice_pb.meta["region_instructions"],
             machine.skipped_exclusions,
             result.failure["code"]))


if __name__ == "__main__":
    main()
