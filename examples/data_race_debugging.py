#!/usr/bin/env python
"""Cyclic debugging of the pbzip2 use-after-destroy race (paper Table 1).

The scenario: a parallel compressor's main thread tears down the work
queue (and its mutex) while compressor threads are still using it — the
pbzip2 0.9.4 bug shape.  The workflow follows the paper's Figure 2:

1. expose the bug under a seeded schedule and log the *whole* execution;
2. measure the warm-up and re-log just the *buggy region* (fast-forward
   past the file-reading phase);
3. cyclic debugging: multiple gdb-style sessions over the same pinball,
   observing the identical program state each time;
4. slice the failure to the root cause and step the execution slice.

Run:  python examples/data_race_debugging.py
"""

from repro import RandomScheduler, RegionSpec, record_region
from repro.debugger import DrDebugCLI, DrDebugSession
from repro.workloads import get_bug


def banner(text):
    print("\n" + "=" * 64)
    print(text)
    print("=" * 64)


def main():
    workload = get_bug("pbzip2")
    program = workload.build(warmup=600)
    source = workload.source(warmup=600)

    banner("1. Exposing the race (seed search) and logging the whole run")
    whole_pinball, seed = workload.expose(program, seeds=range(64))
    assert whole_pinball is not None
    print("seed %d failed with code %d" % (
        seed, whole_pinball.meta["failure"]["code"]))
    print("whole-program pinball: %d instructions, %d bytes"
          % (whole_pinball.total_instructions, whole_pinball.size_bytes()))

    banner("2. Re-logging just the buggy region (skip the warm-up)")
    skip = workload.buggy_region_skip(program, seed)
    region_pinball = record_region(
        program, RandomScheduler(seed=seed, switch_prob=workload.switch_prob),
        RegionSpec(skip=skip))
    print("skip=%d; region pinball: %d instructions (%.1f%% of whole), "
          "%d bytes" % (
              skip, region_pinball.total_instructions,
              100.0 * region_pinball.total_instructions
              / whole_pinball.total_instructions,
              region_pinball.size_bytes()))
    assert region_pinball.meta["failure"] is not None

    banner("3. Cyclic debugging: two identical debug sessions")
    for iteration in (1, 2):
        cli = DrDebugCLI(DrDebugSession(region_pinball, program,
                                        source=source))
        print("--- debug iteration %d ---" % iteration)
        print(cli.execute("break compressor"))
        print(cli.execute("run"))
        print(cli.execute("print fifo_valid"))
        print(cli.execute("print fifo_head"))
        print(cli.execute("info threads"))
        print(cli.execute("continue"))

    banner("4. Slicing the failure down to the root cause")
    cli = DrDebugCLI(DrDebugSession(region_pinball, program, source=source))
    print(cli.execute("slice-failure"))
    print()
    print(cli.execute("slice-info"))

    banner("5. Execution slice: replaying only what matters")
    print(cli.execute("slice-pinball"))
    print(cli.execute("slice-replay"))
    for _ in range(8):
        out = cli.execute("slice-step")
        print(out)
        if "finished" in out:
            break
        print("   %s" % cli.execute("print fifo_valid"))

    print("\nRoot cause visible in the slice: main's teardown "
          "(fifo_valid = 0) races with the compressors' assert.")


if __name__ == "__main__":
    main()
