#!/usr/bin/env python
"""Slicing a heap use-after-free back to the racing delete.

The scenario: a walker thread chases a linked list of heap nodes while
a reaper thread tears the list down with ``delete`` — the classic
use-after-free shape.  Under poison mode the allocator stamps freed
words with ``0xDEADBEEF``, so the stale read is *observable* and, more
importantly, *attributable*: the poison stores are recorded against the
freeing instruction, so the failure's dynamic slice walks straight from
the poisoned load to the ``delete`` that raced with it.

The workflow:

1. expose the race under a seeded schedule (poison mode on) and log it;
2. replay deterministically — same failure, same poisoned value;
3. slice the failing assert; the slice lands on the reaper's ``delete``.

Run:  python examples/pointer_chasing.py
"""

from repro.pinplay import replay
from repro.slicing import SliceOptions, SlicingSession
from repro.vm import HEAP_POISON
from repro.workloads import get_pointer_bug


def banner(text):
    print("\n" + "=" * 64)
    print(text)
    print("=" * 64)


def main():
    workload = get_pointer_bug("uaf_chase")
    program = workload.build()
    source = workload.source()
    source_lines = source.splitlines()

    banner("1. Exposing the use-after-free (poison mode, seed search)")
    pinball, seed = workload.expose(program, seeds=range(64))
    assert pinball is not None
    failure = pinball.meta["failure"]
    print("seed %d: walker hit poisoned node, assert code %d "
          "(tid=%d, pc=%d)" % (seed, failure["code"], failure["tid"],
                               failure["pc"]))
    print("pinball carries poison mode: %r"
          % pinball.to_dict()["snapshot"]["memory"].get("poison", False))

    banner("2. Deterministic replay reproduces the poisoned read")
    _machine, result = replay(pinball, program)
    assert result.failure is not None
    assert result.failure["code"] == failure["code"]
    print("replayed failure code %d at the same dynamic instruction "
          "(tid=%d seq=%d)" % (result.failure["code"],
                               result.failure["tid"],
                               result.failure["seq"]))
    print("heap poison constant: %d (0x%X as unsigned 32-bit)"
          % (HEAP_POISON, HEAP_POISON & 0xFFFFFFFF))

    banner("3. Slicing the failure back to the racing delete")
    session = SlicingSession(pinball, program, SliceOptions(index="ddg"),
                             engine="predecoded")
    dslice = session.slice_for(session.failure_criterion())
    slice_lines = sorted({node.line for node in dslice.nodes.values()
                          if node.line is not None})
    print("failure slice: %d nodes over %d source lines"
          % (len(dslice.nodes), len(slice_lines)))

    delete_line = next(i for i, text in enumerate(source_lines, 1)
                       if "delete n;" in text)
    load_line = next(i for i, text in enumerate(source_lines, 1)
                     if "v = n->value" in text)
    assert delete_line in slice_lines, "slice missed the delete site"
    assert load_line in slice_lines, "slice missed the poisoned load"

    print("\nslice source lines (root-cause neighborhood):")
    for line in slice_lines:
        text = source_lines[line - 1].rstrip()
        marker = ""
        if line == delete_line:
            marker = "   <-- racing delete (root cause)"
        elif line == load_line:
            marker = "   <-- poisoned load (symptom)"
        print("  %3d: %s%s" % (line, text, marker))

    print("\nRoot cause visible in the slice: the reaper's 'delete n;' "
          "races with the walker's 'v = n->value' — the poison stores "
          "recorded at the delete site are the memory dependence the "
          "slice follows from the failing assert.")


if __name__ == "__main__":
    main()
