#!/usr/bin/env python
"""Exposing a hard-to-reproduce bug with Maple, then debugging it.

The bug: a classic unlocked read-modify-write (lost update).  Under the
round-robin-ish schedules a normal run produces, the two increments never
interleave and the program always passes — the "programmer hit it once
but cannot reproduce it" situation.  Maple's profiler observes the
benign interleavings, predicts the untested ones, and the active
scheduler forces them — under the PinPlay logger, so the first failing
run is captured in a pinball ready for cyclic debugging (paper Section 6,
"Integration with Maple").

Run:  python examples/maple_expose.py
"""

from repro import Machine, RoundRobinScheduler, SlicingSession, compile_source, replay
from repro.maple import expose_and_record

SOURCE = r"""
int hits;
int worker(int unused) {
    hits = hits + 1;       // unlocked read-modify-write
    return 0;
}
int main() {
    int a; int b;
    a = spawn(worker, 0);
    b = spawn(worker, 0);
    join(a);
    join(b);
    assert(hits == 2, 99); // lost update -> hits == 1
    return 0;
}
"""


def main():
    program = compile_source(SOURCE, name="lost-update")

    print("Plain runs never fail (the bug hides):")
    for trial in range(5):
        machine = Machine(program, scheduler=RoundRobinScheduler())
        machine.run(max_steps=100_000)
        print("  run %d: %s" % (
            trial + 1, "FAILED" if machine.failure else "passed"))

    print("\nMaple: profile, predict untested interleavings, force them...")
    result = expose_and_record(program, profile_seeds=range(4),
                               max_active_runs=50)
    assert result.exposed, "Maple could not expose the bug"
    print("exposed by: %s" % result.exposed_by)
    if result.iroot is not None:
        print("forced iRoot: %s" % result.iroot.describe(program))
    print("profiling runs: %d, active-scheduler runs: %d (of %d candidates)"
          % (result.profile_runs, result.active_runs, result.candidates))

    print("\nThe recorded pinball replays the failure deterministically:")
    for trial in range(3):
        machine, run = replay(result.pinball, program)
        print("  replay %d: failure code %r at tid %d"
              % (trial + 1, run.failure["code"], run.failure["tid"]))

    print("\nSlice of the failing assert:")
    session = SlicingSession(result.pinball, program)
    dslice = session.slice_for(session.failure_criterion())
    for func, line in sorted(dslice.source_statements(),
                             key=lambda fl: (fl[0] or "", fl[1] or 0)):
        if func:
            print("   %s:%s" % (func, line))
    print("\nOnly ONE worker's increment reaches the final value of hits —")
    print("the slice itself shows the other update was lost.")


if __name__ == "__main__":
    main()
