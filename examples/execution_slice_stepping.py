#!/usr/bin/env python
"""Execution-slice stepping: examine values *along* a slice, live.

The paper's headline slicing feature (Section 4): prior slicers only let
you inspect a slice post-mortem; DrDebug relogs the slice into a *slice
pinball* whose replay skips all excluded code, then lets you step from
one slice statement to the next with the full machine state inspectable
at each stop.

The program below threads a value through a chain of computations,
interleaved with a lot of irrelevant work; the slice of the final result
is small, and stepping it visits exactly the relevant statements.

Run:  python examples/execution_slice_stepping.py
"""

from repro import RegionSpec, RoundRobinScheduler, compile_source, record_region
from repro.debugger import DrDebugSession, SliceNavigator
from repro.slicing import SlicingSession

SOURCE = r"""
int seed_val; int stage1; int stage2; int result;
int noise; int more_noise;

int main() {
    int i;
    seed_val = 13;
    for (i = 0; i < 60; i = i + 1) {
        noise = noise + i * 3;          // irrelevant
    }
    stage1 = seed_val * 2;
    for (i = 0; i < 60; i = i + 1) {
        more_noise = more_noise ^ i;    // irrelevant
    }
    stage2 = stage1 + 16;
    result = stage2 * stage2;
    print(result);
    return 0;
}
"""


def main():
    program = compile_source(SOURCE, name="slice-stepping")
    pinball = record_region(program, RoundRobinScheduler(), RegionSpec())
    print("region: %d instructions" % pinball.total_instructions)

    session = SlicingSession(pinball, program)
    dslice = session.slice_for_global("result")
    print("slice of `result`: %d instances (%.1f%% of the region)"
          % (len(dslice),
             100.0 * len(dslice) / pinball.total_instructions))

    print("\nBackward navigation along dependences (the KDbg 'Activate'):")
    navigator = SliceNavigator(dslice, program, source=SOURCE)
    print(navigator.render_cursor())
    navigator.activate(0)
    print("  -> activated first dependence:")
    print(navigator.render_cursor())

    print("\nAnnotated source (>> marks slice lines):")
    for line in navigator.render_source().splitlines():
        if line.startswith((">>", "=>")):
            print(line)

    print("\nGenerating the slice pinball and stepping the execution slice:")
    debugger = DrDebugSession(pinball, program, source=SOURCE)
    debugger.current_slice = dslice
    debugger._slicing = session          # reuse the traced replay
    slice_pb = debugger.make_slice_pinball()
    print("slice pinball keeps %d of %d instructions (%d excluded runs)"
          % (slice_pb.meta["kept_instructions"],
             slice_pb.meta["region_instructions"],
             slice_pb.meta["excluded_runs"]))

    child = debugger.replay_slice()
    last_line = None
    for _ in range(400):
        message = child.slice_step()
        if "finished" in message:
            break
        line = child.current_line()
        if line == last_line:
            continue                      # several instructions per line
        last_line = line
        values = {name: child.print_var(name)
                  for name in ("seed_val", "stage1", "stage2", "result")}
        print("  stopped at line %-3s  %s" % (line, values))

    print("\nEvery stop was a slice statement; the noise loops were "
          "skipped entirely by the replayer.")


if __name__ == "__main__":
    main()
