#!/usr/bin/env python
"""Reverse debugging and race detection over one recorded pinball.

Two extensions built on DrDebug's determinism:

* **Reverse execution** (sketched in the paper's Section 8): checkpoints
  taken during forward replay let the debugger step and continue
  *backwards* — a rewind is just "restore the nearest checkpoint, replay
  forward the difference", and determinism guarantees bit-identical state.
* **Happens-before race detection** (the Tallam et al. line of work the
  paper cites): a vector-clock detector runs as a replay tool, so every
  reported race is concrete and its endpoints are immediately usable as
  slicing criteria.

The session below records a lost-update failure once, then: detects the
racy pair, runs to the failure, walks *backwards* to watch the damage
undo itself, and slices one race endpoint.

Run:  python examples/reverse_debugging.py
"""

from repro import RandomScheduler, RegionSpec, compile_source, record_region
from repro.debugger import DrDebugCLI, DrDebugSession
from repro.detect import detect_races
from repro.slicing import SlicingSession

SOURCE = r"""
int hits; int done;

int worker(int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        hits += 1;            // unlocked read-modify-write
    }
    done += 1;
    return 0;
}

int main() {
    int a; int b;
    a = spawn(worker, 6);
    b = spawn(worker, 6);
    join(a);
    join(b);
    assert(hits == 12, 44);
    return 0;
}
"""


def main():
    program = compile_source(SOURCE, name="reverse-demo")
    pinball = None
    for seed in range(200):
        candidate = record_region(
            program, RandomScheduler(seed=seed, switch_prob=0.35),
            RegionSpec())
        if candidate.meta["failure"]:
            pinball = candidate
            print("lost update exposed with seed %d (final hits < 12)"
                  % seed)
            break
    assert pinball is not None

    print("\n--- happens-before race detection over the pinball ---")
    races = detect_races(pinball, program)
    for race in races:
        print("  " + race.describe(program))

    print("\n--- forward to the failure, then backwards through it ---")
    session = DrDebugSession(pinball, program, source=SOURCE)
    session.enable_reverse_debugging(interval=50)
    cli = DrDebugCLI(session)
    print(cli.execute("run"))
    print("hits at the failure: %s" % cli.execute("print hits"))

    print("\nreverse-stepping; watch hits unwind:")
    previous = None
    for _ in range(40):
        cli.execute("rsi 10")
        value = session.print_var("hits")
        if value != previous:
            print("  steps_done=%-5d hits=%s" % (session.steps_done, value))
            previous = value
        if session.steps_done == 0:
            break

    print("\n--- reverse-continue between breakpoint hits ---")
    session2 = DrDebugSession(pinball, program, source=SOURCE)
    session2.enable_reverse_debugging(interval=50)
    cli2 = DrDebugCLI(session2)
    cli2.execute("break worker")
    print(cli2.execute("run"))            # first worker entry
    print(cli2.execute("continue"))       # second worker entry
    print(cli2.execute("rc"))             # back to the first, exactly
    print("hits here: %s" % cli2.execute("print hits"))

    print("\n--- slicing a race endpoint ---")
    slicing = SlicingSession(pinball, program)
    endpoint = races[0].second_instance
    dslice = slicing.slice_for(endpoint)
    print("slice of the racy access (%d instances):" % len(dslice))
    for func, line in sorted(dslice.source_statements(),
                             key=lambda fl: (fl[0] or "", fl[1] or 0)):
        if func:
            print("   %s:%s" % (func, line))


if __name__ == "__main__":
    main()
