"""Deprecation shims for the unified public API surface.

The slice entry points (``DrDebugSession.slice_for_variable``,
``SlicingSession.slice_for_global``, the serve ``slice`` verb) grew
three different criterion keyword vocabularies over four PRs; they now
share one (``global_name=``, ``line=``, ``tid=``, ``instance=``).  The
old keywords keep working through :func:`deprecated_kwarg` — callers
get a :class:`DeprecationWarning` naming the replacement, and passing
both the old and the new spelling is a :class:`TypeError` rather than a
silent pick.
"""

from __future__ import annotations

import warnings

__all__ = ["deprecated_field", "deprecated_kwarg"]


def deprecated_kwarg(old_name: str, old_value, new_name: str, new_value,
                     stacklevel: int = 3):
    """Resolve one renamed keyword argument.

    Returns ``new_value`` when the old spelling was not used; otherwise
    warns (``DeprecationWarning``) and returns ``old_value``.  Passing
    both spellings raises ``TypeError``.
    """
    if old_value is None:
        return new_value
    warnings.warn("keyword %r is deprecated; use %r"
                  % (old_name, new_name), DeprecationWarning,
                  stacklevel=stacklevel)
    if new_value is not None:
        raise TypeError("got both %r and its deprecated alias %r"
                        % (new_name, old_name))
    return old_value


_MISSING = object()


def deprecated_field(payload: dict, old_name: str, new_name: str,
                     default=_MISSING, stacklevel: int = 3):
    """Read ``payload[new_name]``, accepting the deprecated spelling.

    Analysis-report payloads (``races``, ``hunt``, maple) are produced
    under one versioned schema (:mod:`repro.analysis.report`); pre-schema
    payloads spelled some fields differently (``race_count``,
    ``candidates``).  This reads the canonical key, falls back to the old
    spelling with a :class:`DeprecationWarning`, and raises ``KeyError``
    (or returns ``default`` when given) if neither is present.
    """
    if new_name in payload:
        return payload[new_name]
    if old_name in payload:
        warnings.warn("payload field %r is deprecated; use %r"
                      % (old_name, new_name), DeprecationWarning,
                      stacklevel=stacklevel)
        return payload[old_name]
    if default is not _MISSING:
        return default
    raise KeyError(new_name)
