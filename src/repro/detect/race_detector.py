"""Happens-before race detection as a replay tool.

Per-thread vector clocks advance one tick per retired instruction, so
every access carries a scalar *epoch* ``(tid, clock)`` — the FastTrack
representation.  Happens-before edges come from the guest's
synchronization operations:

* ``spawn``: the child starts with (a copy of) the parent's clock;
* ``join``: the parent joins the child's exit clock;
* ``unlock m`` → later ``lock m``: the acquirer joins the clock stored at
  the last release of ``m``.

For every address in the watched range (the globals segment by default —
where program-level shared state lives), the detector keeps the last
write epoch and the last read epoch per thread; an access that is
concurrent with a conflicting previous access is a race.  Because the
analysis runs over a *pinball replay*, every report is reproducible and
its endpoints are (tid, tindex) instances usable directly as slicing
criteria.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.detect.vector_clock import VectorClock
from repro.isa.program import Program
from repro.obs.registry import OBS
from repro.pinplay.pinball import Pinball
from repro.pinplay.replayer import replay
from repro.vm.hooks import InstrEvent, SyscallEvent, Tool

Instance = Tuple[int, int]


@dataclass(frozen=True)
class RaceReport:
    """One detected race: two concurrent conflicting accesses."""

    addr: int
    kind: str                  # "write-write" | "read-write" | "write-read"
    first_pc: int
    second_pc: int
    first_instance: Instance
    second_instance: Instance

    def site_pair(self) -> Tuple[int, int, int]:
        """Static identity for deduplication: (addr, pc, pc) unordered."""
        low, high = sorted((self.first_pc, self.second_pc))
        return (self.addr, low, high)

    def describe(self, program: Optional[Program] = None) -> str:
        def site(pc: int, instance: Instance) -> str:
            if program is None:
                return "pc %d (tid %d)" % (pc, instance[0])
            function = program.function_at(pc)
            return "%s:%s (tid %d, pc %d)" % (
                function.name if function else "?",
                program.line_of(pc), instance[0], pc)

        location = "mem[%d]" % self.addr
        if program is not None:
            for var in program.globals.values():
                if var.addr <= self.addr < var.addr + max(1, var.size):
                    offset = self.addr - var.addr
                    location = var.name if not var.is_array else (
                        "%s[%d]" % (var.name, offset))
                    break
        return "%s race on %s: %s || %s" % (
            self.kind, location,
            site(self.first_pc, self.first_instance),
            site(self.second_pc, self.second_instance))


class RaceDetectorTool(Tool):
    """Vector-clock happens-before detector attached to a replay."""

    wants_instr_events = True

    def __init__(self, watch_low: int = 0,
                 watch_high: Optional[int] = None) -> None:
        self.watch_low = watch_low
        self.watch_high = watch_high
        self.races: List[RaceReport] = []
        self._seen_pairs: Set[Tuple[int, int, int]] = set()
        self._clocks: Dict[int, VectorClock] = {}
        self._exit_clocks: Dict[int, VectorClock] = {}
        self._release_clocks: Dict[int, VectorClock] = {}
        self._barrier_round_clocks: Dict[int, VectorClock] = {}
        self._barrier_pending: Dict[int, set] = {}
        self._machine = None
        # addr -> (tid, clock, pc, tindex) of the last write.
        self._writes: Dict[int, Tuple[int, int, int, int]] = {}
        # addr -> tid -> (clock, pc, tindex) of that thread's last read.
        self._reads: Dict[int, Dict[int, Tuple[int, int, int]]] = {}

    # -- clock helpers -------------------------------------------------------

    def _clock(self, tid: int) -> VectorClock:
        clock = self._clocks.get(tid)
        if clock is None:
            clock = VectorClock()
            self._clocks[tid] = clock
        return clock

    def _epoch_before(self, tid: int, clock_value: int,
                      observer: VectorClock) -> bool:
        """Did epoch (tid, clock_value) happen-before the observer clock?"""
        return clock_value <= observer.get(tid)

    # -- lifecycle / synchronization ----------------------------------------------

    def on_start(self, machine) -> None:
        self._machine = machine

    def on_thread_start(self, tid, parent, start_pc, arg) -> None:
        clock = self._clock(tid)
        if parent is not None:
            clock.join(self._clock(parent))
        clock.tick(tid)

    def on_thread_exit(self, tid, exit_value) -> None:
        self._exit_clocks[tid] = self._clock(tid).copy()

    def on_syscall(self, event: SyscallEvent) -> None:
        clock = self._clock(event.tid)
        if event.name == "spawn":
            # The child's start clock was joined in on_thread_start (which
            # fires during this syscall); advance the parent past it.
            clock.tick(event.tid)
        elif event.name == "join":
            child = int(event.args[0])
            exit_clock = self._exit_clocks.get(child)
            if exit_clock is not None:
                clock.join(exit_clock)
        elif event.name == "lock":
            release = self._release_clocks.get(int(event.args[0]))
            if release is not None:
                clock.join(release)
        elif event.name == "unlock":
            self._release_clocks[int(event.args[0])] = clock.copy()
            clock.tick(event.tid)
        elif event.name == "barrier":
            self._on_barrier(event, clock)

    def _on_barrier(self, event: SyscallEvent, clock: VectorClock) -> None:
        """Barriers are full synchronization points: every participant's
        pre-barrier history happens-before every participant's
        post-barrier code.

        The releasing (n-th) arrival completes its syscall first; at that
        moment the other participants sit blocked with their clocks frozen
        at arrival time, listed in the machine's ``released`` set — so the
        round clock can be assembled right there.  Each released
        participant joins the round clock when its retried syscall
        completes (tracked in a pending set, since the machine removes the
        thread from ``released`` before this event fires)."""
        addr = int(event.args[0])
        pending = self._barrier_pending.get(addr)
        if pending is not None and event.tid in pending:
            # Retry completion of a previously released participant.
            clock.join(self._barrier_round_clocks[addr])
            pending.discard(event.tid)
        else:
            # The releasing arrival (or a trivial 1-thread barrier).
            peers = set()
            if self._machine is not None:
                state = self._machine.barriers.get(addr)
                if state is not None:
                    peers = set(state["released"])
            round_clock = clock.copy()
            for peer in peers:
                round_clock.join(self._clock(peer))
            clock.join(round_clock)
            self._barrier_round_clocks[addr] = round_clock
            self._barrier_pending[addr] = peers
        clock.tick(event.tid)

    # -- accesses ------------------------------------------------------------------

    def _watched(self, addr: int) -> bool:
        if addr < self.watch_low:
            return False
        return self.watch_high is None or addr < self.watch_high

    def on_instr(self, event: InstrEvent) -> None:
        tid = event.tid
        clock = self._clock(tid)
        now = clock.tick(tid)

        for addr, _value in event.mem_reads:
            if not self._watched(addr):
                continue
            write = self._writes.get(addr)
            if write is not None:
                w_tid, w_clock, w_pc, w_tindex = write
                if w_tid != tid and not self._epoch_before(
                        w_tid, w_clock, clock):
                    self._report(addr, "write-read",
                                 (w_pc, (w_tid, w_tindex)),
                                 (event.addr, (tid, event.tindex)))
            self._reads.setdefault(addr, {})[tid] = (
                now, event.addr, event.tindex)

        for addr, _value in event.mem_writes:
            if not self._watched(addr):
                continue
            write = self._writes.get(addr)
            if write is not None:
                w_tid, w_clock, w_pc, w_tindex = write
                if w_tid != tid and not self._epoch_before(
                        w_tid, w_clock, clock):
                    self._report(addr, "write-write",
                                 (w_pc, (w_tid, w_tindex)),
                                 (event.addr, (tid, event.tindex)))
            for r_tid, (r_clock, r_pc, r_tindex) in self._reads.get(
                    addr, {}).items():
                if r_tid != tid and not self._epoch_before(
                        r_tid, r_clock, clock):
                    self._report(addr, "read-write",
                                 (r_pc, (r_tid, r_tindex)),
                                 (event.addr, (tid, event.tindex)))
            self._writes[addr] = (tid, now, event.addr, event.tindex)

    def _report(self, addr: int, kind: str, first, second) -> None:
        report = RaceReport(
            addr=addr, kind=kind,
            first_pc=first[0], second_pc=second[0],
            first_instance=first[1], second_instance=second[1])
        key = report.site_pair()
        if key not in self._seen_pairs:
            self._seen_pairs.add(key)
            self.races.append(report)


def detect_races(pinball: Pinball, program: Program,
                 globals_only: bool = True,
                 online: Optional[bool] = None) -> List[RaceReport]:
    """Replay ``pinball`` under the race detector; returns unique races.

    ``globals_only`` restricts the watch to the globals segment (program-
    level shared state); pass False to watch the full address space
    (heap and stacks too — slower, and cross-thread stack accesses are
    rare by construction).

    ``online`` selects the detector path: True runs the recorder-protocol
    detector over an *untraced* replay (one fast pass, no events — see
    :mod:`repro.detect.online`), False forces the classic traced tool.
    The default resolves through :func:`repro.config.detect_online` and
    falls back to the traced path automatically when the pinball cannot
    ride the fast path (slice pinballs, legacy engine).  Both paths
    report the same races.
    """
    from repro import config
    from repro.detect.online import detect_races_online, online_capable
    if online is None:
        online = config.detect_online()
    if online and online_capable(pinball):
        return detect_races_online(pinball, program,
                                   globals_only=globals_only)
    from repro.isa.program import GLOBAL_BASE
    tool = RaceDetectorTool(
        watch_low=GLOBAL_BASE,
        watch_high=program.data_size if globals_only else None)
    replay(pinball, program, tools=[tool], verify=False)
    if OBS.enabled:
        OBS.add("detect.traced_runs", 1)
    return tool.races
