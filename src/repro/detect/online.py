"""Online race detection riding the untraced fast path.

The classic :class:`~repro.detect.race_detector.RaceDetectorTool`
subscribes to per-instruction events, which forces the traced
interpreter path: every retired instruction materializes an
:class:`InstrEvent` whether it touched memory or not.  The detector
here implements the machine's *recorder protocol* instead
(:meth:`repro.vm.machine.Machine.set_recorder`): the run loop executes
through the untraced micro-op closures and calls :meth:`on_mem` only
for instructions that actually touched memory, handing over bare
address lists plus the accessing pc — exactly the facts happens-before
race detection needs.  Detection costs one untraced pass; no trace is
ever materialized.

Clock granularity differs from the traced detector — one tick per
*memory access* rather than per instruction — but happens-before
relations are decided solely by the joins at synchronization points,
which both detectors observe identically through the syscall hooks
(those fire in untraced mode too).  The two modes therefore report the
same race site pairs, with the same kinds and the same (tid, tindex)
instances; ``tests/analysis/test_hunt_differential.py`` asserts it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.detect.race_detector import RaceDetectorTool, RaceReport
from repro.isa.program import GLOBAL_BASE, Program
from repro.obs.registry import OBS
from repro.pinplay.pinball import Pinball
from repro.pinplay.replayer import replay_machine
from repro.vm.machine import Machine

__all__ = ["OnlineRaceDetector", "detect_races_online", "online_capable"]


class OnlineRaceDetector(RaceDetectorTool):
    """Vector-clock detector fed from the record/untraced fast path.

    Registered both as a machine tool (sync and lifecycle events arrive
    through the ordinary hooks) and as the machine's recorder (memory
    accesses arrive through :meth:`on_mem`).  The schedule-recording
    half of the recorder protocol (``append_run``, ``capture``) is
    deliberately inert — this recorder listens, it does not log.
    """

    wants_instr_events = False     # keeps the fast path armed

    def __init__(self, watch_low: int = 0,
                 watch_high: Optional[int] = None) -> None:
        super().__init__(watch_low=watch_low, watch_high=watch_high)
        # Recorder-protocol state the machine loop reads/writes.
        self.checkpoint_interval = 0
        self.next_checkpoint = 0
        self.steps_done = 0
        self._run_tid: Optional[int] = None
        self._run_count = 0
        self._mem_ops_cell = [0]
        # on_mem fires once per memory-touching instruction on the hot
        # loop — build it as a closure so every collaborator is a cell
        # variable instead of a per-call attribute lookup.
        self.on_mem = self._build_on_mem()

    @property
    def mem_ops(self) -> int:
        return self._mem_ops_cell[0]

    def attach(self, machine: Machine) -> None:
        machine.add_tool(self)
        machine.set_recorder(self)

    # -- inert recorder-protocol half --------------------------------------

    def append_run(self, tid: int, count: int) -> None:
        pass

    def capture(self, machine: Machine, steps_done: int) -> None:
        pass

    def finish(self) -> None:
        pass

    # -- accesses ----------------------------------------------------------

    def _build_on_mem(self):
        """The per-access hot path, compiled to a closure.

        Three deliberate deviations from the traced tool's ``on_instr``,
        none of which can change a verdict:

        * unwatched addresses are rejected with two integer compares
          (``watch_high=None`` becomes an infinite upper bound);
        * the thread clock ticks *lazily*, only when an instruction
          actually touches a watched address — ticks merely relabel one
          thread's epochs monotonically, and happens-before is decided
          by the joins at sync points, so any tick granularity yields
          the same races (the differential suite pins this);
        * the epoch-before test is inlined on the sparse clock's dict:
          ``(w_tid, w_clock)`` happened-before me iff
          ``w_clock <= my_times.get(w_tid, 0)``.
        """
        low = self.watch_low
        high = self.watch_high if self.watch_high is not None else \
            float("inf")
        clocks = self._clocks
        writes = self._writes
        reads = self._reads
        report = self._report
        make_clock = self._clock
        cell = self._mem_ops_cell

        def on_mem(tid, tindex, read_addrs, write_addrs, pc=-1):
            times = None
            now = 0
            for addr in read_addrs:
                if addr < low or addr >= high:
                    continue
                if times is None:
                    clock = clocks.get(tid) or make_clock(tid)
                    times = clock._times
                    now = times.get(tid, 0) + 1
                    times[tid] = now
                    cell[0] += 1
                write = writes.get(addr)
                if write is not None:
                    w_tid, w_clock, w_pc, w_tindex = write
                    if w_tid != tid and w_clock > times.get(w_tid, 0):
                        report(addr, "write-read",
                               (w_pc, (w_tid, w_tindex)),
                               (pc, (tid, tindex)))
                by_tid = reads.get(addr)
                if by_tid is None:
                    by_tid = reads[addr] = {}
                by_tid[tid] = (now, pc, tindex)

            for addr in write_addrs:
                if addr < low or addr >= high:
                    continue
                if times is None:
                    clock = clocks.get(tid) or make_clock(tid)
                    times = clock._times
                    now = times.get(tid, 0) + 1
                    times[tid] = now
                    cell[0] += 1
                write = writes.get(addr)
                if write is not None:
                    w_tid, w_clock, w_pc, w_tindex = write
                    if w_tid != tid and w_clock > times.get(w_tid, 0):
                        report(addr, "write-write",
                               (w_pc, (w_tid, w_tindex)),
                               (pc, (tid, tindex)))
                by_tid = reads.get(addr)
                if by_tid:
                    for r_tid, (r_clock, r_pc, r_tindex) in \
                            by_tid.items():
                        if r_tid != tid and r_clock > times.get(r_tid, 0):
                            report(addr, "read-write",
                                   (r_pc, (r_tid, r_tindex)),
                                   (pc, (tid, tindex)))
                writes[addr] = (tid, now, pc, tindex)

        return on_mem


def online_capable(pinball: Pinball, engine: Optional[str] = None) -> bool:
    """Can this pinball replay with the fast-path detector?

    The recorder protocol requires the predecoded engine and rejects
    exclusion skips, so slice pinballs and legacy-engine runs fall back
    to the traced detector.
    """
    from repro import config
    if config.engine(explicit=engine) != "predecoded":
        return False
    return not pinball.exclusions


def detect_races_online(pinball: Pinball, program: Program,
                        globals_only: bool = True) -> List[RaceReport]:
    """One untraced replay pass with the online detector attached."""
    detector = OnlineRaceDetector(
        watch_low=GLOBAL_BASE,
        watch_high=program.data_size if globals_only else None)
    machine = replay_machine(pinball, program)
    detector.attach(machine)
    with OBS.span("detect.online_pass"):
        machine.run(max_steps=pinball.total_steps)
    machine.set_recorder(None)
    if OBS.enabled:
        OBS.add("detect.online_runs", 1)
        OBS.add("detect.online_mem_ops", detector.mem_ops)
        OBS.add("detect.online_races", len(detector.races))
    return detector.races
