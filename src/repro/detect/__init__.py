"""Dynamic data-race detection over deterministic replay.

An extension in the spirit of the paper's related work (Tallam et al.,
"Dynamic slicing of multithreaded programs for race detection", ICSM'08):
since a pinball replays deterministically, a happens-before race detector
can run as just another replay tool, and every race it reports is
*concrete* — the two access instances exist in the recorded execution and
can immediately become slicing criteria in the same session.

The detector implements vector-clock happens-before in the FastTrack
style (per-thread clocks, scalar epochs per access), with the guest's
synchronization vocabulary: ``spawn``/``join``/``lock``/``unlock``.

Typical use::

    from repro.detect import detect_races
    reports = detect_races(pinball, program)
    for race in reports:
        print(race.describe(program))
        # each endpoint is a (tid, tindex) instance — sliceable directly.
"""

from repro.detect.vector_clock import VectorClock
from repro.detect.race_detector import (
    RaceDetectorTool,
    RaceReport,
    detect_races,
)
from repro.detect.online import (
    OnlineRaceDetector,
    detect_races_online,
    online_capable,
)

__all__ = [
    "OnlineRaceDetector",
    "RaceDetectorTool",
    "RaceReport",
    "VectorClock",
    "detect_races",
    "detect_races_online",
    "online_capable",
]
