"""Sparse vector clocks for happens-before tracking."""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class VectorClock:
    """A sparse map tid -> logical time; missing entries are 0."""

    __slots__ = ("_times",)

    def __init__(self, times: Dict[int, int] = None) -> None:
        self._times = dict(times or {})

    def get(self, tid: int) -> int:
        return self._times.get(tid, 0)

    def set(self, tid: int, value: int) -> None:
        if value:
            self._times[tid] = value
        else:
            self._times.pop(tid, None)

    def tick(self, tid: int) -> int:
        """Increment ``tid``'s component; returns the new value."""
        value = self._times.get(tid, 0) + 1
        self._times[tid] = value
        return value

    def join(self, other: "VectorClock") -> None:
        """Pointwise maximum, in place."""
        for tid, value in other._times.items():
            if value > self._times.get(tid, 0):
                self._times[tid] = value

    def copy(self) -> "VectorClock":
        return VectorClock(self._times)

    def happens_before(self, other: "VectorClock") -> bool:
        """True iff self <= other pointwise and self != other."""
        le = all(value <= other.get(tid)
                 for tid, value in self._times.items())
        return le and self._times != other._times

    def concurrent_with(self, other: "VectorClock") -> bool:
        return (not self.happens_before(other)
                and not other.happens_before(self)
                and self._times != other._times)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self._times.items()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._times == other._times

    def __repr__(self) -> str:
        inner = ", ".join("%d:%d" % kv for kv in sorted(self._times.items()))
        return "VC{%s}" % inner
