"""Maple's active scheduling phase: force a predicted interleaving.

The :class:`ActiveScheduler` realizes one idiom-1 iRoot by thread-priority
control, like Maple's active scheduler (which "runs the program on a
single processor and controls thread execution by changing scheduling
priorities"):

* until the iRoot's *first* access has executed, any thread whose next
  instruction is the *second* access site is held back (not scheduled) as
  long as another thread can run;
* a give-up budget bounds the delay, so an unrealizable candidate cannot
  livelock the run (Maple's timeout analog).

The companion :class:`ActiveSchedulerWatch` tool tells the scheduler when
the first access actually executed.  Crucially — this is the DrDebug
integration the paper describes — the scheduler works under the PinPlay
logger: the forced schedule is recorded like any other, so the exposed bug
is captured in an ordinary pinball.  (The instrumentation-ordering care the
paper needed between Maple and the logger reduces here to the watch tool
being independent of the logger tool.)
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.maple.idioms import IRoot
from repro.vm.hooks import InstrEvent, Tool
from repro.vm.scheduler import Scheduler


class ActiveSchedulerWatch(Tool):
    """Reports executions of the iRoot's access sites to the scheduler."""

    wants_instr_events = True

    def __init__(self, iroot: IRoot) -> None:
        self.iroot = iroot
        self.first_done_by: Optional[int] = None
        self.second_done_by: Optional[int] = None
        self.realized = False

    def on_instr(self, event: InstrEvent) -> None:
        if event.addr == self.iroot.first.pc and self.first_done_by is None:
            self.first_done_by = event.tid
        elif (event.addr == self.iroot.second.pc
              and self.first_done_by is not None
              and self.second_done_by is None):
            self.second_done_by = event.tid
            if event.tid != self.first_done_by:
                self.realized = True


class ActiveScheduler(Scheduler):
    """Priority-controlled scheduler steering toward one iRoot."""

    def __init__(self, watch: ActiveSchedulerWatch,
                 give_up_budget: int = 10_000,
                 base_quantum: int = 20) -> None:
        self.watch = watch
        self.give_up_budget = give_up_budget
        self.base_quantum = base_quantum
        self.delays = 0
        self.gave_up = False
        self._machine = None
        self._remaining = base_quantum
        self._current: Optional[int] = None

    def attach(self, machine) -> None:
        self._machine = machine

    def _is_held(self, tid: int) -> bool:
        """Should ``tid`` be delayed right now?"""
        if self.gave_up or self.watch.first_done_by is not None:
            return False
        thread = self._machine.threads.get(tid)
        return thread is not None and thread.pc == self.iroot_second_pc

    @property
    def iroot_second_pc(self) -> int:
        return self.watch.iroot.second.pc

    def pick(self, runnable: Sequence[int], last: Optional[int]) -> int:
        eligible = [tid for tid in runnable if not self._is_held(tid)]
        if not eligible:
            # Everyone runnable sits at the second access: we must run one
            # (otherwise we livelock); count it against the budget.
            self.delays += 1
            if self.delays >= self.give_up_budget:
                self.gave_up = True
            return runnable[0]
        if len(eligible) != len(runnable):
            self.delays += 1
            if self.delays >= self.give_up_budget:
                self.gave_up = True
        # Round-robin among the eligible for fairness.
        if (last in eligible and last == self._current
                and self._remaining > 0):
            return last
        if last is None or last not in eligible:
            return eligible[0]
        for tid in eligible:
            if tid > last:
                return tid
        return eligible[0]

    def commit(self, tid: int) -> None:
        if tid == self._current:
            self._remaining -= 1
        else:
            self._current = tid
            self._remaining = self.base_quantum - 1
