"""iRoot definitions: the interleaving idioms Maple profiles and forces.

We implement idiom-1 from the Maple paper — two accesses to the same
shared location from different threads, at least one a write, in a
specific order.  An :class:`IRoot` is the *static* pattern (instruction
addresses); realizing it means executing ``first`` before ``second`` from
different threads at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemAccess:
    """A static memory access site."""

    pc: int
    is_write: bool

    def describe(self, program=None) -> str:
        kind = "W" if self.is_write else "R"
        location = "pc %d" % self.pc
        if program is not None:
            line = program.line_of(self.pc)
            func = program.function_at(self.pc)
            location = "%s:%s (pc %d)" % (
                func.name if func else "?", line, self.pc)
        return "%s@%s" % (kind, location)


@dataclass(frozen=True)
class IRoot:
    """Idiom-1 iRoot: ``first`` happens immediately before ``second``
    on the same shared location, from different threads."""

    first: MemAccess
    second: MemAccess

    def conflicts(self) -> bool:
        return self.first.is_write or self.second.is_write

    def reversed(self) -> "IRoot":
        return IRoot(first=self.second, second=self.first)

    def describe(self, program=None) -> str:
        return "%s -> %s" % (self.first.describe(program),
                             self.second.describe(program))
