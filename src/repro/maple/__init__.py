"""Maple analog: coverage-driven exposure of concurrency bugs + recording.

The paper integrates DrDebug with Maple (Yu et al., OOPSLA'12) for the
"programmer hit a bug once but cannot reproduce it" scenario.  Maple's two
phases map to:

* :class:`~repro.maple.profiler.InterleavingProfiler` — runs the program a
  few times under different seeded schedules and records *iRoots*: ordered
  pairs of static instructions from different threads that conflict on a
  shared address.  Orderings seen in no run so far are the *predicted*
  (untested) interleavings.
* :class:`~repro.maple.active_scheduler.ActiveScheduler` — a strict-control
  scheduler that steers execution to realize one predicted iRoot: a thread
  about to perform the iRoot's *second* access is held back until some
  other thread performs the *first* access (with a give-up budget to avoid
  starvation, like Maple's timeouts).

:func:`~repro.maple.expose.expose_and_record` runs the whole loop and —
the DrDebug integration — executes the successful active-scheduled run
under the PinPlay logger, returning a pinball that replays the exposed
bug deterministically.
"""

from repro.maple.idioms import IRoot, MemAccess
from repro.maple.profiler import InterleavingProfiler, ProfilerTool
from repro.maple.active_scheduler import ActiveScheduler, ActiveSchedulerWatch
from repro.maple.expose import MapleResult, expose_and_record

__all__ = [
    "ActiveScheduler",
    "ActiveSchedulerWatch",
    "IRoot",
    "InterleavingProfiler",
    "MapleResult",
    "MemAccess",
    "ProfilerTool",
    "expose_and_record",
]
