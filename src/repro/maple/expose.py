"""The Maple + DrDebug loop: expose a concurrency bug, record a pinball.

Workflow (paper Section 6, "Integration with Maple"):

1. Profile the program under a handful of seeded schedules, collecting
   observed iRoots.  If a profiling run fails outright, just re-record it.
2. For each predicted (untested) iRoot, run the active scheduler *under
   the PinPlay logger*.  The first run that trips the failure symptom
   yields a pinball that replays the bug deterministically — ready for
   cyclic debugging and slicing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.isa.program import Program
from repro.maple.active_scheduler import ActiveScheduler, ActiveSchedulerWatch
from repro.maple.idioms import IRoot
from repro.maple.profiler import InterleavingProfiler
from repro.obs.registry import OBS
from repro.pinplay.logger import record_region
from repro.pinplay.pinball import Pinball
from repro.pinplay.regions import RegionSpec
from repro.vm.scheduler import RandomScheduler


@dataclass
class MapleResult:
    """Outcome of an expose-and-record session."""

    pinball: Optional[Pinball]      # None if nothing failed
    exposed_by: Optional[str]       # "profiling" | "active" | None
    iroot: Optional[IRoot]          # the forced iRoot, for "active"
    profile_runs: int
    active_runs: int
    candidates: int

    @property
    def exposed(self) -> bool:
        return self.pinball is not None

    def payload(self) -> dict:
        """The shared analysis-report envelope (kind ``maple``) — the
        one JSON shape CLI/library/serve all emit; replaces the ad-hoc
        per-caller dicts."""
        from repro.analysis.report import maple_report_payload
        return maple_report_payload(self)


def expose_and_record(program: Program,
                      inputs: Sequence = (),
                      profile_seeds: Sequence[int] = range(4),
                      max_active_runs: int = 50,
                      switch_prob: float = 0.1,
                      region: Optional[RegionSpec] = None,
                      give_up_budget: int = 10_000) -> MapleResult:
    """Try to expose a failure and capture it in a pinball."""
    region = region or RegionSpec()
    profiler = InterleavingProfiler(program, inputs=inputs)
    profiler.run(list(profile_seeds), switch_prob=switch_prob)
    profile_runs = len(list(profile_seeds))

    if profiler.failing_seed is not None:
        # The bug showed up during profiling: record that exact schedule.
        pinball = record_region(
            program,
            RandomScheduler(seed=profiler.failing_seed,
                            switch_prob=switch_prob),
            region, inputs=inputs)
        if pinball.meta.get("failure"):
            OBS.add("maple.exposed", 1)
            return MapleResult(pinball, "profiling", None,
                               profile_runs, 0, 0)

    candidates: List[IRoot] = profiler.predicted()
    active_runs = 0
    for iroot in candidates[:max_active_runs]:
        active_runs += 1
        watch = ActiveSchedulerWatch(iroot)
        scheduler = ActiveScheduler(watch, give_up_budget=give_up_budget)
        with OBS.span("maple.active_run"):
            pinball = record_region(program, scheduler, region,
                                    inputs=inputs, extra_tools=[watch])
        if OBS.enabled:
            OBS.add("maple.active_runs", 1)
            OBS.add("maple.iroots_forced", 1)
            OBS.add("maple.schedule_delays", scheduler.delays)
            if scheduler.gave_up:
                OBS.add("maple.give_ups", 1)
        if pinball.meta.get("failure"):
            OBS.add("maple.exposed", 1)
            return MapleResult(pinball, "active", iroot,
                               profile_runs, active_runs, len(candidates))
    return MapleResult(None, None, None, profile_runs, active_runs,
                       len(candidates))
