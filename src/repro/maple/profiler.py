"""Maple's profiling phase: observe interleavings, predict untested ones.

Each profiling run executes the program under a differently-seeded random
scheduler while a tool records, for every shared address, the ordered
pairs of static access sites that executed back-to-back from different
threads (with at least one write) — the *observed* iRoots.  Predicted
iRoots are the reversals of observed ones that no run has exhibited yet;
those are the candidate interleavings the active scheduler will force.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.isa.program import Program
from repro.maple.idioms import IRoot, MemAccess
from repro.obs.registry import OBS
from repro.vm.hooks import InstrEvent, Tool
from repro.vm.machine import Machine
from repro.vm.scheduler import RandomScheduler


class ProfilerTool(Tool):
    """Records observed idiom-1 iRoots during one run."""

    wants_instr_events = True

    def __init__(self, shared_limit: Optional[int] = None) -> None:
        #: Only addresses below this count as interesting (defaults to all).
        self.shared_limit = shared_limit
        self.observed: Set[IRoot] = set()
        #: addr -> (tid, pc, is_write) of the last access.
        self._last: Dict[int, Tuple[int, int, bool]] = {}

    def _access(self, tid: int, pc: int, addr: int, is_write: bool) -> None:
        if self.shared_limit is not None and addr >= self.shared_limit:
            return
        last = self._last.get(addr)
        if last is not None:
            last_tid, last_pc, last_write = last
            if last_tid != tid and (last_write or is_write):
                self.observed.add(IRoot(
                    first=MemAccess(last_pc, last_write),
                    second=MemAccess(pc, is_write)))
        self._last[addr] = (tid, pc, is_write)

    def on_instr(self, event: InstrEvent) -> None:
        for addr, _value in event.mem_reads:
            self._access(event.tid, event.addr, addr, False)
        for addr, _value in event.mem_writes:
            self._access(event.tid, event.addr, addr, True)


class InterleavingProfiler:
    """Runs the profiling phase over several seeds."""

    def __init__(self, program: Program, inputs: Sequence = (),
                 globals_only: bool = True) -> None:
        self.program = program
        self.inputs = list(inputs)
        # Restricting to the globals segment keeps candidate sets focused
        # on program-level shared state (heap/stack races would need the
        # full limit — pass globals_only=False for those).
        self.shared_limit = program.data_size if globals_only else None
        self.observed: Set[IRoot] = set()
        self.failing_seed: Optional[int] = None

    def run(self, seeds: Sequence[int],
            switch_prob: float = 0.1,
            max_steps: int = 2_000_000) -> Set[IRoot]:
        """Profile under each seed; returns all observed iRoots.

        If a run happens to fail naturally, its seed is remembered in
        :attr:`failing_seed` (no active scheduling needed then).
        """
        observed_before = len(self.observed)
        runs = 0
        with OBS.span("maple.profile"):
            for seed in seeds:
                runs += 1
                tool = ProfilerTool(self.shared_limit)
                machine = Machine(
                    self.program,
                    scheduler=RandomScheduler(seed=seed,
                                              switch_prob=switch_prob),
                    tools=[tool], inputs=self.inputs)
                machine.run(max_steps=max_steps)
                self.observed.update(tool.observed)
                if machine.failure is not None and self.failing_seed is None:
                    self.failing_seed = seed
        if OBS.enabled:
            OBS.add("maple.profile_runs", runs)
            OBS.add("maple.iroots_observed",
                    len(self.observed) - observed_before)
        return self.observed

    def predicted(self) -> List[IRoot]:
        """Untested orderings: reversals of observed iRoots not yet seen."""
        candidates = []
        for iroot in sorted(self.observed,
                            key=lambda r: (r.first.pc, r.second.pc)):
            reverse = iroot.reversed()
            if reverse not in self.observed and reverse.conflicts():
                candidates.append(reverse)
        OBS.add("maple.iroots_predicted", len(candidates))
        return candidates
