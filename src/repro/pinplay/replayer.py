"""The PinPlay-style replayer: deterministic re-execution of a pinball.

Replay restores the pinball's architectural snapshot, follows its recorded
schedule step-for-step (:class:`~repro.vm.scheduler.RecordedScheduler`),
and injects recorded results for nondeterministic syscalls.  For slice
pinballs, the machine additionally skips excluded code regions and injects
their side effects.

``verify=True`` checks the final state hash against the one recorded at
logging time — the replay-determinism guarantee the whole DrDebug workflow
rests on ("the programmer observes the exact same program state during
multiple debug sessions").
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Sequence, Tuple

from repro.isa.program import Program
from repro.obs.registry import OBS
from repro.pinplay.format_v2 import (EmbeddedCheckpoint, capture_state,
                                     schedule_suffix)
from repro.pinplay.pinball import Pinball, state_hash
from repro.vm.errors import ReplayDivergence
from repro.vm.hooks import Tool
from repro.vm.machine import Machine, MachineSnapshot, RunResult
from repro.vm.scheduler import RecordedScheduler


class SyscallInjector:
    """Feeds recorded nondeterministic syscall results back during replay."""

    def __init__(self, syscalls: Dict[int, Sequence[Tuple[str, object]]]) -> None:
        self._full = {int(tid): list(log) for tid, log in syscalls.items()}
        self._queues = {tid: deque(log) for tid, log in self._full.items()}

    def inject(self, name: str, tid: int) -> Optional[object]:
        if OBS.enabled:   # syscalls are sparse; one check per injection
            OBS.inc("pinplay.syscalls_injected")
        queue = self._queues.get(tid)
        if not queue:
            raise ReplayDivergence(
                "tid %d executed nondeterministic syscall %r beyond the "
                "recorded log" % (tid, name))
        recorded_name, value = queue.popleft()
        if recorded_name != name:
            raise ReplayDivergence(
                "tid %d syscall order diverged: recorded %r, executing %r"
                % (tid, recorded_name, name))
        return value

    @property
    def drained(self) -> bool:
        return all(not queue for queue in self._queues.values())

    # -- checkpoint support (reverse debugging) ---------------------------

    def consumed(self) -> Dict[int, int]:
        """How many results each thread has consumed so far."""
        return {tid: len(self._full[tid]) - len(queue)
                for tid, queue in self._queues.items()}

    def rewind_to(self, consumed: Dict[int, int]) -> None:
        """Reset the queues to a previously captured consumption state."""
        for tid, log in self._full.items():
            start = int(consumed.get(tid, 0))
            self._queues[tid] = deque(log[start:])


def replay_machine(pinball: Pinball, program: Program,
                   tools: Sequence[Tool] = (),
                   engine: Optional[str] = None) -> Machine:
    """Build a machine primed to replay ``pinball`` (without running it).

    The debugger uses this to drive replay interactively (breakpoints,
    stepping); batch analyses use :func:`replay` instead.  Replay is pure
    re-execution: with no per-instruction tools attached the predecoded
    engine's untraced fast path executes the whole schedule without
    building a single event.
    """
    if program.name != pinball.program_name:
        raise ReplayDivergence(
            "pinball was recorded for %r, not %r"
            % (pinball.program_name, program.name))
    scheduler = RecordedScheduler(pinball.schedule)
    injector = SyscallInjector(pinball.syscalls)
    machine = Machine.from_snapshot(
        program, MachineSnapshot.from_dict(pinball.snapshot),
        scheduler=scheduler, tools=tools,
        syscall_injector=injector.inject, engine=engine)
    if pinball.exclusions:
        machine.install_exclusions(pinball.exclusions)
    return machine


def best_checkpoint(pinball: Pinball,
                    steps: int) -> Optional[EmbeddedCheckpoint]:
    """The latest embedded checkpoint at or before region step ``steps``
    (None when the pinball carries none that early).

    Thin compatibility wrapper: the selection logic (cached sorted
    index + binary search) lives on :meth:`Pinball.nearest_checkpoint`
    so every consumer shares one implementation.
    """
    return pinball.nearest_checkpoint(steps)


def resume_machine(pinball: Pinball, program: Program,
                   checkpoint: EmbeddedCheckpoint,
                   engine: Optional[str] = None
                   ) -> Tuple[Machine, SyscallInjector]:
    """A machine resumed *mid-region* from an embedded checkpoint.

    This is the O(chunk) seek primitive: restoring the checkpoint's
    snapshot and replaying only the schedule suffix reaches any step in
    at most ``checkpoint_interval`` replayed steps, regardless of how
    long the region is.  The injector is returned so callers (debugger,
    shard scout) can capture further resume points of their own.
    """
    if program.name != pinball.program_name:
        raise ReplayDivergence(
            "pinball was recorded for %r, not %r"
            % (pinball.program_name, program.name))
    body = checkpoint.body()
    scheduler = RecordedScheduler(
        schedule_suffix(pinball.schedule, checkpoint.steps_done))
    injector = SyscallInjector(pinball.syscalls)
    injector.rewind_to(body["consumed"])
    machine = Machine.from_snapshot(
        program, MachineSnapshot.from_dict(body["snapshot"]),
        scheduler=scheduler, syscall_injector=injector.inject,
        engine=engine)
    machine.global_seq = checkpoint.global_seq
    machine.output = list(body["output"])
    for tid, count in body["instr_counts"].items():
        thread = machine.threads.get(tid)
        if thread is not None:
            thread.instr_count = count
    if OBS.enabled:
        OBS.add("pinplay.checkpoint_resumes", 1)
    return machine, injector


def generate_checkpoints(pinball: Pinball, program: Program,
                         interval: int,
                         engine: Optional[str] = None) -> list:
    """Embedded checkpoints for a pinball recorded without them.

    One replay pass, stopping every ``interval`` steps to capture a
    resumable state — how ``repro convert`` upgrades a v1 pinball to a
    fully seekable v2 one.  Slice pinballs (exclusions) are skipped:
    their replay teleports, so interior machine states are not
    checkpointable this way.
    """
    if interval < 1:
        raise ValueError("checkpoint interval must be >= 1")
    if pinball.exclusions:
        return []
    scheduler = RecordedScheduler(pinball.schedule)
    injector = SyscallInjector(pinball.syscalls)
    machine = Machine.from_snapshot(
        program, MachineSnapshot.from_dict(pinball.snapshot),
        scheduler=scheduler, syscall_injector=injector.inject,
        engine=engine)
    total = pinball.total_steps
    checkpoints = []
    done = 0
    while done < total:
        result = machine.run(max_steps=min(interval, total - done))
        if result.steps == 0:
            break
        done += result.steps
        if done < total:
            checkpoints.append(EmbeddedCheckpoint(
                done, machine.global_seq,
                body=capture_state(machine, injector.consumed(),
                                   machine.output)))
    return checkpoints


def replay(pinball: Pinball, program: Program,
           tools: Sequence[Tool] = (),
           verify: bool = True,
           engine: Optional[str] = None) -> Tuple[Machine, RunResult]:
    """Replay ``pinball`` to the end of its recorded schedule.

    Returns the finished machine and the run result.  With ``verify``,
    raises :class:`ReplayDivergence` if the final state hash does not match
    the hash recorded at logging time (skipped for slice pinballs, whose
    excluded code legitimately leaves different dead state behind).
    """
    machine = replay_machine(pinball, program, tools=tools, engine=engine)
    with OBS.span("pinplay.replay"):
        result = machine.run(max_steps=pinball.total_steps)
    if OBS.enabled:
        OBS.add("pinplay.replays", 1)
        OBS.add("pinplay.replayed_steps", result.steps)
    if verify and not pinball.exclusions:
        expected = pinball.meta.get("final_state_hash")
        if expected is not None and state_hash(machine) != expected:
            raise ReplayDivergence(
                "replay of %r diverged: final state hash mismatch"
                % pinball.program_name)
        expected_output = pinball.meta.get("output")
        if expected_output is not None and list(machine.output) != list(
                expected_output):
            raise ReplayDivergence("replay output diverged")
        OBS.add("pinplay.replay_verifications", 1)
    return machine, result
