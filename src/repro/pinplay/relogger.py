"""The PinPlay-style relogger: turn a region pinball into a slice pinball.

Given the set of instruction instances a dynamic slice wants to keep, the
relogger replays the region pinball once, and along the way:

* partitions each thread's instruction stream into *kept* runs and
  *excluded* runs;
* for every excluded run, detects its side effects — the final values of
  every register and memory cell the run wrote, plus the call-frame state —
  using the same observe-during-replay approach PinPlay uses for system
  call side effects;
* rebuilds the schedule with excluded steps dropped (each excluded run
  collapses to the single "skip" step the replaying machine consumes when
  it teleports past the run);
* emits a slice pinball: same snapshot and syscall log, new schedule, plus
  the exclusion records with their injections.

Policy: syscall instructions are never excluded (they carry
synchronization and nondeterminism-injection order), and each thread's
final instruction is kept so every thread terminates cleanly in slice
replay.  This mirrors PinPlay keeping system effects in the pinball.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.obs.registry import OBS
from repro.pinplay.pinball import Pinball
from repro.pinplay.replayer import replay_machine
from repro.vm.errors import ReplayDivergence
from repro.vm.hooks import InstrEvent, Tool
from repro.vm.scheduler import ScheduleRecorder


class _PendingExclusion:
    """Accumulates one excluded run's side effects during the relog replay."""

    __slots__ = ("tid", "start_pc", "start_arrival", "regs", "mem", "frames",
                 "count")

    def __init__(self, tid: int, start_pc: int, start_arrival: int,
                 frames: List[dict]) -> None:
        self.tid = tid
        self.start_pc = start_pc
        self.start_arrival = start_arrival
        self.regs: Dict[str, object] = {}
        self.mem: Dict[int, object] = {}
        self.frames = frames
        self.count = 0

    def finalize(self, end_pc: int) -> dict:
        return {
            "tid": self.tid,
            "start_pc": self.start_pc,
            "start_arrival": self.start_arrival,
            "end_pc": end_pc,
            "regs": sorted(self.regs.items()),
            "mem": sorted(self.mem.items()),
            "frames": self.frames,
            "excluded_count": self.count,
        }


class RelogTool(Tool):
    """Observes a full region replay and derives the slice pinball parts."""

    wants_instr_events = True
    retains_instr_events = False   # values are copied into pending records

    def __init__(self, machine, program: Program,
                 keep: Dict[int, Set[int]],
                 last_tindex: Dict[int, int]) -> None:
        self.machine = machine
        self.program = program
        self.keep = {int(tid): set(idxs) for tid, idxs in keep.items()}
        self.last_tindex = dict(last_tindex)
        self.new_schedule = ScheduleRecorder()
        self.exclusions: List[dict] = []
        self.kept_counts: Dict[int, int] = {}
        self.total_counts: Dict[int, int] = {}
        self._active: Dict[int, Optional[_PendingExclusion]] = {}
        self._slice_arrivals: Dict[Tuple[int, int], int] = {}

    # -- keep policy ---------------------------------------------------------

    def _is_kept(self, tid: int, tindex: int, pc: int) -> bool:
        if self.program.instructions[pc].op == Opcode.SYS:
            return True
        if tindex == self.last_tindex.get(tid):
            return True
        return tindex in self.keep.get(tid, ())

    # -- event handlers ----------------------------------------------------------

    def on_step(self, tid: int) -> None:
        thread = self.machine.threads[tid]
        kept = self._is_kept(tid, thread.instr_count, thread.pc)
        # Keep the step if the instruction is kept, or if it *starts* an
        # excluded run (that step becomes the skip step in slice replay).
        if kept or self._active.get(tid) is None:
            self.new_schedule.record(tid)

    def on_instr(self, event: InstrEvent) -> None:
        tid = event.tid
        pc = event.addr
        self.total_counts[tid] = self.total_counts.get(tid, 0) + 1
        pending = self._active.get(tid)
        if self._is_kept(tid, event.tindex, pc):
            if pending is not None:
                self.exclusions.append(pending.finalize(end_pc=pc))
                self._active[tid] = None
            key = (tid, pc)
            self._slice_arrivals[key] = self._slice_arrivals.get(key, 0) + 1
            self.kept_counts[tid] = self.kept_counts.get(tid, 0) + 1
            return
        if pending is None:
            key = (tid, pc)
            arrival = self._slice_arrivals.get(key, 0) + 1
            self._slice_arrivals[key] = arrival
            pending = _PendingExclusion(
                tid, pc, arrival,
                frames=self._frames_snapshot(tid))
            self._active[tid] = pending
        for name, value in event.reg_writes:
            pending.regs[name] = value
        for addr, value in event.mem_writes:
            pending.mem[addr] = value
        pending.count += 1
        if event.instr.op in (Opcode.CALL, Opcode.ICALL, Opcode.RET):
            pending.frames = self._frames_snapshot(tid)

    def _frames_snapshot(self, tid: int) -> List[dict]:
        thread = self.machine.threads[tid]
        return [
            {"func": f.func, "call_addr": f.call_addr,
             "return_addr": f.return_addr, "frame_id": f.frame_id,
             "fp_at_entry": f.fp_at_entry}
            for f in thread.frames
        ]

    def on_finish(self, machine) -> None:
        dangling = [tid for tid, pending in self._active.items()
                    if pending is not None]
        if dangling:
            raise ReplayDivergence(
                "threads %s ended inside an exclusion run; the keep set "
                "must retain each thread's final instruction" % dangling)


def relog(region_pinball: Pinball, program: Program,
          keep: Dict[int, Set[int]],
          engine: Optional[str] = None) -> Pinball:
    """Produce a slice pinball from ``region_pinball``.

    ``keep`` maps tid -> set of region-relative instruction indices that
    belong to the slice (the relogger adds syscalls and each thread's final
    instruction on top).
    """
    counts = region_pinball.meta.get("thread_instr_counts", {})
    last_tindex = {int(tid): int(count) - 1
                   for tid, count in counts.items() if int(count) > 0}
    machine = replay_machine(region_pinball, program, engine=engine)
    tool = RelogTool(machine, program, keep, last_tindex)
    machine.add_tool(tool)
    with OBS.span("pinplay.relog"):
        machine.run(max_steps=region_pinball.total_steps)

    kept_total = sum(tool.kept_counts.values())
    if OBS.enabled:
        OBS.add("pinplay.relogs", 1)
        OBS.add("pinplay.excluded_runs", len(tool.exclusions))
        OBS.add("pinplay.kept_instructions", kept_total)
        OBS.add("pinplay.excluded_instructions",
                sum(tool.total_counts.values()) - kept_total)
    meta = {
        "kind": "slice",
        "parent_kind": region_pinball.kind,
        "skip": region_pinball.meta.get("skip"),
        "length": region_pinball.meta.get("length"),
        "failure": region_pinball.meta.get("failure"),
        "thread_instr_counts": {str(tid): tool.kept_counts.get(tid, 0)
                                for tid in tool.total_counts},
        "region_instructions": region_pinball.total_instructions,
        "kept_instructions": kept_total,
        "excluded_runs": len(tool.exclusions),
        "schedule_steps": tool.new_schedule.total(),
    }
    return Pinball(
        program_name=region_pinball.program_name,
        snapshot=region_pinball.snapshot,
        schedule=tool.new_schedule.runs,
        syscalls=region_pinball.syscalls,
        mem_order=(),
        exclusions=tool.exclusions,
        meta=meta,
        # Schedule comes from our recorder and syscalls from an existing
        # pinball: both already canonical, no re-cast pass needed.
        trusted=True,
    )
