"""PinPlay analog: record, deterministically replay, and relog executions.

The three tools of the paper's substrate, reimplemented over our VM:

* :func:`~repro.pinplay.logger.record_region` — the **logger**.  Fast-forwards
  (minimal instrumentation) to a region of interest, snapshots the full
  architectural state, then records everything nondeterministic while the
  region executes: the schedule, nondeterministic syscall results, and the
  shared-memory access order.  The result is a :class:`~repro.pinplay.pinball.Pinball`.
* :func:`~repro.pinplay.replayer.replay` — the **replayer**.  Re-executes a
  pinball exactly: same interleaving, same syscall results, same final
  state (verified by hash).  Analysis tools (the dynamic slicer, the
  debugger) attach to the replay.
* :func:`~repro.pinplay.relogger.relog` — the **relogger**.  Replays a region
  pinball while excluding the instruction instances outside a slice,
  detecting the side effects of excluded code, and emits a *slice pinball*
  whose replay skips the excluded code entirely and injects the side
  effects (paper Section 4).
"""

from repro.pinplay.pinball import Pinball, PinballFormatError
from repro.pinplay.format_v2 import EmbeddedCheckpoint, LazyPinball
from repro.pinplay.regions import RegionSpec
from repro.pinplay.logger import FastRecorder, LoggerTool, record_region
from repro.pinplay.replayer import (SyscallInjector, generate_checkpoints,
                                    replay, replay_machine, resume_machine)
from repro.pinplay.relogger import relog

__all__ = [
    "EmbeddedCheckpoint",
    "FastRecorder",
    "LazyPinball",
    "LoggerTool",
    "Pinball",
    "PinballFormatError",
    "RegionSpec",
    "SyscallInjector",
    "generate_checkpoints",
    "record_region",
    "relog",
    "replay",
    "replay_machine",
    "resume_machine",
]
