"""Pinball format v2: a streaming, chunked, checkpointed container.

Format v1 is one monolithic zlib-compressed JSON blob: the logger
accumulates every schedule run and mem-order edge in memory, dumps them
at region end, and every consumer — replayer, debugger, relogger —
re-parses the whole thing before it can touch a single step.  v2 is the
rr-style answer ("Engineering Record And Replay For Deployability"):
an append-only sequence of framed binary segments that the logger
writes *incrementally while recording*, with periodic machine-state
checkpoints embedded in the stream so rewind/seek replays only a
suffix.

Container layout::

    MAGIC ("RPB2") | frame | frame | ... | META frame

Each frame is ``[kind:u8][length:u32 LE][crc32:u32 LE][payload]`` with
the CRC taken over the payload.  Frame kinds:

    ========== =============================================================
    PROLOGUE   JSON header: format_version, program name, checkpoint
               interval (always the first frame)
    SNAPSHOT   zlib-compressed JSON machine snapshot at region entry
    SCHEDULE   a chunk of RLE schedule runs, packed ``<II`` (tid, count)
    MEM_ORDER  a chunk of access-order edges, packed ``<IIIIIB``
               (from_tid, from_tindex, to_tid, to_tindex, addr, kind)
    SYSCALLS   JSON per-thread nondeterministic syscall results
    CHECKPOINT ``<QQ`` (steps_done, global_seq) scan header followed by a
               zlib-compressed JSON state body (snapshot, injector
               cursor, region output, per-thread instruction counts)
    EXCLUSIONS JSON slice-pinball exclusion records (absent when empty)
    META       JSON region metadata; doubles as the completeness marker
    ========== =============================================================

Readers index frames by a header-only scan (no payload is touched), so
:class:`LazyPinball` opens in O(frames) and decodes each section on
first access; the CRC is verified when — and only when — a payload is
actually read.  Mem-order edges, for instance, are never decoded for a
pure replay.  Chunk boundaries are deterministic (every
``SCHEDULE_CHUNK`` runs / ``EDGE_CHUNK`` edges), so re-recording a
longer run of the same program reproduces the shorter run's frames
byte-for-byte and the content-addressed store dedups the shared prefix.
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from typing import Dict, List, Optional, Sequence

from repro.obs.registry import OBS
from repro.pinplay.pinball import Pinball, PinballFormatError

MAGIC = b"RPB2"

#: Deterministic chunk sizes — shared by the streaming writer and the
#: in-memory encoder so both produce identical frames for identical
#: prefixes (the store's per-frame dedup depends on this).  1024 entries
#: keeps the recorder's pending-chunk buffers (the only O(region) state
#: the streamed fast path would otherwise hold) near-constant: ~90 KiB
#: of edge tuples at worst, flushed long before a region of any
#: benchmarked length completes.
SCHEDULE_CHUNK = 1024
EDGE_CHUNK = 1024

#: Compression level for snapshot and checkpoint bodies.  Level 1 is
#: ~4x faster to compress than the zlib default for ~15% larger frames —
#: the right trade for an always-on record path, where checkpoint
#: capture sits on the recording's critical path.  Must be a constant:
#: the streaming writer and the in-memory encoder both go through
#: :class:`PinballWriter`, and per-frame store dedup needs identical
#: recordings to produce identical bytes.
_ZLIB_LEVEL = 1

K_PROLOGUE = 1
K_SNAPSHOT = 2
K_SCHEDULE = 3
K_MEM_ORDER = 4
K_SYSCALLS = 5
K_CHECKPOINT = 6
K_EXCLUSIONS = 7
K_META = 8

FRAME_NAMES = {
    K_PROLOGUE: "prologue",
    K_SNAPSHOT: "snapshot",
    K_SCHEDULE: "schedule",
    K_MEM_ORDER: "mem-order",
    K_SYSCALLS: "syscalls",
    K_CHECKPOINT: "checkpoint",
    K_EXCLUSIONS: "exclusions",
    K_META: "meta",
}

_FRAME_HEADER = struct.Struct("<BII")
_SCHED_ENTRY = struct.Struct("<II")
_EDGE_ENTRY = struct.Struct("<IIIIIB")
_CKPT_HEADER = struct.Struct("<QQ")

_EDGE_KINDS = ("raw", "waw", "war")
_EDGE_CODE = {"raw": 0, "waw": 1, "war": 2}


def _frame_error(source: str, offset: int, kind: Optional[int],
                 message: str) -> PinballFormatError:
    """The one typed error, always naming frame kind + byte offset."""
    if kind is None:
        where = "v2 container"
    else:
        name = FRAME_NAMES.get(kind, "unknown kind %d" % kind)
        where = "v2 %s frame" % name
    return PinballFormatError(
        "%s: %s at byte offset %d: %s" % (source, where, offset, message))


class FrameRef:
    """One frame located by the header scan; payload decoded on demand."""

    __slots__ = ("kind", "offset", "start", "length", "crc")

    def __init__(self, kind: int, offset: int, start: int, length: int,
                 crc: int) -> None:
        self.kind = kind
        self.offset = offset          # of the frame header, in the blob
        self.start = start            # of the payload
        self.length = length
        self.crc = crc

    def payload(self, blob: bytes, source: str) -> bytes:
        data = blob[self.start:self.start + self.length]
        if zlib.crc32(data) & 0xFFFFFFFF != self.crc:
            raise _frame_error(
                source, self.offset, self.kind,
                "CRC mismatch (stored 0x%08x, computed 0x%08x)"
                % (self.crc, zlib.crc32(data) & 0xFFFFFFFF))
        if OBS.enabled:
            OBS.add("pinplay.v2_frames_decoded", 1)
        return data


def scan_frames(blob: bytes, source: str = "<bytes>") -> List[FrameRef]:
    """Index every frame by walking headers only — O(frames), no payload
    reads, no CRC work."""
    # Slice compare, not startswith: ``blob`` may be an mmap (the lazy
    # file-open path maps the container instead of reading it into heap).
    if blob[:len(MAGIC)] != MAGIC:
        raise _frame_error(source, 0, None,
                           "bad magic (not a v2 pinball)")
    frames: List[FrameRef] = []
    offset = len(MAGIC)
    total = len(blob)
    while offset < total:
        if offset + _FRAME_HEADER.size > total:
            raise _frame_error(
                source, offset, None,
                "truncated frame header (%d bytes left, need %d)"
                % (total - offset, _FRAME_HEADER.size))
        kind, length, crc = _FRAME_HEADER.unpack_from(blob, offset)
        if kind not in FRAME_NAMES:
            raise _frame_error(source, offset, kind,
                               "unknown frame kind %d" % kind)
        start = offset + _FRAME_HEADER.size
        if start + length > total:
            raise _frame_error(
                source, offset, kind,
                "truncated payload (declares %d bytes, %d left)"
                % (length, total - start))
        frames.append(FrameRef(kind, offset, start, length, crc))
        offset = start + length
    if not frames or frames[0].kind != K_PROLOGUE:
        raise _frame_error(source, len(MAGIC), K_PROLOGUE,
                           "missing prologue frame")
    if frames[-1].kind != K_META:
        raise _frame_error(
            source, frames[-1].offset, K_META,
            "missing meta/epilogue frame (recording incomplete?)")
    return frames


def frame_chunks(blob: bytes, source: str = "<bytes>") -> List[bytes]:
    """The container split into per-frame byte chunks (header included),
    for content-addressed storage; ``MAGIC + b"".join(chunks)``
    reassembles the original blob exactly."""
    return [blob[ref.offset:ref.start + ref.length]
            for ref in scan_frames(blob, source)]


# -- frame payload codecs -----------------------------------------------------

def _pack_schedule(runs: Sequence) -> bytes:
    pack = _SCHED_ENTRY.pack
    return b"".join(pack(tid, count) for tid, count in runs)


def _unpack_schedule(data: bytes) -> List[tuple]:
    return [entry for entry in _SCHED_ENTRY.iter_unpack(data)]


def _pack_edges(edges: Sequence) -> bytes:
    pack = _EDGE_ENTRY.pack
    code = _EDGE_CODE
    return b"".join(
        pack(ft, fi, tt, ti, addr, code[kind])
        for ft, fi, tt, ti, addr, kind in edges)


def _unpack_edges(data: bytes) -> List[tuple]:
    kinds = _EDGE_KINDS
    return [(ft, fi, tt, ti, addr, kinds[code])
            for ft, fi, tt, ti, addr, code
            in _EDGE_ENTRY.iter_unpack(data)]


def _json_bytes(payload) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def capture_state(machine, consumed: Dict[int, int],
                  output: Sequence) -> dict:
    """One resumable state capture — the shard scout's boundary
    machinery, promoted into the format so recorder checkpoints, scout
    boundaries and debugger restores all agree on the shape."""
    return {
        "snapshot": machine.snapshot().to_dict(),
        "consumed": dict(consumed),
        "global_seq": machine.global_seq,
        "instr_counts": {tid: thread.instr_count
                         for tid, thread in machine.threads.items()},
        "output": list(output),
    }


def _decode_state(raw: dict) -> dict:
    """JSON round-trip normalization: tid keys back to ints."""
    raw["consumed"] = {int(tid): int(count)
                       for tid, count in raw["consumed"].items()}
    raw["instr_counts"] = {int(tid): int(count)
                           for tid, count in raw["instr_counts"].items()}
    return raw


class EmbeddedCheckpoint:
    """A checkpoint carried by (or destined for) a v2 pinball.

    ``steps_done``/``global_seq`` come from the cheap frame-header scan;
    the state body (snapshot, injector cursor, output, per-thread
    instruction counts) stays on disk until :meth:`body` is called.
    """

    __slots__ = ("steps_done", "global_seq", "_body", "_loader")

    def __init__(self, steps_done: int, global_seq: int,
                 body: Optional[dict] = None, loader=None) -> None:
        self.steps_done = steps_done
        self.global_seq = global_seq
        self._body = body
        self._loader = loader

    def body(self) -> dict:
        if self._body is None:
            self._body = _decode_state(self._loader())
            if OBS.enabled:
                OBS.add("pinplay.v2_checkpoints_loaded", 1)
        return self._body


def schedule_suffix(schedule: Sequence, steps_done: int) -> List[tuple]:
    """The RLE schedule with the first ``steps_done`` steps dropped
    (splitting the straddling run), for suffix replay from a
    checkpoint."""
    remaining: List[tuple] = []
    seen = 0
    for index, (tid, count) in enumerate(schedule):
        if seen + count > steps_done:
            overlap = steps_done - seen
            if overlap:
                remaining.append((tid, count - overlap))
            else:
                remaining.append((tid, count))
            remaining.extend(schedule[index + 1:])
            break
        seen += count
    return remaining


# -- writer -------------------------------------------------------------------

class PinballWriter:
    """Streams v2 frames to a file object as recording proceeds.

    Nothing is buffered beyond the current frame: peak memory during a
    streamed record stays flat in region length.
    """

    def __init__(self, fileobj, program_name: str,
                 checkpoint_interval: int = 0) -> None:
        self._fh = fileobj
        self.frames_written = 0
        self.bytes_written = 0
        self._write(MAGIC)
        self.write_frame(K_PROLOGUE, _json_bytes({
            "format_version": 2,
            "program_name": program_name,
            "checkpoint_interval": int(checkpoint_interval),
        }))

    def _write(self, data: bytes) -> None:
        self._fh.write(data)
        self.bytes_written += len(data)

    def write_frame(self, kind: int, payload: bytes) -> None:
        self._write(_FRAME_HEADER.pack(
            kind, len(payload), zlib.crc32(payload) & 0xFFFFFFFF))
        self._write(payload)
        self.frames_written += 1
        if OBS.enabled:
            OBS.add("pinplay.v2_frames_written", 1)
            OBS.add("pinplay.v2_frame_bytes_written",
                    _FRAME_HEADER.size + len(payload))

    def write_snapshot(self, snapshot: dict) -> None:
        self.write_frame(K_SNAPSHOT,
                         zlib.compress(_json_bytes(snapshot), _ZLIB_LEVEL))

    def write_schedule(self, runs: Sequence) -> None:
        if runs:
            self.write_frame(K_SCHEDULE, _pack_schedule(runs))

    def write_mem_order(self, edges: Sequence) -> None:
        if edges:
            self.write_frame(K_MEM_ORDER, _pack_edges(edges))

    def write_syscalls(self, syscalls: Dict[int, list]) -> None:
        if syscalls:
            self.write_frame(K_SYSCALLS, _json_bytes(
                {str(tid): [[name, value] for name, value in log]
                 for tid, log in syscalls.items()}))

    def write_checkpoint(self, steps_done: int, global_seq: int,
                         body: dict) -> None:
        payload = (_CKPT_HEADER.pack(steps_done, global_seq)
                   + zlib.compress(_json_bytes(body), _ZLIB_LEVEL))
        self.write_frame(K_CHECKPOINT, payload)
        if OBS.enabled:
            OBS.add("pinplay.v2_checkpoints_embedded", 1)

    def write_exclusions(self, exclusions: Sequence) -> None:
        if exclusions:
            self.write_frame(K_EXCLUSIONS, _json_bytes(list(exclusions)))

    def write_meta(self, meta: dict) -> None:
        self.write_frame(K_META, _json_bytes(meta))


def encode_pinball(pinball) -> bytes:
    """An in-memory pinball rendered as a v2 container.

    Uses the writer's deterministic chunking, so a converted pinball
    shares frames with the streamed recording of the same run (frame
    *order* may differ, which the per-frame store dedup doesn't mind).
    """
    checkpoints = getattr(pinball, "checkpoints", None) or ()
    interval = 0
    if len(checkpoints) >= 1:
        interval = checkpoints[0].steps_done
    buffer = io.BytesIO()
    writer = PinballWriter(buffer, pinball.program_name,
                           checkpoint_interval=interval)
    writer.write_snapshot(pinball.snapshot)
    schedule = pinball.schedule
    for base in range(0, len(schedule), SCHEDULE_CHUNK):
        writer.write_schedule(schedule[base:base + SCHEDULE_CHUNK])
    edges = pinball.mem_order
    for base in range(0, len(edges), EDGE_CHUNK):
        writer.write_mem_order(edges[base:base + EDGE_CHUNK])
    writer.write_syscalls(pinball.syscalls)
    for checkpoint in checkpoints:
        writer.write_checkpoint(checkpoint.steps_done,
                                checkpoint.global_seq, checkpoint.body())
    writer.write_exclusions(pinball.exclusions)
    writer.write_meta(pinball.meta)
    return buffer.getvalue()


# -- lazy reader --------------------------------------------------------------

class _LazySection:
    """A pinball section decoded from its frames on first access.

    Plain attribute assignment still works (it lands in the instance
    cache), so code that mutates e.g. ``pinball.meta`` keeps working on
    lazy pinballs.
    """

    def __init__(self, name: str, decode) -> None:
        self.name = name
        self.decode = decode

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        try:
            return obj._cache[self.name]
        except KeyError:
            value = obj._cache[self.name] = self.decode(obj)
            return value

    def __set__(self, obj, value) -> None:
        obj._cache[self.name] = value


def _decode_json_frames(pinball: "LazyPinball", kind: int):
    for ref in pinball._frames:
        if ref.kind == kind:
            payload = ref.payload(pinball._blob, pinball._source)
            try:
                return json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise _frame_error(pinball._source, ref.offset, kind,
                                   "invalid JSON payload (%s)" % exc) from exc
    return None


def _decode_snapshot(pinball: "LazyPinball") -> dict:
    for ref in pinball._frames:
        if ref.kind == K_SNAPSHOT:
            payload = ref.payload(pinball._blob, pinball._source)
            try:
                return json.loads(zlib.decompress(payload).decode("utf-8"))
            except (zlib.error, UnicodeDecodeError, ValueError) as exc:
                raise _frame_error(
                    pinball._source, ref.offset, K_SNAPSHOT,
                    "invalid snapshot payload (%s)" % exc) from exc
    raise _frame_error(pinball._source, len(MAGIC), K_SNAPSHOT,
                       "missing snapshot frame")


def _decode_schedule_frames(pinball: "LazyPinball") -> List[tuple]:
    runs: List[tuple] = []
    for ref in pinball._frames:
        if ref.kind == K_SCHEDULE:
            payload = ref.payload(pinball._blob, pinball._source)
            if len(payload) % _SCHED_ENTRY.size:
                raise _frame_error(
                    pinball._source, ref.offset, K_SCHEDULE,
                    "payload length %d is not a multiple of %d"
                    % (len(payload), _SCHED_ENTRY.size))
            runs.extend(_unpack_schedule(payload))
    return runs


def _decode_edge_frames(pinball: "LazyPinball") -> List[tuple]:
    edges: List[tuple] = []
    for ref in pinball._frames:
        if ref.kind == K_MEM_ORDER:
            payload = ref.payload(pinball._blob, pinball._source)
            if len(payload) % _EDGE_ENTRY.size:
                raise _frame_error(
                    pinball._source, ref.offset, K_MEM_ORDER,
                    "payload length %d is not a multiple of %d"
                    % (len(payload), _EDGE_ENTRY.size))
            try:
                edges.extend(_unpack_edges(payload))
            except IndexError as exc:
                raise _frame_error(
                    pinball._source, ref.offset, K_MEM_ORDER,
                    "invalid edge kind code") from exc
    return edges


def _decode_syscalls(pinball: "LazyPinball") -> dict:
    payload = _decode_json_frames(pinball, K_SYSCALLS)
    if payload is None:
        return {}
    try:
        return {int(tid): [(entry[0], entry[1]) for entry in log]
                for tid, log in payload.items()}
    except (TypeError, ValueError, IndexError, AttributeError) as exc:
        raise PinballFormatError(
            "%s: v2 syscalls frame: malformed payload (%s: %s)"
            % (pinball._source, type(exc).__name__, exc)) from exc


def _decode_exclusions(pinball: "LazyPinball") -> list:
    payload = _decode_json_frames(pinball, K_EXCLUSIONS)
    return payload if payload is not None else []


def _decode_meta(pinball: "LazyPinball") -> dict:
    payload = _decode_json_frames(pinball, K_META)
    if not isinstance(payload, dict):
        raise PinballFormatError(
            "%s: v2 meta frame: payload must be a JSON object"
            % pinball._source)
    return payload


def _decode_checkpoints(pinball: "LazyPinball") -> List[EmbeddedCheckpoint]:
    checkpoints: List[EmbeddedCheckpoint] = []
    for ref in pinball._frames:
        if ref.kind != K_CHECKPOINT:
            continue
        if ref.length < _CKPT_HEADER.size:
            raise _frame_error(
                pinball._source, ref.offset, K_CHECKPOINT,
                "payload too short for checkpoint header (%d bytes)"
                % ref.length)
        # The scan header is read without CRC work (laziness is the
        # point); the body loader below verifies the whole payload.
        steps_done, global_seq = _CKPT_HEADER.unpack_from(
            pinball._blob, ref.start)

        def loader(ref=ref):
            payload = ref.payload(pinball._blob, pinball._source)
            try:
                return json.loads(zlib.decompress(
                    payload[_CKPT_HEADER.size:]).decode("utf-8"))
            except (zlib.error, UnicodeDecodeError, ValueError) as exc:
                raise _frame_error(
                    pinball._source, ref.offset, K_CHECKPOINT,
                    "invalid checkpoint body (%s)" % exc) from exc

        checkpoints.append(
            EmbeddedCheckpoint(steps_done, global_seq, loader=loader))
    checkpoints.sort(key=lambda c: c.steps_done)
    return checkpoints


class LazyPinball(Pinball):
    """A v2 pinball that decodes sections on first access.

    Opening costs a header-only frame scan; replay touches schedule,
    syscalls, snapshot and meta but never pays for mem-order edges or
    checkpoint bodies it does not use.  All decoded data comes straight
    from packed structs / trusted JSON, so there is no per-element
    re-validation pass at all (the per-frame CRC already vouched for the
    bytes).
    """

    snapshot = _LazySection("snapshot", _decode_snapshot)
    schedule = _LazySection("schedule", _decode_schedule_frames)
    syscalls = _LazySection("syscalls", _decode_syscalls)
    mem_order = _LazySection("mem_order", _decode_edge_frames)
    exclusions = _LazySection("exclusions", _decode_exclusions)
    meta = _LazySection("meta", _decode_meta)
    checkpoints = _LazySection("checkpoints", _decode_checkpoints)

    def __init__(self, blob: bytes, frames: List[FrameRef],
                 source: str) -> None:
        # Deliberately no super().__init__: every section is lazy.
        self._blob = blob
        self._frames = frames
        self._source = source
        self._cache: dict = {}
        prologue = json.loads(
            frames[0].payload(blob, source).decode("utf-8"))
        version = prologue.get("format_version")
        if version != 2:
            raise _frame_error(
                source, frames[0].offset, K_PROLOGUE,
                "unsupported pinball format version %r (expected 2)"
                % (version,))
        self.program_name = prologue.get("program_name", "")
        self.checkpoint_interval = int(
            prologue.get("checkpoint_interval") or 0)
        self._native_format = "v2"

    @property
    def format(self) -> str:
        return "v2"

    def to_bytes(self, compress: bool = True,
                 format: Optional[str] = None) -> bytes:
        fmt = format or "v2"
        if fmt == "v2":
            # Already the canonical encoding; materialize when the
            # backing store is an mmap rather than bytes.
            blob = self._blob
            return blob if isinstance(blob, bytes) else bytes(blob)
        return super().to_bytes(compress=compress, format=fmt)


def open_pinball(blob: bytes, source: str = "<bytes>") -> LazyPinball:
    """Open a v2 container lazily; raises :class:`PinballFormatError`
    with frame kind + byte offset on any structural problem."""
    frames = scan_frames(blob, source)
    pinball = LazyPinball(blob, frames, source)
    if OBS.enabled:
        OBS.add("pinplay.v2_pinballs_opened", 1)
        OBS.add("pinplay.v2_frames_indexed", len(frames))
    return pinball
