"""The PinPlay-style logger: capture a region of execution into a pinball.

Two phases, exactly as in the paper:

1. **Fast-forward** — run with *no* tools attached (the VM skips event
   construction entirely, the analog of Pin-only speed) until the main
   thread has retired ``skip`` instructions.
2. **Record** — snapshot the full architectural state, reset region-relative
   counters, attach the :class:`LoggerTool`, and run until the main thread
   retires ``length`` instructions, a failure symptom fires, or the program
   ends.  The tool records the schedule, nondeterministic syscall results,
   shared-memory access-order edges, and per-thread instruction counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.isa.program import Program
from repro.obs.registry import OBS
from repro.pinplay.pinball import Pinball, state_hash
from repro.pinplay.regions import RegionSpec
from repro.vm.hooks import InstrEvent, SyscallEvent, Tool
from repro.vm.machine import Machine
from repro.vm.scheduler import Scheduler, ScheduleRecorder
from repro.vm.syscalls import NONDET_SYSCALLS
from repro.vm.thread import ThreadStatus

MAIN_TID = 0


class LoggerTool(Tool):
    """Records everything replay needs while a region executes."""

    wants_instr_events = True
    retains_instr_events = False   # edges/counts are extracted per event

    def __init__(self) -> None:
        self.schedule = ScheduleRecorder()
        self.syscalls: Dict[int, List[Tuple[str, object]]] = {}
        #: (from_tid, from_tindex, to_tid, to_tindex, addr, kind)
        self.mem_order: List[Tuple[int, int, int, int, int, str]] = []
        # Per-address bookkeeping, bounded per address by thread count:
        # the last write, and the *last read per thread* since that write
        # (transitively earlier reads are ordered by program order, so one
        # RAW edge per (write epoch, reading thread) and one WAR edge per
        # (write, previously-reading thread) suffice for a correct order).
        self._last_writer: Dict[int, Tuple[int, int]] = {}
        self._readers_since_write: Dict[int, Dict[int, int]] = {}
        self._seen_by: Dict[int, int] = {}   # addr -> sole tid, or -2 = shared
        self.thread_creates: List[Tuple[int, Optional[int], int]] = []

    def on_step(self, tid: int) -> None:
        self.schedule.record(tid)

    def on_syscall(self, event: SyscallEvent) -> None:
        if event.name in NONDET_SYSCALLS:
            self.syscalls.setdefault(event.tid, []).append(
                (event.name, event.result))

    def on_thread_start(self, tid, parent, start_pc, arg) -> None:
        self.thread_creates.append((tid, parent, start_pc))

    def _mark(self, addr: int, tid: int) -> bool:
        """Record that ``tid`` touched ``addr``; True if addr is shared."""
        owner = self._seen_by.get(addr)
        if owner is None:
            self._seen_by[addr] = tid
            return False
        if owner == tid:
            return False
        if owner != -2:
            self._seen_by[addr] = -2
        return True

    def on_instr(self, event: InstrEvent) -> None:
        tid = event.tid
        tindex = event.tindex
        for addr, _value in event.mem_reads:
            shared = self._mark(addr, tid)
            readers = self._readers_since_write.setdefault(addr, {})
            if shared and tid not in readers:
                writer = self._last_writer.get(addr)
                if writer is not None and writer[0] != tid:
                    self.mem_order.append(
                        (writer[0], writer[1], tid, tindex, addr, "raw"))
            readers[tid] = tindex
        for addr, _value in event.mem_writes:
            shared = self._mark(addr, tid)
            if shared:
                writer = self._last_writer.get(addr)
                if writer is not None and writer[0] != tid:
                    self.mem_order.append(
                        (writer[0], writer[1], tid, tindex, addr, "waw"))
                for reader_tid, reader_tindex in self._readers_since_write.get(
                        addr, {}).items():
                    if reader_tid != tid:
                        self.mem_order.append(
                            (reader_tid, reader_tindex, tid, tindex, addr,
                             "war"))
            self._last_writer[addr] = (tid, tindex)
            if addr in self._readers_since_write:
                self._readers_since_write[addr] = {}


def _fast_forward(machine: Machine, skip: int) -> None:
    """Advance until the main thread has retired ``skip`` instructions."""
    main = machine.threads[MAIN_TID]
    while not machine.finished and main.instr_count < skip:
        if main.status == ThreadStatus.FINISHED:
            break
        machine.run(max_steps=skip - main.instr_count)


def record_region(program: Program,
                  scheduler: Scheduler,
                  region: Optional[RegionSpec] = None,
                  inputs=(), rand_seed: int = 0,
                  extra_tools=(),
                  engine: Optional[str] = None) -> Pinball:
    """Log a region of a fresh run of ``program`` into a pinball.

    ``scheduler`` drives the interleaving of the *recording* run (e.g. a
    seeded :class:`~repro.vm.scheduler.RandomScheduler` to shake out a
    race).  ``extra_tools`` attach additional analyses to the recorded
    region (used by the Maple integration).  ``engine`` selects the
    interpreter (see :data:`repro.vm.machine.ENGINES`); the fast-forward
    phase runs with no tools attached, so the predecoded engine's
    untraced path gives it Pin-only speed.
    """
    region = region or RegionSpec()
    machine = Machine(program, scheduler=scheduler, inputs=inputs,
                      rand_seed=rand_seed, engine=engine)
    if region.skip:
        with OBS.span("pinplay.fast_forward"):
            _fast_forward(machine, region.skip)

    machine.reset_counters()
    snapshot = machine.snapshot().to_dict()
    output_start = len(machine.output)
    tool = LoggerTool()
    machine.add_tool(tool)
    for extra in extra_tools:
        machine.add_tool(extra)

    main = machine.threads[MAIN_TID]
    end_reason = "program_end"
    with OBS.span("pinplay.record"):
        while True:
            if machine.finished:
                end_reason = ("failure" if machine.failure is not None
                              else "program_end")
                break
            if region.length is not None:
                remaining = region.length - main.instr_count
                if remaining <= 0:
                    end_reason = "length_reached"
                    break
                if main.status == ThreadStatus.FINISHED:
                    end_reason = "main_finished"
                    break
                machine.run(max_steps=remaining)
            else:
                machine.run()

    if OBS.enabled:
        OBS.add("pinplay.regions_recorded", 1)
        OBS.add("pinplay.schedule_steps", tool.schedule.total())
        OBS.add("pinplay.schedule_runs", len(tool.schedule.runs))
        OBS.add("pinplay.mem_order_edges", len(tool.mem_order))
        OBS.add("pinplay.syscall_results_logged",
                sum(len(log) for log in tool.syscalls.values()))
        OBS.add("pinplay.thread_creates", len(tool.thread_creates))

    counts = {str(tid): thread.instr_count
              for tid, thread in machine.threads.items()}
    meta = {
        "kind": "whole" if region.is_whole_program else "region",
        "skip": region.skip,
        "length": region.length,
        "end_reason": end_reason,
        "failure": machine.failure,
        "thread_instr_counts": counts,
        "schedule_steps": tool.schedule.total(),
        "output": list(machine.output[output_start:]),
        "final_state_hash": state_hash(machine),
        "exit_code": machine.exit_code,
    }
    return Pinball(
        program_name=program.name,
        snapshot=snapshot,
        schedule=tool.schedule.runs,
        syscalls=tool.syscalls,
        mem_order=tool.mem_order,
        meta=meta,
        # The recorder structures are already canonical (int tids/counts,
        # str names): skip the constructor's per-element re-cast pass.
        trusted=True,
    )
