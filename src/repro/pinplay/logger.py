"""The PinPlay-style logger: capture a region of execution into a pinball.

Two phases, exactly as in the paper:

1. **Fast-forward** — run with *no* tools attached (the VM skips event
   construction entirely, the analog of Pin-only speed) until the main
   thread has retired ``skip`` instructions.
2. **Record** — snapshot the full architectural state, reset region-relative
   counters, attach the :class:`LoggerTool`, and run until the main thread
   retires ``length`` instructions, a failure symptom fires, or the program
   ends.  The tool records the schedule, nondeterministic syscall results,
   shared-memory access-order edges, and per-thread instruction counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import config
from repro.isa.program import Program
from repro.obs.registry import OBS
from repro.pinplay.format_v2 import (EDGE_CHUNK, SCHEDULE_CHUNK,
                                     EmbeddedCheckpoint, PinballWriter,
                                     capture_state)
from repro.pinplay.pinball import Pinball, state_hash
from repro.pinplay.regions import RegionSpec
from repro.vm.hooks import InstrEvent, SyscallEvent, Tool
from repro.vm.machine import Machine
from repro.vm.scheduler import Scheduler, ScheduleRecorder
from repro.vm.syscalls import NONDET_SYSCALLS
from repro.vm.thread import ThreadStatus

MAIN_TID = 0


class LoggerTool(Tool):
    """Records everything replay needs while a region executes."""

    wants_instr_events = True
    retains_instr_events = False   # edges/counts are extracted per event

    def __init__(self) -> None:
        self.schedule = ScheduleRecorder()
        self.syscalls: Dict[int, List[Tuple[str, object]]] = {}
        #: (from_tid, from_tindex, to_tid, to_tindex, addr, kind)
        self.mem_order: List[Tuple[int, int, int, int, int, str]] = []
        # Per-address bookkeeping, bounded per address by thread count:
        # the last write, and the *last read per thread* since that write
        # (transitively earlier reads are ordered by program order, so one
        # RAW edge per (write epoch, reading thread) and one WAR edge per
        # (write, previously-reading thread) suffice for a correct order).
        self._last_writer: Dict[int, Tuple[int, int]] = {}
        self._readers_since_write: Dict[int, Dict[int, int]] = {}
        self._seen_by: Dict[int, int] = {}   # addr -> sole tid, or -2 = shared
        self.thread_creates: List[Tuple[int, Optional[int], int]] = []

    def on_step(self, tid: int) -> None:
        self.schedule.record(tid)

    def on_syscall(self, event: SyscallEvent) -> None:
        if event.name in NONDET_SYSCALLS:
            self.syscalls.setdefault(event.tid, []).append(
                (event.name, event.result))

    def on_thread_start(self, tid, parent, start_pc, arg) -> None:
        self.thread_creates.append((tid, parent, start_pc))

    def _mark(self, addr: int, tid: int) -> bool:
        """Record that ``tid`` touched ``addr``; True if addr is shared."""
        owner = self._seen_by.get(addr)
        if owner is None:
            self._seen_by[addr] = tid
            return False
        if owner == tid:
            return False
        if owner != -2:
            self._seen_by[addr] = -2
        return True

    def on_instr(self, event: InstrEvent) -> None:
        tid = event.tid
        tindex = event.tindex
        for addr, _value in event.mem_reads:
            shared = self._mark(addr, tid)
            readers = self._readers_since_write.setdefault(addr, {})
            if shared and tid not in readers:
                writer = self._last_writer.get(addr)
                if writer is not None and writer[0] != tid:
                    self.mem_order.append(
                        (writer[0], writer[1], tid, tindex, addr, "raw"))
            readers[tid] = tindex
        for addr, _value in event.mem_writes:
            shared = self._mark(addr, tid)
            if shared:
                writer = self._last_writer.get(addr)
                if writer is not None and writer[0] != tid:
                    self.mem_order.append(
                        (writer[0], writer[1], tid, tindex, addr, "waw"))
                for reader_tid, reader_tindex in self._readers_since_write.get(
                        addr, {}).items():
                    if reader_tid != tid:
                        self.mem_order.append(
                            (reader_tid, reader_tindex, tid, tindex, addr,
                             "war"))
            self._last_writer[addr] = (tid, tindex)
            if addr in self._readers_since_write:
                self._readers_since_write[addr] = {}


class FastRecorder(Tool):
    """The always-on record path: no per-instruction events at all.

    Registered both as a machine tool (syscall results and thread
    creations fire through the untraced syscall/lifecycle hooks) and as
    the machine's *recorder* (:meth:`Machine.set_recorder`): the run
    loop records the RLE schedule inline and calls :meth:`on_mem` only
    for instructions that touched memory.  The mem-order algorithm is
    the same as :class:`LoggerTool`'s, fed from the raw access lists
    instead of events.

    With a :class:`~repro.pinplay.format_v2.PinballWriter` attached,
    full schedule/edge chunks are flushed to disk as they fill and a
    machine-state checkpoint frame is emitted every
    ``checkpoint_interval`` steps — peak memory stays flat in region
    length.  Without a writer the same chunks simply accumulate in
    memory (and checkpoints, if requested, are kept as
    :class:`EmbeddedCheckpoint` objects on the resulting pinball).
    """

    wants_instr_events = False     # the whole point

    def __init__(self, writer: Optional[PinballWriter] = None,
                 checkpoint_interval: int = 0) -> None:
        self.writer = writer
        self.checkpoint_interval = int(checkpoint_interval or 0)
        self.next_checkpoint = self.checkpoint_interval
        self.steps_done = 0
        self.schedule_runs: List[Tuple[int, int]] = []
        self.syscalls: Dict[int, List[Tuple[str, object]]] = {}
        self.mem_order: List[Tuple[int, int, int, int, int, str]] = []
        self.thread_creates: List[Tuple[int, Optional[int], int]] = []
        self.checkpoints: List[EmbeddedCheckpoint] = []
        # Flushed-so-far totals (the live lists are cleared on flush).
        self.run_count = 0
        self.edge_count = 0
        # Pending RLE run, owned by the machine loop between run() calls.
        self._run_tid: Optional[int] = None
        self._run_count = 0
        # Per-address bookkeeping, semantically identical to LoggerTool's
        # three dicts but merged into one record per address so the hot
        # path does a single hash lookup:
        #   addr -> [owner (sole tid, or -2 = shared),
        #            readers-since-last-write {tid: tindex} or None,
        #            last-writer tid or None, last-writer tindex]
        self._mem_state: Dict[int, list] = {}
        self._output_start = 0

    def attach(self, machine: Machine, output_start: int) -> None:
        machine.add_tool(self)
        machine.set_recorder(self)
        self._output_start = output_start

    # -- feed from the machine loop -------------------------------------------

    def append_run(self, tid: int, count: int) -> None:
        runs = self.schedule_runs
        runs.append((tid, count))
        self.run_count += 1
        if self.writer is not None and len(runs) >= SCHEDULE_CHUNK:
            self.writer.write_schedule(runs)
            del runs[:]

    def on_syscall(self, event: SyscallEvent) -> None:
        if event.name in NONDET_SYSCALLS:
            self.syscalls.setdefault(event.tid, []).append(
                (event.name, event.result))

    def on_thread_start(self, tid, parent, start_pc, arg) -> None:
        self.thread_creates.append((tid, parent, start_pc))

    def on_mem(self, tid: int, tindex: int, read_addrs, write_addrs,
               pc: int = -1) -> None:
        """Record access-order edges for one instruction's memory touches.

        Takes bare address lists (the record micro-ops deposit addresses
        only — edge detection never needs values) and emits the same
        raw/waw/war edges, in the same order, as :class:`LoggerTool`'s
        event-stream walk (the differential suite asserts this).  ``pc``
        identifies the accessing instruction; edge detection ignores it
        (only site-reporting recorders like the online race detector
        need it).
        """
        edges = self.mem_order
        state = self._mem_state
        for addr in read_addrs:
            st = state.get(addr)
            if st is None:
                state[addr] = [tid, {tid: tindex}, None, 0]
                continue
            readers = st[1]
            if st[0] != tid:
                if st[0] != -2:
                    st[0] = -2
                if readers is None:
                    st[1] = {tid: tindex}
                    wtid = st[2]
                    if wtid is not None and wtid != tid:
                        edges.append((wtid, st[3], tid, tindex, addr, "raw"))
                    continue
                if tid not in readers:
                    wtid = st[2]
                    if wtid is not None and wtid != tid:
                        edges.append((wtid, st[3], tid, tindex, addr, "raw"))
            elif readers is None:
                st[1] = {tid: tindex}
                continue
            readers[tid] = tindex
        for addr in write_addrs:
            st = state.get(addr)
            if st is None:
                state[addr] = [tid, None, tid, tindex]
                continue
            if st[0] != tid:
                if st[0] != -2:
                    st[0] = -2
                wtid = st[2]
                if wtid is not None and wtid != tid:
                    edges.append((wtid, st[3], tid, tindex, addr, "waw"))
                readers = st[1]
                if readers:
                    for reader_tid, reader_tindex in readers.items():
                        if reader_tid != tid:
                            edges.append((reader_tid, reader_tindex, tid,
                                          tindex, addr, "war"))
            st[2] = tid
            st[3] = tindex
            readers = st[1]
            if readers:
                readers.clear()
        if self.writer is not None and len(edges) >= EDGE_CHUNK:
            self.edge_count += len(edges)
            self.writer.write_mem_order(edges)
            del edges[:]

    # -- checkpoints ----------------------------------------------------------

    def capture(self, machine: Machine, steps_done: int) -> None:
        """Emit one embedded checkpoint for the state after
        ``steps_done`` region steps (called from the machine loop
        *before* the next step executes)."""
        consumed = {tid: len(log) for tid, log in self.syscalls.items()}
        body = capture_state(machine, consumed,
                             machine.output[self._output_start:])
        if self.writer is not None:
            self.writer.write_checkpoint(steps_done, machine.global_seq,
                                         body)
        else:
            self.checkpoints.append(
                EmbeddedCheckpoint(steps_done, machine.global_seq,
                                   body=body))
        self.next_checkpoint = steps_done + self.checkpoint_interval

    def finish(self) -> None:
        """Flush the pending RLE run (the machine loop syncs it back
        between run() calls)."""
        if self._run_count:
            self.append_run(self._run_tid, self._run_count)
            self._run_tid = None
            self._run_count = 0

    def total_edges(self) -> int:
        return self.edge_count + len(self.mem_order)


class _CheckpointHook(Tool):
    """Checkpoint capture for the classic (event-based) record path.

    ``on_step`` fires after ``self.steps`` region steps have completed
    and before the pending one executes — the same capture point the
    fast path uses — so v2 recordings made with extra tools or the
    legacy engine embed byte-identical checkpoints.
    """

    def __init__(self, machine: Machine, logger: LoggerTool,
                 interval: int, output_start: int) -> None:
        self.machine = machine
        self.logger = logger
        self.interval = interval
        self.steps = 0
        self.checkpoints: List[EmbeddedCheckpoint] = []
        self._output_start = output_start

    def on_step(self, tid: int) -> None:
        if self.steps and self.steps % self.interval == 0:
            machine = self.machine
            consumed = {t: len(log)
                        for t, log in self.logger.syscalls.items()}
            body = capture_state(machine, consumed,
                                 machine.output[self._output_start:])
            self.checkpoints.append(
                EmbeddedCheckpoint(self.steps, machine.global_seq,
                                   body=body))
        self.steps += 1


def _fast_forward(machine: Machine, skip: int) -> None:
    """Advance until the main thread has retired ``skip`` instructions."""
    main = machine.threads[MAIN_TID]
    while not machine.finished and main.instr_count < skip:
        if main.status == ThreadStatus.FINISHED:
            break
        machine.run(max_steps=skip - main.instr_count)


def record_region(program: Program,
                  scheduler: Scheduler,
                  region: Optional[RegionSpec] = None,
                  inputs=(), rand_seed: int = 0,
                  extra_tools=(),
                  engine: Optional[str] = None,
                  stream_path: Optional[str] = None,
                  pinball_format: Optional[str] = None,
                  checkpoint_interval: Optional[int] = None,
                  heap_poison: bool = False) -> Pinball:
    """Log a region of a fresh run of ``program`` into a pinball.

    ``scheduler`` drives the interleaving of the *recording* run (e.g. a
    seeded :class:`~repro.vm.scheduler.RandomScheduler` to shake out a
    race).  ``extra_tools`` attach additional analyses to the recorded
    region (used by the Maple integration).  ``engine`` selects the
    interpreter (see :data:`repro.vm.machine.ENGINES`); the fast-forward
    phase runs with no tools attached, so the predecoded engine's
    untraced path gives it Pin-only speed.

    The record phase itself uses the event-free :class:`FastRecorder`
    whenever it can (predecoded engine, no extra tools) and falls back
    to the classic :class:`LoggerTool` otherwise — both produce
    identical pinballs (the differential suite asserts it).

    ``pinball_format``/``checkpoint_interval`` default to the config
    knobs.  Under format v2 the recorder embeds a machine checkpoint
    every ``checkpoint_interval`` steps, and ``stream_path`` (fast path
    only) streams frames to that file during recording — the returned
    pinball is the lazily-opened file, and peak memory stays flat in
    region length.

    ``heap_poison`` enables the allocator's poison-on-free mode for the
    recorded run (see :class:`repro.vm.memory.Memory`); the flag rides
    in the region snapshot, so replays reproduce the poisoned reads
    exactly.
    """
    region = region or RegionSpec()
    fmt = config.pinball_format(explicit=pinball_format)
    if fmt == "v2" or checkpoint_interval is not None:
        interval = config.checkpoint_interval(explicit=checkpoint_interval)
    else:
        interval = 0
    if stream_path is not None and fmt != "v2":
        raise ValueError("stream_path requires pinball format v2")
    machine = Machine(program, scheduler=scheduler, inputs=inputs,
                      rand_seed=rand_seed, engine=engine,
                      heap_poison=heap_poison)
    if region.skip:
        with OBS.span("pinplay.fast_forward"):
            _fast_forward(machine, region.skip)

    machine.reset_counters()
    snapshot = machine.snapshot().to_dict()
    output_start = len(machine.output)

    use_fast = machine.engine == "predecoded" and not extra_tools
    recorder = tool = hook = None
    writer = stream_fh = None
    if use_fast:
        if stream_path is not None:
            stream_fh = open(stream_path, "wb")
            writer = PinballWriter(stream_fh, program.name,
                                   checkpoint_interval=interval)
            writer.write_snapshot(snapshot)
        recorder = FastRecorder(writer=writer,
                                checkpoint_interval=interval)
        recorder.attach(machine, output_start)
    else:
        if stream_path is not None:
            raise ValueError(
                "stream_path requires the fast record path "
                "(predecoded engine, no extra tools)")
        tool = LoggerTool()
        machine.add_tool(tool)
        if interval:
            hook = _CheckpointHook(machine, tool, interval, output_start)
            machine.add_tool(hook)
        for extra in extra_tools:
            machine.add_tool(extra)

    main = machine.threads[MAIN_TID]
    end_reason = "program_end"
    try:
        with OBS.span("pinplay.record"):
            while True:
                if machine.finished:
                    end_reason = ("failure" if machine.failure is not None
                                  else "program_end")
                    break
                if region.length is not None:
                    remaining = region.length - main.instr_count
                    if remaining <= 0:
                        end_reason = "length_reached"
                        break
                    if main.status == ThreadStatus.FINISHED:
                        end_reason = "main_finished"
                        break
                    machine.run(max_steps=remaining)
                else:
                    machine.run()
    except BaseException:
        if stream_fh is not None:
            stream_fh.close()
        raise

    if use_fast:
        machine.set_recorder(None)
        recorder.finish()
        schedule_runs = recorder.schedule_runs
        syscalls = recorder.syscalls
        mem_order = recorder.mem_order
        thread_creates = recorder.thread_creates
        checkpoints = recorder.checkpoints
        schedule_steps = recorder.steps_done
        run_count = recorder.run_count
        edge_count = recorder.total_edges()
    else:
        schedule_runs = tool.schedule.runs
        syscalls = tool.syscalls
        mem_order = tool.mem_order
        thread_creates = tool.thread_creates
        checkpoints = hook.checkpoints if hook is not None else []
        schedule_steps = tool.schedule.total()
        run_count = len(schedule_runs)
        edge_count = len(mem_order)

    if OBS.enabled:
        OBS.add("pinplay.regions_recorded", 1)
        OBS.add("pinplay.schedule_steps", schedule_steps)
        OBS.add("pinplay.schedule_runs", run_count)
        OBS.add("pinplay.mem_order_edges", edge_count)
        OBS.add("pinplay.syscall_results_logged",
                sum(len(log) for log in syscalls.values()))
        OBS.add("pinplay.thread_creates", len(thread_creates))

    counts = {str(tid): thread.instr_count
              for tid, thread in machine.threads.items()}
    meta = {
        "kind": "whole" if region.is_whole_program else "region",
        "skip": region.skip,
        "length": region.length,
        "end_reason": end_reason,
        "failure": machine.failure,
        "thread_instr_counts": counts,
        "schedule_steps": schedule_steps,
        "output": list(machine.output[output_start:]),
        "final_state_hash": state_hash(machine),
        "exit_code": machine.exit_code,
        # Re-execution provenance: fresh runs of the same program (the
        # hunt pipeline's candidate schedules) need the original
        # nondeterminism sources, not just the recorded log.
        "inputs": list(inputs),
        "rand_seed": rand_seed,
    }
    if writer is not None:
        # Flush the final partial chunks and the epilogue, then hand the
        # caller the lazily-opened file: the frames were never all in
        # memory at once.
        writer.write_schedule(schedule_runs)
        writer.write_mem_order(mem_order)
        writer.write_syscalls(syscalls)
        writer.write_meta(meta)
        stream_fh.close()
        if OBS.enabled:
            OBS.add("pinplay.pinballs_saved", 1)
            OBS.add("pinplay.pinball_bytes_written", writer.bytes_written)
        return Pinball.load(stream_path)
    pinball = Pinball(
        program_name=program.name,
        snapshot=snapshot,
        schedule=schedule_runs,
        syscalls=syscalls,
        mem_order=mem_order,
        meta=meta,
        # The recorder structures are already canonical (int tids/counts,
        # str names): skip the constructor's per-element re-cast pass.
        trusted=True,
    )
    pinball.checkpoints = checkpoints
    if fmt == "v2":
        pinball._native_format = "v2"
    return pinball
