"""The pinball: everything needed to deterministically replay an execution.

A pinball captures one *region* of one run of one program:

* ``snapshot`` — full architectural state at region entry (memory image,
  all thread contexts, lock table, RNG state, pending inputs);
* ``schedule`` — the run-length-encoded interleaving, one entry per
  scheduler step (including lock attempts that blocked);
* ``syscalls`` — per-thread ordered results of nondeterministic syscalls
  (``input``/``rand``/``time``) to inject during replay;
* ``mem_order`` — the shared-memory access-order edges (RAW/WAW/WAR across
  threads) the dynamic slicer uses to build the global trace — "already
  available in a pinball, as it is needed for replay" (paper Section 3);
* ``exclusions`` — for *slice pinballs* only: the dynamic code-exclusion
  records with their side-effect injections (paper Section 4);
* ``meta`` — bookkeeping: region bounds, per-thread instruction counts,
  failure record, expected output, and a final-state hash the replayer can
  verify against.

Two serialized forms exist.  Format **v1** is one zlib-compressed JSON
blob (this module).  Format **v2** (:mod:`repro.pinplay.format_v2`) is a
streaming container of framed binary segments with embedded machine
checkpoints; :meth:`Pinball.from_bytes` auto-detects both, and
``to_bytes``/``save`` take a ``format`` argument whose default follows
the ``repro.config`` ``pinball_format`` knob.  :meth:`Pinball.save`
returns the on-disk byte size, which is what the Table 2/3 "Space"
columns report.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import zlib
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.registry import OBS


class PinballFormatError(ValueError):
    """A blob/file is not a loadable pinball.

    One clean, typed error for every way deserialization can fail —
    truncated or corrupt compressed data, non-JSON payloads, non-object
    JSON, wrong ``format_version``, missing required fields — instead of
    leaking raw ``zlib``/``json``/``KeyError`` internals to callers.  The
    message always names the offending source (file path, or
    ``"<bytes>"`` for in-memory blobs).  Subclasses :class:`ValueError`
    so existing ``except ValueError`` handlers (the CLI's exit-65 path)
    keep working.
    """


class Pinball:
    """A recorded execution region; see module docstring for the fields."""

    FORMAT_VERSION = 1

    def __init__(self,
                 program_name: str,
                 snapshot: dict,
                 schedule: Sequence[Tuple[int, int]],
                 syscalls: Dict[int, List[Tuple[str, object]]],
                 mem_order: Sequence[Tuple[int, int, int, int, int, str]] = (),
                 exclusions: Sequence[dict] = (),
                 meta: Optional[dict] = None,
                 trusted: bool = False) -> None:
        """``trusted=True`` skips the per-element normalization casts.

        Use it only when the inputs are already in canonical form — i.e.
        they come from this class's own serialized representation
        (:meth:`from_dict`) or from the logger/relogger, whose recorders
        produce typed tuples directly.  Outer containers are still
        shallow-copied so pinballs never alias caller state.
        """
        self.program_name = program_name
        self.snapshot = snapshot
        if trusted:
            self.schedule = list(schedule)
            self.syscalls = {tid: list(log)
                             for tid, log in syscalls.items()}
            self.mem_order = list(mem_order)
        else:
            self.schedule = [(int(t), int(c)) for t, c in schedule]
            self.syscalls = {int(t): [(str(n), v) for n, v in log]
                             for t, log in syscalls.items()}
            self.mem_order = [tuple(edge) for edge in mem_order]
        self.exclusions = list(exclusions)
        self.meta = dict(meta or {})
        #: :class:`~repro.pinplay.format_v2.EmbeddedCheckpoint` list —
        #: populated by the recorder (v2) or checkpoint generation; not
        #: part of the v1 serialized form.
        self.checkpoints: list = []
        #: Set to "v2" by a v2 recording: serialization then defaults to
        #: v2 even when the config knob says v1 (the embedded
        #: checkpoints would otherwise silently drop).
        self._native_format = "v1"

    @property
    def format(self) -> str:
        """The serialized form this pinball came from / natively uses."""
        return self._native_format

    # -- derived quantities ---------------------------------------------------

    @property
    def kind(self) -> str:
        return self.meta.get("kind", "region")

    @property
    def total_steps(self) -> int:
        # Cached: O(runs) to sum, and callers treat it as a cheap scalar
        # (the debugger reads it per command).  The cache key guards the
        # two ways the list could change under us — rebinding and
        # appends — neither of which any current code path does after
        # construction.
        schedule = self.schedule
        cached = self.__dict__.get("_total_steps")
        if (cached is not None and cached[0] is schedule
                and cached[1] == len(schedule)):
            return cached[2]
        total = sum(count for _, count in schedule)
        self.__dict__["_total_steps"] = (schedule, len(schedule), total)
        return total

    @property
    def total_instructions(self) -> int:
        """Instructions retired in the region, across all threads."""
        counts = self.meta.get("thread_instr_counts", {})
        return sum(int(v) for v in counts.values())

    def thread_instructions(self, tid: int) -> int:
        counts = self.meta.get("thread_instr_counts", {})
        return int(counts.get(str(tid), counts.get(tid, 0)))

    def nearest_checkpoint(self, steps: int):
        """The latest embedded checkpoint at or before region step
        ``steps`` (None when the pinball carries none that early).

        The one checkpoint-selection primitive: every consumer (the
        replayer's resume path, the shard scout, the debugger's rewind,
        the reexec slicer's window passes) binary-searches the same
        cached ascending index instead of scanning CHECKPOINT frames
        independently.  The cache key guards rebinding and appends,
        the two ways the list could change after construction.
        """
        checkpoints = self.checkpoints
        if not checkpoints:
            return None
        cached = self.__dict__.get("_ckpt_index")
        if (cached is None or cached[0] is not checkpoints
                or cached[1] != len(checkpoints)):
            ordered = sorted(checkpoints, key=lambda c: c.steps_done)
            cached = (checkpoints, len(checkpoints), ordered,
                      [c.steps_done for c in ordered])
            self.__dict__["_ckpt_index"] = cached
        index = bisect_right(cached[3], steps)
        return cached[2][index - 1] if index else None

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format_version": self.FORMAT_VERSION,
            "program_name": self.program_name,
            "snapshot": self.snapshot,
            "schedule": [list(entry) for entry in self.schedule],
            "syscalls": {str(tid): [[name, value] for name, value in log]
                         for tid, log in self.syscalls.items()},
            "mem_order": [list(edge) for edge in self.mem_order],
            "exclusions": self.exclusions,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, payload: dict, source: str = "<dict>") -> "Pinball":
        if not isinstance(payload, dict):
            raise PinballFormatError(
                "%s: pinball payload must be a JSON object, got %s"
                % (source, type(payload).__name__))
        version = payload.get("format_version")
        if version != cls.FORMAT_VERSION:
            raise PinballFormatError(
                "%s: unsupported pinball format version %r (expected %r)"
                % (source, version, cls.FORMAT_VERSION))
        # Single-pass canonicalization from the (trusted, self-produced)
        # serialized form.  JSON already delivers ints, so the schedule
        # needs only the shape-checking tuple unpack — the old
        # ``int(t)``/``int(c)`` casts re-boxed every entry for nothing
        # and dominated Pinball.load for long regions.  Syscall tids are
        # the one real conversion (JSON object keys are strings).
        try:
            return cls(
                program_name=payload["program_name"],
                snapshot=payload["snapshot"],
                schedule=[(t, c) for t, c in payload["schedule"]],
                syscalls={int(tid): [(entry[0], entry[1]) for entry in log]
                          for tid, log in payload["syscalls"].items()},
                mem_order=[tuple(edge) for edge in payload["mem_order"]],
                exclusions=payload.get("exclusions", []),
                meta=payload.get("meta", {}),
                trusted=True,
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise PinballFormatError(
                "%s: malformed pinball payload (%s: %s)"
                % (source, type(exc).__name__, exc)) from exc

    def to_bytes(self, compress: bool = True,
                 format: Optional[str] = None) -> bytes:
        """Serialize; ``format`` is ``"v1"``/``"v2"``, defaulting to the
        pinball's native format if that is v2, else to the
        ``pinball_format`` config knob (env ``REPRO_PINBALL_FORMAT``)."""
        from repro import config
        if format is None and self._native_format == "v2":
            format = "v2"
        if config.pinball_format(explicit=format) == "v2":
            from repro.pinplay import format_v2
            return format_v2.encode_pinball(self)
        raw = json.dumps(self.to_dict(), separators=(",", ":")).encode("utf-8")
        return zlib.compress(raw, level=6) if compress else raw

    @classmethod
    def from_bytes(cls, blob: bytes, source: str = "<bytes>") -> "Pinball":
        if blob[:4] == b"RPB2":
            from repro.pinplay import format_v2
            pinball = format_v2.open_pinball(bytes(blob), source=source)
            if OBS.enabled:
                OBS.add("pinplay.pinballs_loaded", 1)
                OBS.add("pinplay.pinball_bytes_read", len(blob))
            return pinball
        try:
            raw = zlib.decompress(blob)
        except zlib.error:
            # Either an uncompressed pinball (valid: to_bytes(compress=
            # False)) or corrupt/truncated compressed data — the JSON
            # parse below discriminates and raises the typed error.
            raw = blob
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise PinballFormatError(
                "%s: not a pinball (neither valid compressed nor plain "
                "JSON: %s)" % (source, exc)) from exc
        pinball = cls.from_dict(payload, source=source)
        if OBS.enabled:
            OBS.add("pinplay.pinballs_loaded", 1)
            OBS.add("pinplay.pinball_bytes_read", len(blob))
        return pinball

    def save(self, path: str, compress: bool = True,
             format: Optional[str] = None) -> int:
        """Write to ``path``; returns the stored size in bytes."""
        blob = self.to_bytes(compress=compress, format=format)
        with open(path, "wb") as handle:
            handle.write(blob)
        if OBS.enabled:
            OBS.add("pinplay.pinballs_saved", 1)
            OBS.add("pinplay.pinball_bytes_written", len(blob))
        return os.path.getsize(path)

    @classmethod
    def load(cls, path: str) -> "Pinball":
        with open(path, "rb") as handle:
            if handle.read(4) == b"RPB2":
                # Map the container instead of copying it into the heap:
                # the lazy open scans frame headers in place, and payload
                # bytes are only materialized per-frame on first access.
                # (The mapping outlives the closed handle.)
                try:
                    blob = mmap.mmap(handle.fileno(), 0,
                                     access=mmap.ACCESS_READ)
                except (ValueError, OSError):
                    handle.seek(0)
                    return cls.from_bytes(handle.read(), source=path)
                from repro.pinplay import format_v2
                pinball = format_v2.open_pinball(blob, source=path)
                if OBS.enabled:
                    OBS.add("pinplay.pinballs_loaded", 1)
                    OBS.add("pinplay.pinball_bytes_read", len(blob))
                return pinball
            handle.seek(0)
            return cls.from_bytes(handle.read(), source=path)

    def size_bytes(self, compress: bool = True,
                   format: Optional[str] = None) -> int:
        """In-memory serialized size (no file needed)."""
        return len(self.to_bytes(compress=compress, format=format))


def state_hash(machine) -> str:
    """Hash of guest-visible machine state, for replay verification.

    Covers memory contents and every live thread's registers and pc — if a
    replay reproduces this hash, it reproduced the architectural state.
    """
    digest = hashlib.sha256()
    for addr, value in machine.memory.nonzero_items():
        digest.update(("%d=%r;" % (addr, value)).encode())
    for tid, thread in sorted(machine.threads.items()):
        digest.update(("T%d@%d:%s;" % (tid, thread.pc, thread.status)).encode())
        for name, value in sorted(thread.regs.items()):
            digest.update(("%s=%r," % (name, value)).encode())
    return digest.hexdigest()
