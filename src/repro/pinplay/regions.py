"""Region specifications: which part of an execution a pinball captures.

The paper (and PinPlay) describe regions with a *skip* and a *length*
counted in main-thread instructions; logging may also end early at a
failure symptom or at program end.  ``skip=0, length=None`` captures the
whole execution — the "novice programmer" configuration of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RegionSpec:
    """A region: skip ``skip`` main-thread instructions, then record up to
    ``length`` more (None = to program end), stopping early at a failure
    when ``stop_at_failure`` is set."""

    skip: int = 0
    length: Optional[int] = None
    stop_at_failure: bool = True

    def __post_init__(self) -> None:
        if self.skip < 0:
            raise ValueError("skip must be >= 0")
        if self.length is not None and self.length <= 0:
            raise ValueError("length must be positive (or None)")

    @property
    def is_whole_program(self) -> bool:
        return self.skip == 0 and self.length is None

    def describe(self) -> str:
        if self.is_whole_program:
            return "whole program"
        length = "to end" if self.length is None else "length %d" % self.length
        return "skip %d, %s (main thread)" % (self.skip, length)
