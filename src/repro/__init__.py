"""DrDebug reproduction: deterministic replay based cyclic debugging
with dynamic slicing.

A from-scratch Python reproduction of *DrDebug* (Wang, Patil, Pereira,
Lueck, Gupta, Neamtiu — CGO 2014), including every substrate the paper
builds on:

* :mod:`repro.isa` — a register-based mini-ISA with the x86 features that
  matter to slicing (indirect jumps, save/restore idioms);
* :mod:`repro.lang` — MiniC, a C-like language compiled to the ISA;
* :mod:`repro.vm` — a multi-threaded interpreter with Pin-style
  instrumentation hooks;
* :mod:`repro.pinplay` — the PinPlay analog: logger, replayer, relogger,
  pinballs;
* :mod:`repro.analysis` — static code discovery, CFGs with dynamic
  indirect-jump refinement, post-dominators;
* :mod:`repro.slicing` — precise dynamic slicing for multi-threaded
  programs over replay (global-trace construction, LP traversal, dynamic
  control dependences, save/restore pruning);
* :mod:`repro.debugger` — the GDB/KDbg analog: breakpoints, stepping,
  slice browsing, execution-slice stepping;
* :mod:`repro.maple` — the Maple analog: interleaving profiling and
  active scheduling to expose bugs, integrated with the logger;
* :mod:`repro.workloads` — bug analogs (Table 1) and PARSEC/SPECOMP-like
  kernels for the evaluation.

Quickstart::

    from repro import (compile_source, record, RegionSpec,
                       RandomScheduler, SlicingSession, DrDebugSession)

    program = compile_source(MINI_C_SOURCE)
    pinball = record(program, RandomScheduler(seed=7), RegionSpec())
    session = SlicingSession(pinball, program)
    dslice = session.slice_for(session.failure_criterion())

This module is the *stable* public surface: everything in ``__all__``
is blessed, everything else should be imported from its subpackage and
may move.  Configuration (engine choice, slice index, shard count,
observability, pool width) resolves through :mod:`repro.config` with
one precedence rule: explicit argument > CLI flag > ``REPRO_*``
environment variable > default.  A few pre-1.0 spellings remain
importable as deprecated aliases (module ``__getattr__`` shims that
emit :class:`DeprecationWarning`); see ``_DEPRECATED_ALIASES``.
"""

__version__ = "1.0.0"

from repro.lang import CompileError, compile_source
from repro.isa import Program, assemble, disassemble
from repro.vm import (
    AssertionFailure,
    Machine,
    RandomScheduler,
    RecordedScheduler,
    ReplayDivergence,
    RoundRobinScheduler,
    Tool,
    VMError,
)
from repro.pinplay import (
    Pinball,
    RegionSpec,
    record_region,
    relog,
    replay,
)
from repro.slicing import DynamicSlice, SliceOptions, SlicingSession
from repro.debugger import DrDebugCLI, DrDebugSession, SliceNavigator
from repro.maple import expose_and_record
from repro.detect import detect_races
from repro.serve import DebugClient
from repro.obs import OBS
from repro import config

#: Blessed short name for the logger entry point: ``record(program,
#: scheduler, region)`` — the paper's "log a region pinball" step.
record = record_region

__all__ = [
    "AssertionFailure",
    "CompileError",
    "DebugClient",
    "DrDebugCLI",
    "DrDebugSession",
    "DynamicSlice",
    "Machine",
    "OBS",
    "Pinball",
    "Program",
    "RandomScheduler",
    "RecordedScheduler",
    "RegionSpec",
    "ReplayDivergence",
    "RoundRobinScheduler",
    "SliceNavigator",
    "SliceOptions",
    "SlicingSession",
    "Tool",
    "VMError",
    "assemble",
    "compile_source",
    "config",
    "detect_races",
    "disassemble",
    "expose_and_record",
    "record",
    "record_region",
    "relog",
    "replay",
    "__version__",
]

#: Deprecated pre-1.0 spellings, served lazily with a warning.  Kept one
#: release so downstream scripts keep importing; new code should use the
#: right-hand names (all in ``__all__``).
_DEPRECATED_ALIASES = {
    "record_pinball": "record_region",
    "replay_pinball": "replay",
    "SliceSession": "SlicingSession",
    "races": "detect_races",
}


def __getattr__(name: str):
    """Module-level shim resolving :data:`_DEPRECATED_ALIASES`."""
    target = _DEPRECATED_ALIASES.get(name)
    if target is not None:
        import warnings
        warnings.warn("repro.%s is deprecated; use repro.%s"
                      % (name, target), DeprecationWarning, stacklevel=2)
        return globals()[target]
    raise AttributeError("module 'repro' has no attribute %r" % name)
