"""DrDebug's debugger: cyclic, replay-based debugging with slicing.

The paper's user-facing layer — GDB plus the KDbg GUI — maps to:

* :class:`~repro.debugger.session.DrDebugSession` — the debugger core:
  replays a pinball with breakpoints, instruction/line stepping, state
  inspection (globals, locals, threads, backtraces), slice computation,
  slice-pinball generation, and *slice stepping* (run the slice pinball,
  stopping at each successive statement of the slice — the capability the
  paper notes no other slicing tool provides);
* :class:`~repro.debugger.commands.DrDebugCLI` — a gdb-style command
  interpreter (``break``/``run``/``continue``/``stepi``/``print``/
  ``info threads``/``slice``/``slice-step``/...) usable interactively or
  scripted in tests;
* :class:`~repro.debugger.navigator.SliceNavigator` — the KDbg stand-in:
  renders annotated source listings with slice statements highlighted and
  navigates backwards along concrete dependence edges.

Because every session replays the same pinball, every debugging iteration
observes the identical program state — the cyclic-debugging guarantee.
"""

from repro.debugger.breakpoints import Breakpoint, BreakpointTable
from repro.debugger.checkpoints import Checkpoint, CheckpointManager
from repro.debugger.session import DrDebugSession
from repro.debugger.commands import DrDebugCLI
from repro.debugger.navigator import SliceNavigator

__all__ = [
    "Breakpoint",
    "BreakpointTable",
    "Checkpoint",
    "CheckpointManager",
    "DrDebugCLI",
    "DrDebugSession",
    "SliceNavigator",
]
