"""Checkpoint-based reverse debugging over deterministic replay.

The paper's Section 8 sketches how DrDebug could support reverse
debugging: "by recording multiple pinballs and then replaying forward
using the right pinball.  Doing this using PinPlay's user-level
check-pointing feature can be much more efficient than using operating
system features."  This module implements exactly that scheme:

* while the debugger replays a pinball forward, a
  :class:`CheckpointManager` snapshots the full architectural state every
  ``interval`` scheduler steps (plus the replay bookkeeping a restart
  needs: schedule position, syscall-injection cursors, the step clock,
  output length, exclusion-arrival counters);
* a reverse command rewinds to the latest checkpoint at or before the
  target step and replays forward the remaining distance — determinism
  guarantees the machine arrives in the *identical* state it had when it
  first passed that step.

Cost model: one reverse command costs at most ``interval`` forward steps
of re-execution, against ``interval``-granularity snapshot memory — the
same trade every checkpointing reverse debugger makes.
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import accumulate
from typing import Dict, List, Optional, Tuple

from repro.isa.program import Program
from repro.obs.registry import OBS
from repro.pinplay.pinball import Pinball
from repro.pinplay.replayer import SyscallInjector
from repro.vm.machine import Machine, MachineSnapshot
from repro.vm.scheduler import RecordedScheduler


class Checkpoint:
    """Everything needed to restart replay from one point."""

    __slots__ = ("steps_done", "snapshot", "injector_consumed",
                 "global_seq", "output", "excl_arrivals", "instr_counts")

    def __init__(self, steps_done: int, snapshot: dict,
                 injector_consumed: Dict[int, int], global_seq: int,
                 output: list, excl_arrivals: Dict[Tuple[int, int], int],
                 instr_counts: Optional[Dict[int, int]] = None) -> None:
        self.steps_done = steps_done
        self.snapshot = snapshot
        self.injector_consumed = injector_consumed
        self.global_seq = global_seq
        self.output = output
        self.excl_arrivals = excl_arrivals
        self.instr_counts = instr_counts


def remaining_schedule(schedule, steps_done: int):
    """The RLE schedule suffix after ``steps_done`` steps.

    Reference implementation: walks the full RLE schedule — O(|schedule|)
    per call.  :class:`CheckpointManager` precomputes prefix sums once and
    binary-searches the resume point instead (every rewind builds a
    resumed scheduler, so this sits on the reverse-command hot path).
    """
    remaining = []
    to_skip = steps_done
    for tid, count in schedule:
        if to_skip >= count:
            to_skip -= count
            continue
        remaining.append((tid, count - to_skip))
        to_skip = 0
    return remaining


class CheckpointManager:
    """Owns the checkpoints of one replayed pinball."""

    def __init__(self, pinball: Pinball, program: Program,
                 interval: int = 500) -> None:
        if interval < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.pinball = pinball
        self.program = program
        self.interval = interval
        self._checkpoints: List[Checkpoint] = []
        #: Decoded forms of checkpoints embedded in the pinball itself
        #: (format v2): free rewind targets that exist before the session
        #: replays anything, which is what collapses the
        #: debugger.resume_distance histogram for fresh sessions.
        #: Selection goes through :meth:`Pinball.nearest_checkpoint`
        #: (the shared cached-bisect index); bodies are materialized
        #: (decoded) lazily, at most once each.
        self._embedded_cache: Dict[int, Checkpoint] = {}
        #: Cumulative step counts of the RLE schedule runs: prefix[i] =
        #: steps retired once run i is fully consumed.  Computed once; a
        #: rewind binary-searches its resume run instead of re-walking
        #: the whole schedule.
        self._sched_prefix: List[int] = list(
            accumulate(count for _tid, count in pinball.schedule))

    def __len__(self) -> int:
        return len(self._checkpoints)

    def clear(self) -> None:
        self._checkpoints = []

    # -- capture -------------------------------------------------------------

    def capture(self, machine: Machine, injector: SyscallInjector,
                steps_done: int) -> Checkpoint:
        """Snapshot the replay at ``steps_done`` (idempotent per step)."""
        if (self._checkpoints
                and self._checkpoints[-1].steps_done == steps_done):
            return self._checkpoints[-1]
        checkpoint = Checkpoint(
            steps_done=steps_done,
            snapshot=machine.snapshot().to_dict(),
            injector_consumed=injector.consumed(),
            global_seq=machine.global_seq,
            output=list(machine.output),
            excl_arrivals=dict(machine._excl_arrivals),
            instr_counts={tid: thread.instr_count
                          for tid, thread in machine.threads.items()},
        )
        self._checkpoints.append(checkpoint)
        OBS.add("debugger.checkpoints_captured", 1)
        return checkpoint

    def due(self, steps_done: int) -> bool:
        """Is a checkpoint due at this step count?

        Embedded checkpoints count: when the pinball already carries one
        within ``interval`` steps behind, a live capture would be
        redundant snapshot memory.
        """
        last = (self._checkpoints[-1].steps_done
                if self._checkpoints else None)
        embedded = self.pinball.nearest_checkpoint(steps_done)
        if embedded is not None:
            last = (embedded.steps_done if last is None
                    else max(last, embedded.steps_done))
        if last is None:
            return True
        return steps_done - last >= self.interval

    # -- restore -------------------------------------------------------------------

    def _materialize(self, embedded) -> Checkpoint:
        """Decode one embedded checkpoint into live-checkpoint form
        (exclusion pinballs never embed checkpoints, so no arrivals)."""
        checkpoint = self._embedded_cache.get(embedded.steps_done)
        if checkpoint is None:
            body = embedded.body()
            checkpoint = Checkpoint(
                steps_done=embedded.steps_done,
                snapshot=body["snapshot"],
                injector_consumed=body["consumed"],
                global_seq=embedded.global_seq,
                output=list(body["output"]),
                excl_arrivals={},
                instr_counts=body["instr_counts"],
            )
            self._embedded_cache[embedded.steps_done] = checkpoint
            OBS.add("debugger.embedded_checkpoints_used", 1)
        return checkpoint

    def latest_at_or_before(self, target_steps: int) -> Optional[Checkpoint]:
        best = None
        for checkpoint in self._checkpoints:
            if checkpoint.steps_done <= target_steps:
                best = checkpoint
            else:
                break
        embedded = self.pinball.nearest_checkpoint(target_steps)
        if embedded is not None and (
                best is None or embedded.steps_done > best.steps_done):
            best = self._materialize(embedded)
        return best

    def drop_after(self, steps: int) -> None:
        """Forget checkpoints past ``steps`` (after rewinding)."""
        self._checkpoints = [c for c in self._checkpoints
                             if c.steps_done <= steps]

    def _remaining_schedule(self, steps_done: int):
        """Prefix-sum + binary-search twin of :func:`remaining_schedule`:
        O(log |schedule|) per rewind instead of a full RLE walk."""
        schedule = self.pinball.schedule
        if steps_done <= 0:
            return list(schedule)
        prefix = self._sched_prefix
        # First run whose cumulative step count exceeds steps_done; runs
        # consumed exactly (prefix == steps_done) are skipped entirely.
        index = bisect_right(prefix, steps_done)
        if index >= len(schedule):
            return []
        consumed_before = prefix[index - 1] if index else 0
        tid, count = schedule[index]
        return ([(tid, count - (steps_done - consumed_before))]
                + list(schedule[index + 1:]))

    def restore(self, checkpoint: Checkpoint
                ) -> Tuple[Machine, SyscallInjector]:
        """Build a machine resumed exactly at the checkpoint."""
        OBS.add("debugger.checkpoints_restored", 1)
        scheduler = RecordedScheduler(
            self._remaining_schedule(checkpoint.steps_done))
        injector = SyscallInjector(self.pinball.syscalls)
        injector.rewind_to(checkpoint.injector_consumed)
        machine = Machine.from_snapshot(
            self.program, MachineSnapshot.from_dict(checkpoint.snapshot),
            scheduler=scheduler, syscall_injector=injector.inject)
        machine.global_seq = checkpoint.global_seq
        machine.output = list(checkpoint.output)
        if checkpoint.instr_counts:
            # Machine snapshots do not carry per-thread retired-instruction
            # counters; restore them so region-relative tindexes stay
            # correct after a rewind.
            for tid, count in checkpoint.instr_counts.items():
                thread = machine.threads.get(tid)
                if thread is not None:
                    thread.instr_count = count
        if self.pinball.exclusions:
            machine.install_exclusions(self.pinball.exclusions)
            machine._excl_arrivals = dict(checkpoint.excl_arrivals)
        return machine, injector
