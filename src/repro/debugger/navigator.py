"""Slice navigation and rendering: the KDbg GUI stand-in.

The paper's KDbg extension highlights slice statements in the source pane
and lets the user click "Activate" on a dependent statement to jump
backwards along a concrete dependence edge.  This module provides the same
model textually:

* :meth:`SliceNavigator.render_source` — annotated source listing with
  slice lines highlighted (``>>`` markers instead of yellow);
* :meth:`SliceNavigator.deps` / :meth:`SliceNavigator.activate` — cursor-
  based backward navigation over the dynamic dependence graph, exactly the
  Activate-button interaction;
* :meth:`SliceNavigator.render_summary` — per-thread statement summary.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.isa.program import Program
from repro.slicing.slice import DynamicSlice, SliceNode

Instance = Tuple[int, int]


class SliceNavigator:
    """Cursor-based browsing of a dynamic slice."""

    def __init__(self, dslice: DynamicSlice, program: Program,
                 source: Optional[str] = None) -> None:
        self.slice = dslice
        self.program = program
        self.source = source
        self.cursor: Instance = dslice.criterion
        self._history: List[Instance] = []

    # -- navigation -----------------------------------------------------------

    def node(self) -> SliceNode:
        return self.slice.node(self.cursor)

    def deps(self) -> List[Tuple[Instance, str, Optional[tuple]]]:
        """Direct dependences of the cursor (the clickable edges)."""
        return sorted(self.slice.deps_of(self.cursor),
                      key=lambda item: (item[0], item[1]))

    def activate(self, index: int) -> SliceNode:
        """Follow the ``index``-th dependence edge backwards."""
        dependencies = self.deps()
        if not 0 <= index < len(dependencies):
            raise IndexError("no dependence %d at this node" % index)
        self._history.append(self.cursor)
        self.cursor = dependencies[index][0]
        return self.node()

    def back(self) -> SliceNode:
        """Undo the last activate()."""
        if self._history:
            self.cursor = self._history.pop()
        return self.node()

    def goto(self, instance: Instance) -> SliceNode:
        if tuple(instance) not in self.slice.nodes:
            raise KeyError("instance %r not in slice" % (instance,))
        self._history.append(self.cursor)
        self.cursor = tuple(instance)
        return self.node()

    # -- rendering ----------------------------------------------------------------

    def render_cursor(self) -> str:
        node = self.node()
        lines = ["at %s:%s (thread %d, instance %d, pc %d)" % (
            node.func, node.line, node.tid, node.tindex, node.addr)]
        if node.values:
            values = ", ".join("%s=%r" % (k, v)
                               for k, v in sorted(node.values.items(),
                                                  key=lambda kv: str(kv[0])))
            lines.append("  writes: %s" % values)
        for index, (producer, kind, loc) in enumerate(self.deps()):
            target = self.slice.nodes.get(tuple(producer))
            where = ("%s:%s" % (target.func, target.line)
                     if target is not None else "<outside slice>")
            what = ""
            if loc is not None:
                what = " via %s" % (loc[2] if loc[0] == "r"
                                    else "mem[%d]" % loc[1])
            lines.append("  [%d] %s dependence on thread %d %s%s"
                         % (index, kind, producer[0], where, what))
        return "\n".join(lines)

    def render_source(self) -> str:
        """Annotated source listing; slice lines carry a ``>>`` marker."""
        if self.source is None:
            return "<no source text available>"
        slice_lines = self.slice.lines()
        cursor_line = self.node().line
        rendered = []
        for number, text in enumerate(self.source.splitlines(), start=1):
            if number == cursor_line:
                marker = "=>"
            elif number in slice_lines:
                marker = ">>"
            else:
                marker = "  "
            rendered.append("%s %4d  %s" % (marker, number, text))
        return "\n".join(rendered)

    def render_summary(self) -> str:
        by_thread = {}
        for node in self.slice.nodes.values():
            by_thread.setdefault(node.tid, set()).add(
                (node.func, node.line))
        lines = ["slice of %d instances over %d threads (criterion %s)"
                 % (len(self.slice), len(by_thread),
                    list(self.slice.criterion))]
        for tid in sorted(by_thread):
            statements = sorted(
                "%s:%s" % (func, line)
                for func, line in by_thread[tid] if func is not None)
            lines.append("  thread %d: %s" % (tid, ", ".join(statements)))
        return "\n".join(lines)
