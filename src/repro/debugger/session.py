"""The DrDebug debugger session: replay-based cyclic debugging.

A session wraps one pinball.  ``run``/``continue_``/``stepi``/``step``
drive the deterministic replay; state inspection reads the live machine;
``restart`` begins a fresh, identical replay (the "cyclic" in cyclic
debugging — every iteration sees the same heap addresses, the same
schedule, the same syscall results).

Slicing commands lazily build a :class:`~repro.slicing.api.SlicingSession`
(a separate traced replay of the same pinball), compute slices, and can
produce a slice pinball whose replay this class can also drive with
``slice_step`` — stepping from one slice statement to the next while all
non-slice code is skipped.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.debugger.breakpoints import BreakpointTable
from repro.debugger.checkpoints import CheckpointManager
from repro.isa.program import Program
from repro.obs.registry import OBS
from repro.pinplay.pinball import Pinball
from repro.pinplay.replayer import SyscallInjector
from repro.slicing.api import SlicingSession
from repro.slicing.options import SliceOptions
from repro.slicing.slice import DynamicSlice
from repro.vm.errors import ReplayDivergence, VMError
from repro.vm.machine import Machine, MachineSnapshot
from repro.vm.scheduler import RecordedScheduler
from repro.vm.thread import ThreadStatus

Word = Union[int, float]


class DebuggerError(Exception):
    """User-level command errors (unknown variable, not running, ...)."""


class DrDebugSession:
    """Replay-based debugging of one pinball (paper Figure 2 workflow)."""

    def __init__(self, pinball: Pinball, program: Program,
                 source: Optional[str] = None,
                 slice_options: Optional[SliceOptions] = None) -> None:
        self.pinball = pinball
        self.program = program
        self.source = source
        self.slice_options = slice_options or SliceOptions()
        self.breakpoints = BreakpointTable(program)
        self.machine: Optional[Machine] = None
        self.steps_done = 0
        self.last_stop_reason: Optional[str] = None
        self.focus_tid = 0
        self._slicing: Optional[SlicingSession] = None
        self.current_slice: Optional[DynamicSlice] = None
        self.slice_pinball: Optional[Pinball] = None
        self._injector: Optional[SyscallInjector] = None
        self._checkpoints: Optional[CheckpointManager] = None
        self._last_slice_stop: Optional[tuple] = None

    # -- execution control ---------------------------------------------------

    def enable_reverse_debugging(self,
                                 interval: Optional[int] = None) -> None:
        """Arm checkpoint-based reverse execution (paper Section 8).

        Replay will snapshot the machine every ``interval`` scheduler
        steps (default: the ``checkpoint_interval`` config knob); reverse
        commands rewind to the nearest checkpoint and replay forward the
        remainder.  Call before (or between) runs.  Format-v2 pinballs
        arrive with embedded checkpoints, so even the first rewind of a
        fresh session is O(interval) rather than O(region).
        """
        from repro import config
        self._checkpoints = CheckpointManager(
            self.pinball, self.program,
            config.checkpoint_interval(explicit=interval))

    @property
    def reverse_enabled(self) -> bool:
        return self._checkpoints is not None

    def _build_machine(self) -> None:
        if self.program.name != self.pinball.program_name:
            raise ReplayDivergence(
                "pinball was recorded for %r, not %r"
                % (self.pinball.program_name, self.program.name))
        scheduler = RecordedScheduler(self.pinball.schedule)
        self._injector = SyscallInjector(self.pinball.syscalls)
        self.machine = Machine.from_snapshot(
            self.program, MachineSnapshot.from_dict(self.pinball.snapshot),
            scheduler=scheduler, syscall_injector=self._injector.inject)
        if self.pinball.exclusions:
            self.machine.install_exclusions(self.pinball.exclusions)

    def restart(self) -> None:
        """Begin a fresh replay of the same pinball (new debug iteration)."""
        OBS.add("debugger.restarts", 1)
        self._build_machine()
        self.machine.breakpoints = self.breakpoints.active_addrs()
        self.steps_done = 0
        self.last_stop_reason = None
        if self._checkpoints is not None:
            self._checkpoints.clear()

    def _advance(self, max_steps: int):
        """Run forward up to ``max_steps``, taking due checkpoints.

        Returns the last machine RunResult-like stop (reason, failure)
        with the aggregated step count.
        """
        machine = self._require_machine()
        taken = 0
        result = None
        while taken < max_steps:
            if (self._checkpoints is not None
                    and self._checkpoints.due(self.steps_done)):
                self._checkpoints.capture(
                    machine, self._injector, self.steps_done)
            chunk = max_steps - taken
            if self._checkpoints is not None:
                until_due = (self._checkpoints.interval
                             - (self.steps_done
                                - self._checkpoints.latest_at_or_before(
                                    self.steps_done).steps_done))
                chunk = min(chunk, max(1, until_due))
            result = machine.run(max_steps=chunk)
            taken += result.steps
            self.steps_done += result.steps
            if result.reason != "limit":
                break
        if result is None:
            from repro.vm.machine import RunResult
            result = RunResult(reason="limit", steps=0, retired=0,
                               failure=machine.failure)
        return result, taken

    def _require_machine(self) -> Machine:
        if self.machine is None:
            raise DebuggerError("no replay running; use run()")
        return self.machine

    @property
    def running(self) -> bool:
        return (self.machine is not None
                and self.steps_done < self.pinball.total_steps
                and not self.machine.finished)

    def run(self) -> str:
        """Start (or restart) replay and run to the first stop."""
        self.restart()
        return self.continue_()

    def continue_(self) -> str:
        OBS.add("debugger.commands", 1)
        machine = self._require_machine()
        machine.breakpoints = self.breakpoints.active_addrs()
        remaining = self.pinball.total_steps - self.steps_done
        if remaining <= 0 or machine.finished:
            self.last_stop_reason = "end"
            return "replay finished"
        machine.step_over_breakpoint()
        result, _taken = self._advance(remaining)
        self.last_stop_reason = result.reason
        if result.reason == "breakpoint":
            return self._describe_breakpoint_stop()
        if result.failure is not None:
            return ("assertion failure code %s in thread %d (pc %d)"
                    % (result.failure["code"], result.failure["tid"],
                       result.failure["pc"]))
        return "replay finished (%s)" % result.reason

    def stepi(self, count: int = 1) -> str:
        """Execute ``count`` scheduler steps (single instructions)."""
        OBS.add("debugger.commands", 1)
        machine = self._require_machine()
        taken = 0
        for _ in range(count):
            remaining = self.pinball.total_steps - self.steps_done
            if remaining <= 0 or machine.finished:
                break
            machine.step_over_breakpoint()
            _result, stepped = self._advance(1)
            taken += stepped
            if stepped == 0:
                break
        self.last_stop_reason = "stepi"
        return "stepped %d instruction(s); %s" % (taken, self.where())

    def step(self) -> str:
        """Step the focused thread to its next source line."""
        OBS.add("debugger.commands", 1)
        machine = self._require_machine()
        thread = machine.threads.get(self.focus_tid)
        if thread is None:
            raise DebuggerError("no thread %d" % self.focus_tid)
        start_line = self.current_line(self.focus_tid)
        guard = 0
        while True:
            remaining = self.pinball.total_steps - self.steps_done
            if remaining <= 0 or machine.finished:
                break
            machine.step_over_breakpoint()
            _result, stepped = self._advance(1)
            if stepped == 0:
                break
            guard += 1
            if guard > 2_000_000:
                raise DebuggerError("step did not terminate")
            if machine._last_tid != self.focus_tid:
                continue
            line = self.current_line(self.focus_tid)
            if line is not None and line != start_line:
                break
            if thread.status == ThreadStatus.FINISHED:
                break
        self.last_stop_reason = "step"
        return self.where()

    # -- reverse execution (paper Section 8 extension) -------------------------

    def _require_reverse(self, need_machine: bool = True
                         ) -> CheckpointManager:
        if self._checkpoints is None:
            raise DebuggerError(
                "reverse debugging not enabled; call "
                "enable_reverse_debugging() before run()")
        if need_machine and self.machine is None:
            raise DebuggerError("no replay running; use run()")
        return self._checkpoints

    def _rewind_to(self, target_steps: int) -> None:
        """Restore replay state exactly at ``target_steps``.

        Works on a machine-less session too: the restore path always
        builds its own machine (from the nearest checkpoint, or from the
        region snapshot when none precedes the target), so a fresh
        session's first seek never pays for a full-schedule machine it
        would immediately throw away.
        """
        manager = self._require_reverse(need_machine=False)
        target_steps = max(0, target_steps)
        checkpoint = manager.latest_at_or_before(target_steps)
        if OBS.enabled:
            OBS.add("debugger.rewinds", 1)
            resume_from = (checkpoint.steps_done
                           if checkpoint is not None else 0)
            # Forward re-execution distance: the real cost of this rewind.
            OBS.observe("debugger.resume_distance",
                        max(0, target_steps - resume_from))
            if checkpoint is not None:
                OBS.add("debugger.checkpoint_reuses", 1)
        if checkpoint is None:
            # No checkpoint yet (rewind before the first capture): start
            # a fresh replay and roll forward.
            self._build_machine()
            self.steps_done = 0
        else:
            self.machine, self._injector = manager.restore(checkpoint)
            self.steps_done = checkpoint.steps_done
        manager.drop_after(self.steps_done)
        # Roll forward to the exact target with breakpoints disarmed.
        self.machine.breakpoints = set()
        while self.steps_done < target_steps:
            _result, stepped = self._advance(
                target_steps - self.steps_done)
            if stepped == 0:
                break
        self.machine.breakpoints = self.breakpoints.active_addrs()

    def seek(self, target_steps: int) -> str:
        """Jump the replay to an absolute step count (forwards or back).

        Uses the checkpoint machinery in both directions: the session
        restores the nearest checkpoint at or before the target (an
        embedded one for v2 pinballs) and replays only the suffix, so the
        cost is bounded by the checkpoint interval, not by the region
        length or the seek distance.
        """
        OBS.add("debugger.commands", 1)
        if self._checkpoints is None:
            raise DebuggerError(
                "reverse debugging not enabled; call "
                "enable_reverse_debugging() before seek()")
        target_steps = max(0, min(target_steps, self.pinball.total_steps))
        self._rewind_to(target_steps)
        self.last_stop_reason = "seek"
        return "at step %d; %s" % (self.steps_done, self.where())

    def reverse_stepi(self, count: int = 1) -> str:
        """Step ``count`` scheduler steps backwards."""
        OBS.add("debugger.reverse_commands", 1)
        before = self.steps_done
        self._rewind_to(self.steps_done - count)
        self.last_stop_reason = "reverse-stepi"
        return ("stepped %d instruction(s) backwards; %s"
                % (before - self.steps_done, self.where()))

    def reverse_step(self) -> str:
        """Step the focused thread backwards to its previous source line."""
        self._require_reverse()
        start_line = self.current_line(self.focus_tid)
        guard = 0
        while self.steps_done > 0:
            self.reverse_stepi(1)
            guard += 1
            if guard > 2_000_000:
                raise DebuggerError("reverse step did not terminate")
            line = self.current_line(self.focus_tid)
            if line is not None and line != start_line:
                break
        self.last_stop_reason = "reverse-step"
        return self.where()

    def reverse_continue(self) -> str:
        """Run backwards to the most recent breakpoint hit."""
        OBS.add("debugger.reverse_commands", 1)
        manager = self._require_reverse()
        target_addrs = self.breakpoints.active_addrs()
        if not target_addrs:
            raise DebuggerError("no breakpoints to reverse-continue to")
        origin = self.steps_done

        # Scan checkpoint intervals backwards; within each, replay forward
        # recording every breakpoint stop before `origin`, and keep the
        # last one found.
        scan_end = origin
        while scan_end > 0:
            checkpoint = manager.latest_at_or_before(scan_end - 1)
            scan_start = checkpoint.steps_done if checkpoint else 0
            last_hit = self._scan_for_breakpoints(
                scan_start, scan_end, target_addrs)
            if last_hit is not None:
                self._rewind_to(last_hit)
                self.last_stop_reason = "reverse-breakpoint"
                return self._describe_breakpoint_stop()
            if scan_start == 0:
                break
            scan_end = scan_start
        self._rewind_to(0)
        self.last_stop_reason = "reverse-end"
        return "reached the beginning of the replay"

    def _scan_for_breakpoints(self, scan_start: int, scan_end: int,
                              target_addrs) -> Optional[int]:
        """Last step count in [scan_start, scan_end) stopped at a
        breakpoint, by forward replay of that window."""
        self._rewind_to(scan_start)
        machine = self.machine
        machine.breakpoints = set(target_addrs)
        last_hit = None
        while self.steps_done < scan_end:
            machine.step_over_breakpoint()
            result, stepped = self._advance(scan_end - self.steps_done)
            if result.reason == "breakpoint" and self.steps_done < scan_end:
                last_hit = self.steps_done
            elif stepped == 0 and result.reason != "breakpoint":
                break
        machine.breakpoints = self.breakpoints.active_addrs()
        return last_hit

    def _describe_breakpoint_stop(self) -> str:
        machine = self._require_machine()
        # The thread whose pc sits on a breakpoint address.
        for tid, thread in sorted(machine.threads.items()):
            bp = self.breakpoints.breakpoint_at(thread.pc)
            if bp is not None and thread.status == ThreadStatus.RUNNABLE:
                bp.hit_count += 1
                self.focus_tid = tid
                line = self.program.line_of(thread.pc)
                func = self.program.function_at(thread.pc)
                return ("hit breakpoint %d in thread %d at %s:%s (pc %d)"
                        % (bp.number, tid,
                           func.name if func else "?", line, thread.pc))
        return "stopped"

    # -- inspection ---------------------------------------------------------------

    def current_line(self, tid: Optional[int] = None) -> Optional[int]:
        machine = self._require_machine()
        thread = machine.threads[self.focus_tid if tid is None else tid]
        if 0 <= thread.pc < len(self.program.instructions):
            return self.program.line_of(thread.pc)
        return None

    def where(self, tid: Optional[int] = None) -> str:
        machine = self._require_machine()
        tid = self.focus_tid if tid is None else tid
        thread = machine.threads[tid]
        func = self.program.function_at(thread.pc)
        return "thread %d at %s:%s (pc %d, %s)" % (
            tid, func.name if func else "?",
            self.program.line_of(thread.pc), thread.pc, thread.status)

    def info_threads(self) -> List[str]:
        machine = self._require_machine()
        lines = []
        for tid, thread in sorted(machine.threads.items()):
            marker = "*" if tid == self.focus_tid else " "
            func = self.program.function_at(thread.pc)
            lines.append("%s thread %d  %s:%s  pc=%d  %s" % (
                marker, tid, func.name if func else "?",
                self.program.line_of(thread.pc), thread.pc, thread.status))
        return lines

    def backtrace(self, tid: Optional[int] = None) -> List[str]:
        machine = self._require_machine()
        thread = machine.threads[self.focus_tid if tid is None else tid]
        frames = []
        for depth, frame in enumerate(reversed(thread.frames)):
            frames.append("#%d %s (called from pc %d)" % (
                depth, frame.func, frame.call_addr))
        return frames or ["<no frames>"]

    def print_var(self, name: str, tid: Optional[int] = None) -> Word:
        """Read a variable: local of the focused frame, else a global.

        Supports ``name`` and ``name[<int>]`` for arrays.
        """
        machine = self._require_machine()
        tid = self.focus_tid if tid is None else tid
        index: Optional[int] = None
        if "[" in name and name.endswith("]"):
            base, _, rest = name.partition("[")
            try:
                index = int(rest[:-1])
            except ValueError:
                raise DebuggerError("array index must be a constant int")
            name = base
        thread = machine.threads.get(tid)
        if thread is not None and thread.frames:
            function = self.program.functions.get(thread.frames[-1].func)
            if function is not None and (
                    name in function.reg_locals
                    or name in function.local_offsets):
                if index is not None:
                    if name not in function.local_offsets:
                        raise DebuggerError("%r is not an array" % name)
                    base_addr = int(thread.regs["fp"]) + \
                        function.local_offsets[name]
                    return machine.memory.read(base_addr + index)
                try:
                    return machine.read_local(tid, name)
                except VMError as exc:
                    raise DebuggerError(str(exc))
        var = self.program.globals.get(name)
        if var is not None:
            return machine.memory.read(var.addr + (index or 0))
        raise DebuggerError("unknown variable %r" % name)

    # -- slicing commands -------------------------------------------------------------

    @property
    def slicing(self) -> SlicingSession:
        """The traced replay, built on first slice request and reused."""
        if self._slicing is None:
            self._slicing = SlicingSession(
                self.pinball, self.program, self.slice_options)
        return self._slicing

    def slicing_stats(self) -> dict:
        """Trace + slice-index amortization stats of the slicing session
        (builds the traced replay if no slice command ran yet)."""
        return self.slicing.stats()

    def slice_at_failure(self) -> DynamicSlice:
        self.current_slice = self.slicing.slice_for(
            self.slicing.failure_criterion())
        return self.current_slice

    def slice_for_variable(self, global_name: Optional[str] = None,
                           line: Optional[int] = None,
                           tid: Optional[int] = None,
                           instance: Optional[tuple] = None, *,
                           name: Optional[str] = None) -> DynamicSlice:
        """Slice for the value of global ``global_name``.

        The criterion instance is, in order of precedence, the explicit
        ``instance`` pair, the last execution of source ``line``
        (optionally per-``tid``), or the last write to the global.  Same
        keyword vocabulary as
        :meth:`~repro.slicing.api.SlicingSession.slice_for_global` and
        the serve ``slice`` verb; the pre-unification ``name=`` spelling
        still works but warns.
        """
        from repro.deprecation import deprecated_kwarg
        global_name = deprecated_kwarg("name", name,
                                       "global_name", global_name)
        if global_name is None:
            raise TypeError("slice_for_variable() missing the "
                            "'global_name' argument")
        session = self.slicing
        if instance is not None:
            self.current_slice = session.slice_for(
                (int(instance[0]), int(instance[1])),
                [session.global_location(global_name)])
        elif line is not None:
            criterion = session.last_instance_at_line(line, tid)
            self.current_slice = session.slice_for(
                criterion, [session.global_location(global_name)])
        else:
            self.current_slice = session.slice_for_global(global_name,
                                                          tid=tid)
        return self.current_slice

    def make_slice_pinball(self) -> Pinball:
        if self.current_slice is None:
            raise DebuggerError("no slice computed yet")
        self.slice_pinball = self.slicing.make_slice_pinball(
            self.current_slice)
        return self.slice_pinball

    def replay_slice(self) -> "DrDebugSession":
        """Open a debugger session on the slice pinball (Figure 4c)."""
        if self.slice_pinball is None:
            self.make_slice_pinball()
        child = DrDebugSession(self.slice_pinball, self.program,
                               source=self.source,
                               slice_options=self.slice_options)
        child.current_slice = self.current_slice
        return child

    def slice_step(self, by_statement: bool = True) -> str:
        """Run to the next executed statement belonging to the slice.

        Meant to be called on a session opened over a *slice pinball*
        (via :meth:`replay_slice`): breakpoints are placed on every slice
        instruction and execution continues to the next one, with excluded
        code skipped by the replayer.  With ``by_statement`` (the default,
        matching the paper's "step from one statement in the slice to the
        next"), consecutive stops on the same (thread, source line) are
        coalesced; pass False to stop at every slice instruction.
        """
        if self.current_slice is None:
            raise DebuggerError("no slice loaded")
        if self.machine is None:
            self.restart()
        machine = self._require_machine()
        slice_addrs = {node.addr for node in
                       self.current_slice.nodes.values()}
        machine.breakpoints = slice_addrs
        while True:
            remaining = self.pinball.total_steps - self.steps_done
            if remaining <= 0 or machine.finished:
                self.last_stop_reason = "end"
                return "slice replay finished"
            machine.step_over_breakpoint()
            result, _taken = self._advance(remaining)
            self.last_stop_reason = result.reason
            if result.reason != "breakpoint":
                return "slice replay finished (%s)" % result.reason
            stop = None
            for tid, thread in sorted(machine.threads.items()):
                if (thread.pc in slice_addrs
                        and thread.status == ThreadStatus.RUNNABLE):
                    stop = (tid, self.program.line_of(thread.pc))
                    break
            if stop is None:
                continue
            if by_statement and stop == self._last_slice_stop:
                continue
            self._last_slice_stop = stop
            self.focus_tid = stop[0]
            return "slice step: %s" % self.where(stop[0])
