"""Breakpoint bookkeeping: user-level breakpoints over code addresses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.isa.program import Program


class BreakpointError(Exception):
    """Unknown location, duplicate id, etc."""


@dataclass
class Breakpoint:
    number: int
    func: Optional[str]
    line: Optional[int]
    addrs: Set[int] = field(default_factory=set)
    enabled: bool = True
    hit_count: int = 0

    def describe(self) -> str:
        location = self.func or "?"
        if self.line is not None:
            location += ":%d" % self.line
        state = "" if self.enabled else " (disabled)"
        return "breakpoint %d at %s, addrs %s, hits %d%s" % (
            self.number, location, sorted(self.addrs), self.hit_count, state)


class BreakpointTable:
    """Resolves source locations to addresses and tracks the active set."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._by_number: Dict[int, Breakpoint] = {}
        self._next_number = 1

    def add(self, func: Optional[str] = None,
            line: Optional[int] = None,
            addr: Optional[int] = None) -> Breakpoint:
        """``break func``, ``break line``, ``break func:line`` or raw addr."""
        addrs: Set[int] = set()
        if addr is not None:
            addrs.add(addr)
        elif line is not None:
            candidates = self.program.addresses_of_line(line, func)
            if not candidates:
                raise BreakpointError(
                    "no code at line %d%s" % (
                        line, "" if func is None else " in %s" % func))
            # Break at the first instruction attributed to the line.
            addrs.add(min(candidates))
        elif func is not None:
            function = self.program.functions.get(func)
            if function is None:
                raise BreakpointError("unknown function %r" % func)
            addrs.add(function.entry)
        else:
            raise BreakpointError("breakpoint needs a location")
        bp = Breakpoint(self._next_number, func, line, addrs)
        self._by_number[bp.number] = bp
        self._next_number += 1
        return bp

    def remove(self, number: int) -> None:
        if number not in self._by_number:
            raise BreakpointError("no breakpoint %d" % number)
        del self._by_number[number]

    def enable(self, number: int, enabled: bool = True) -> None:
        if number not in self._by_number:
            raise BreakpointError("no breakpoint %d" % number)
        self._by_number[number].enabled = enabled

    def active_addrs(self) -> Set[int]:
        addrs: Set[int] = set()
        for bp in self._by_number.values():
            if bp.enabled:
                addrs.update(bp.addrs)
        return addrs

    def breakpoint_at(self, addr: int) -> Optional[Breakpoint]:
        for bp in self._by_number.values():
            if bp.enabled and addr in bp.addrs:
                return bp
        return None

    def all(self) -> List[Breakpoint]:
        return [self._by_number[n] for n in sorted(self._by_number)]
