"""gdb-style command interpreter over a :class:`DrDebugSession`.

Supported commands (a superset of what the paper's GDB extension adds)::

    break <func> | break <line> | break <func>:<line>
    delete <n> | disable <n> | enable <n> | info break
    run | continue | c | stepi [n] | si [n] | step | s
    print <var> | p <var>          (locals of the focused frame, globals,
                                    and <arr>[<const>])
    info threads | thread <tid> | backtrace | bt | where
    slice <var> [at <line>] [thread <tid>]    compute a dynamic slice
    slice-failure                             slice at the recorded symptom
    slice-info                                summary of the current slice
    slice-save <path> | slice-load <path>
    slice-pinball                             relog the current slice
    slice-replay                              switch to the slice pinball
    slice-step                                step to next slice statement
    slice-stats                               trace/index amortization stats
    restart | quit

Each ``execute`` call returns the command's textual output, so the CLI is
fully scriptable (and is scripted, heavily, by the test suite).
"""

from __future__ import annotations

import shlex
from typing import Callable, Dict, List, Optional

from repro.debugger.breakpoints import BreakpointError
from repro.debugger.navigator import SliceNavigator
from repro.debugger.session import DebuggerError, DrDebugSession
from repro.slicing.slice import DynamicSlice


class DrDebugCLI:
    """Parses and executes gdb-flavoured commands against a session."""

    def __init__(self, session: DrDebugSession) -> None:
        self.session = session
        self.done = False
        self._slice_sessions: List[DrDebugSession] = []

    # -- dispatch ----------------------------------------------------------

    def execute(self, command_line: str) -> str:
        tokens = shlex.split(command_line.strip())
        if not tokens:
            return ""
        command, args = tokens[0], tokens[1:]
        handler = self._handlers().get(command)
        if handler is None:
            return "undefined command: %r" % command
        try:
            return handler(args)
        except (DebuggerError, BreakpointError, ValueError) as exc:
            return "error: %s" % exc

    def _handlers(self) -> Dict[str, Callable[[List[str]], str]]:
        return {
            "break": self._cmd_break, "b": self._cmd_break,
            "delete": self._cmd_delete,
            "disable": lambda a: self._cmd_enable(a, False),
            "enable": lambda a: self._cmd_enable(a, True),
            "run": self._cmd_run, "r": self._cmd_run,
            "continue": self._cmd_continue, "c": self._cmd_continue,
            "stepi": self._cmd_stepi, "si": self._cmd_stepi,
            "step": self._cmd_step, "s": self._cmd_step,
            "record-on": self._cmd_record_on,
            "reverse-stepi": self._cmd_reverse_stepi,
            "rsi": self._cmd_reverse_stepi,
            "reverse-step": self._cmd_reverse_step,
            "rs": self._cmd_reverse_step,
            "reverse-continue": self._cmd_reverse_continue,
            "rc": self._cmd_reverse_continue,
            "print": self._cmd_print, "p": self._cmd_print,
            "info": self._cmd_info,
            "thread": self._cmd_thread,
            "backtrace": self._cmd_backtrace, "bt": self._cmd_backtrace,
            "where": lambda a: self.session.where(),
            "slice": self._cmd_slice,
            "slice-failure": self._cmd_slice_failure,
            "slice-info": self._cmd_slice_info,
            "slice-save": self._cmd_slice_save,
            "slice-load": self._cmd_slice_load,
            "slice-pinball": self._cmd_slice_pinball,
            "slice-replay": self._cmd_slice_replay,
            "slice-step": self._cmd_slice_step,
            "slice-stats": self._cmd_slice_stats,
            "restart": self._cmd_restart,
            "quit": self._cmd_quit, "q": self._cmd_quit,
        }

    # -- breakpoints ----------------------------------------------------------

    def _cmd_break(self, args: List[str]) -> str:
        if not args:
            return "error: break needs a location"
        spec = args[0]
        func: Optional[str] = None
        line: Optional[int] = None
        if ":" in spec:
            func, _, line_text = spec.partition(":")
            line = int(line_text)
        elif spec.isdigit():
            line = int(spec)
        else:
            func = spec
        bp = self.session.breakpoints.add(func=func, line=line)
        return bp.describe()

    def _cmd_delete(self, args: List[str]) -> str:
        self.session.breakpoints.remove(int(args[0]))
        return "deleted breakpoint %s" % args[0]

    def _cmd_enable(self, args: List[str], enabled: bool) -> str:
        self.session.breakpoints.enable(int(args[0]), enabled)
        return "%s breakpoint %s" % (
            "enabled" if enabled else "disabled", args[0])

    # -- execution ----------------------------------------------------------------

    def _cmd_run(self, args: List[str]) -> str:
        return self.session.run()

    def _cmd_continue(self, args: List[str]) -> str:
        return self.session.continue_()

    def _cmd_stepi(self, args: List[str]) -> str:
        count = int(args[0]) if args else 1
        return self.session.stepi(count)

    def _cmd_step(self, args: List[str]) -> str:
        return self.session.step()

    def _cmd_restart(self, args: List[str]) -> str:
        self.session.restart()
        return "replay restarted from region entry"

    # -- reverse execution -------------------------------------------------------

    def _cmd_record_on(self, args: List[str]) -> str:
        interval = int(args[0]) if args else 500
        self.session.enable_reverse_debugging(interval)
        return ("reverse debugging enabled (checkpoints every %d steps); "
                "takes effect from the next run/restart" % interval)

    def _cmd_reverse_stepi(self, args: List[str]) -> str:
        count = int(args[0]) if args else 1
        return self.session.reverse_stepi(count)

    def _cmd_reverse_step(self, args: List[str]) -> str:
        return self.session.reverse_step()

    def _cmd_reverse_continue(self, args: List[str]) -> str:
        return self.session.reverse_continue()

    def _cmd_quit(self, args: List[str]) -> str:
        self.done = True
        return "quit"

    # -- inspection -------------------------------------------------------------------

    def _cmd_print(self, args: List[str]) -> str:
        if not args:
            return "error: print needs a variable"
        value = self.session.print_var(args[0])
        return "%s = %r" % (args[0], value)

    def _cmd_info(self, args: List[str]) -> str:
        topic = args[0] if args else ""
        if topic == "threads":
            return "\n".join(self.session.info_threads())
        if topic in ("break", "breakpoints"):
            table = self.session.breakpoints.all()
            if not table:
                return "no breakpoints"
            return "\n".join(bp.describe() for bp in table)
        return "error: info threads | info break"

    def _cmd_thread(self, args: List[str]) -> str:
        self.session.focus_tid = int(args[0])
        return "focused thread %d" % self.session.focus_tid

    def _cmd_backtrace(self, args: List[str]) -> str:
        return "\n".join(self.session.backtrace())

    # -- slicing ---------------------------------------------------------------------------

    def _cmd_slice(self, args: List[str]) -> str:
        if not args:
            return "error: slice <var> [at <line>] [thread <tid>]"
        name = args[0]
        line: Optional[int] = None
        tid: Optional[int] = None
        rest = args[1:]
        while rest:
            if rest[0] == "at" and len(rest) > 1:
                line = int(rest[1])
                rest = rest[2:]
            elif rest[0] == "thread" and len(rest) > 1:
                tid = int(rest[1])
                rest = rest[2:]
            else:
                return "error: bad slice arguments %r" % rest
        dslice = self.session.slice_for_variable(name, line=line, tid=tid)
        return self._summarize(dslice)

    def _cmd_slice_failure(self, args: List[str]) -> str:
        return self._summarize(self.session.slice_at_failure())

    def _cmd_slice_info(self, args: List[str]) -> str:
        if self.session.current_slice is None:
            return "no slice computed"
        navigator = SliceNavigator(
            self.session.current_slice, self.session.program,
            self.session.source)
        return navigator.render_summary()

    def _cmd_slice_save(self, args: List[str]) -> str:
        if self.session.current_slice is None:
            return "error: no slice computed"
        self.session.current_slice.save(args[0])
        return "slice saved to %s" % args[0]

    def _cmd_slice_load(self, args: List[str]) -> str:
        self.session.current_slice = DynamicSlice.load(args[0])
        return self._summarize(self.session.current_slice)

    def _cmd_slice_pinball(self, args: List[str]) -> str:
        pinball = self.session.make_slice_pinball()
        return ("slice pinball: %d of %d instructions kept (%d excluded runs)"
                % (pinball.meta["kept_instructions"],
                   pinball.meta["region_instructions"],
                   pinball.meta["excluded_runs"]))

    def _cmd_slice_replay(self, args: List[str]) -> str:
        child = self.session.replay_slice()
        self._slice_sessions.append(self.session)
        self.session = child
        return "now debugging the slice pinball; use slice-step"

    def _cmd_slice_step(self, args: List[str]) -> str:
        return self.session.slice_step()

    def _cmd_slice_stats(self, args: List[str]) -> str:
        stats = self.session.slicing_stats()
        return ("slicing: %d trace records, index=%s\n"
                "  trace %.3fs, preprocess %.3fs, ddg build %.3fs\n"
                "  %d dependence edges, memo hits/misses %d/%d"
                % (stats["trace_records"], stats["slice_index"],
                   stats["trace_time_sec"], stats["preprocess_time_sec"],
                   stats["ddg_build_time_sec"], stats["edge_count"],
                   stats["memo_hits"], stats["memo_misses"]))

    def _summarize(self, dslice: DynamicSlice) -> str:
        statements = sorted(
            "%s:%s" % (func, line)
            for func, line in dslice.source_statements() if func is not None)
        return ("slice: %d instruction instances, %d statements, threads %s\n%s"
                % (len(dslice), len(statements),
                   sorted(dslice.threads()), "\n".join(
                       "  " + stmt for stmt in statements)))
