"""Limited Preprocessing (LP) over the global trace (Zhang et al., ICSE'03).

The global trace is divided into fixed-size blocks; each block's summary is
the set of locations the block defines.  The backward traversal consults
the summary before descending into a block and skips blocks that define
none of the currently wanted locations — for criterion-local slices over
long traces most blocks are skipped, which is what makes interactive
slicing practical (the paper adopted this algorithm for the same reason).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.slicing.trace import Location, TraceRecord


class TraceBlock:
    """Summary of global-trace positions ``[start, end)``."""

    __slots__ = ("start", "end", "defs")

    def __init__(self, start: int, end: int, defs: Set[Location]) -> None:
        self.start = start
        self.end = end
        self.defs = defs

    def may_define(self, wanted) -> bool:
        """``wanted`` is any sized container of locations supporting ``in``
        (a set, or the slicer's wanted dict keyed by location)."""
        if len(wanted) < len(self.defs):
            return any(loc in self.defs for loc in wanted)
        return any(loc in wanted for loc in self.defs)

    def __repr__(self) -> str:
        return "<TraceBlock [%d,%d) %d defs>" % (
            self.start, self.end, len(self.defs))


def build_blocks(order: Sequence[TraceRecord],
                 block_size: int) -> List[TraceBlock]:
    """Partition the global trace into blocks with def-set summaries.

    For a lazy columnar order view the summaries are computed straight
    from the store's interned def columns — no record materialization.
    """
    return build_blocks_with_defs(order, block_size)[0]


def build_blocks_with_defs(
        order: Sequence[TraceRecord], block_size: int,
        force_rows: bool = False
) -> Tuple[List[TraceBlock], Optional[List[tuple]]]:
    """Like :func:`build_blocks`, also returning the per-position interned
    def-location tuples for columnar orders (``None`` for record lists).

    The slicer's backward scan uses the flat def-locs list to test each
    scanned position against the wanted set without materializing the
    record — records are only built for positions that actually match.

    With ``force_rows`` a lazy columnar order is summarized through its
    materialized record views instead — the ``index="rows"`` baseline,
    which exercises the seed record-at-a-time scan on any store layout.
    """
    if not force_rows and getattr(order, "instance_at", None) is not None:
        return _build_blocks_columnar(order, block_size)
    blocks: List[TraceBlock] = []
    for start in range(0, len(order), block_size):
        end = min(start + block_size, len(order))
        defs: Set[Location] = set()
        for position in range(start, end):
            record = order[position]
            for location in record.def_locations():
                defs.add(location)
        blocks.append(TraceBlock(start, end, defs))
    return blocks, None


def _build_blocks_columnar(order, block_size: int):
    store = order._store
    def_locations_at = store.def_locations_at
    tids = order._tids
    tindexes = order._tindexes
    total = len(tids)
    def_locs: List[tuple] = [
        def_locations_at(tids[position], tindexes[position])
        for position in range(total)]
    blocks: List[TraceBlock] = []
    for start in range(0, total, block_size):
        end = min(start + block_size, total)
        defs: Set[Location] = set()
        for position in range(start, end):
            defs.update(def_locs[position])
        blocks.append(TraceBlock(start, end, defs))
    return blocks, def_locs


def block_index_for(blocks: List[TraceBlock], gpos: int,
                    block_size: int) -> int:
    return min(gpos // block_size, len(blocks) - 1) if blocks else -1
