"""Persistent serialization of the build-once DDG index (fleet warm starts).

The CSR dependence index (:class:`~repro.slicing.ddg.DependenceIndex`)
is the expensive derived artifact of a slicing session: O(trace) to
build, then cheap to query.  In a multi-node debug service every node
that opens the same recording would otherwise pay that build again —
so this module flattens a built index into one self-describing blob and
re-opens it as a :class:`FrozenIndex` in O(load), no replay, no trace,
no build.

The design follows from what the query path actually touches:

* :meth:`DependenceIndex.slice` reads only the flat CSR columns
  (``_indptr``/``_preds``/``_kinds``/``_elocs``), the interned location
  table, the sparse ``_unresolved`` map, the per-gpos ``(tid, tindex)``
  arrays and — for node rendering — per-instance ``(addr, line, func,
  values)`` detail.  All of that serializes almost for free: the big
  columns are ``array('q')``/``bytearray`` already.
* The criterion helpers (``last_reads``, last-write-to-address,
  last-instance-at-line) need one ascending read-position column plus
  the per-location definition-position lists, which the index also
  already owns.

So a frozen index answers **every serve verb that doesn't need the raw
trace** (slice, last_reads, build) byte-identically to a fresh build,
while ``make_slice_pinball`` still works because the relogger consumes
only the pinball + the slice's keep-set.

**Container format** (``RIX1``)::

    magic "RIX1" | version u16 | header_len u32 | header JSON | sections

The header carries the options fingerprint, scalar metadata and a
section table ``[name, compressed_len, crc32, raw_len]``; each section
is an independently zlib-compressed, CRC-guarded byte run.  Any
corruption — truncation, bit flips, version skew — surfaces as
:class:`~repro.pinplay.pinball.PinballFormatError` naming the source,
mirroring the pinball container's diagnostics contract.

**Cache keying.**  :func:`options_fingerprint` hashes exactly the
:class:`~repro.slicing.options.SliceOptions` fields that change the
*built graph* (refinement, pruning, MaxSave, stack-pointer tracking,
recorded values).  Engine-selection and build-strategy fields
(``index``, ``shards``, ``columnar``, ``block_size``, cache sizes,
``obs``) are deliberately excluded: a sharded build is byte-identical
to a serial one, so every configuration that would produce the same
graph shares one cache entry.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from array import array
from bisect import bisect_left
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import OBS
from repro.pinplay.pinball import PinballFormatError
from repro.slicing.ddg import DependenceIndex
from repro.slicing.options import SliceOptions
from repro.slicing.trace import Instance

MAGIC = b"RIX1"
FORMAT_VERSION = 1

_HEAD = struct.Struct("<HI")     # version, header length

#: SliceOptions fields that determine the built dependence graph.  Two
#: options values agreeing on these produce byte-identical CSR columns,
#: so they share one cache entry (see module docstring).
_SEMANTIC_FIELDS = (
    "refine_cfg",
    "discover_jump_tables",
    "prune_save_restore",
    "max_save",
    "track_stack_pointer",
    "record_values",
)


def options_fingerprint(options: SliceOptions) -> str:
    """Stable hex fingerprint of the graph-determining option fields."""
    payload = {"serde_version": FORMAT_VERSION}
    for name in _SEMANTIC_FIELDS:
        payload[name] = getattr(options, name)
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()[:16]


def _corrupt(source: str, what: str) -> PinballFormatError:
    return PinballFormatError("%s: corrupt index blob (%s)" % (source, what))


def _q_array(values) -> array:
    return values if isinstance(values, array) else array("q", values)


# -- serialization ------------------------------------------------------------

def serialize_index(index: DependenceIndex, fingerprint: str) -> bytes:
    """Flatten a built index into one self-describing ``RIX1`` blob."""
    total = index.node_count
    tids = _q_array(index._tids)
    tindexes = _q_array(index._tindexes)

    # Per-gpos node detail (what SliceNode rendering needs): flat int
    # columns plus an interned function-name table; ``values`` dicts keep
    # their int-vs-str keys through explicit pair lists.
    addrs = array("q", bytes(8 * total))
    lines = array("q", bytes(8 * total))
    funcs = array("q", bytes(8 * total))
    func_ids: Dict[Optional[str], int] = {}
    func_table: List[Optional[str]] = []
    values_col: List[Optional[list]] = [None] * total
    reads = array("q")

    columnar = index._columnar
    store = None if columnar else index.gtrace.store
    last_tid = None
    statics_col = dyns_col = None
    for g in range(total):
        tid = tids[g]
        tindex = tindexes[g]
        if columnar:
            if tid != last_tid:
                cols = index._columns[tid]
                statics_col = cols.statics
                dyns_col = cols.dyns
                last_tid = tid
            addr, line, func, _rdefs, _ruses = statics_col[tindex]
            _mdefs, muses, _cd, values = dyns_col[tindex]
        else:
            record = store.get((tid, tindex))
            addr, line, func = record.addr, record.line, record.func
            muses, values = record.muses, record.values
        addrs[g] = addr
        lines[g] = -1 if line is None else line
        fid = func_ids.get(func)
        if fid is None:
            fid = func_ids[func] = len(func_table)
            func_table.append(func)
        funcs[g] = fid
        if values is not None:
            values_col[g] = [[k, v] for k, v in values.items()]
        if muses:
            reads.append(g)

    dp_indptr = array("q", [0])
    dp_flat = array("q")
    for dp in index._def_positions:
        dp_flat.extend(dp)
        dp_indptr.append(len(dp_flat))

    # ``values`` is the one O(nodes) JSON column; it lives in its own
    # section so a warm open can defer its parse to first node render
    # (the query-path tables below stay eager — they are tiny).
    tables = {
        "locs": [list(loc) for loc in index._locs],
        "func_table": func_table,
        "unresolved": [[g, list(locids)]
                       for g, locids in sorted(index._unresolved.items())],
        "redirect": [[g, s] for g, s in sorted(index._redirect.items())],
    }

    sections = [
        ("indptr", _q_array(index._indptr).tobytes()),
        ("preds", _q_array(index._preds).tobytes()),
        ("kinds", bytes(index._kinds)),
        ("elocs", _q_array(index._elocs).tobytes()),
        ("tids", tids.tobytes()),
        ("tindexes", tindexes.tobytes()),
        ("addrs", addrs.tobytes()),
        ("lines", lines.tobytes()),
        ("funcs", funcs.tobytes()),
        ("reads", reads.tobytes()),
        ("dp_indptr", dp_indptr.tobytes()),
        ("dp_flat", dp_flat.tobytes()),
        ("tables", json.dumps(tables, separators=(",", ":"))
         .encode("utf-8")),
        ("values", json.dumps(values_col, separators=(",", ":"))
         .encode("utf-8")),
    ]
    table = []
    payloads = []
    for name, raw in sections:
        blob = zlib.compress(raw, 6)
        table.append([name, len(blob), zlib.crc32(blob) & 0xFFFFFFFF,
                      len(raw)])
        payloads.append(blob)
    header = json.dumps({
        "fingerprint": fingerprint,
        "node_count": total,
        "edge_count": index.edge_count,
        "prune": bool(index._prune),
        "build_time": index.build_time,
        "sections": table,
    }, separators=(",", ":"), sort_keys=True).encode("utf-8")
    out = b"".join([MAGIC, _HEAD.pack(FORMAT_VERSION, len(header)), header]
                   + payloads)
    if OBS.enabled:
        OBS.inc("index_cache.serializations")
        OBS.add("index_cache.bytes_serialized", len(out))
    return out


# -- deserialization ----------------------------------------------------------

def deserialize_index(data: bytes, options: Optional[SliceOptions] = None,
                      source: str = "<bytes>",
                      fingerprint: Optional[str] = None) -> "FrozenIndex":
    """Re-open a serialized index blob as a :class:`FrozenIndex`.

    Every integrity failure — bad magic, version skew, truncation, CRC
    mismatch, malformed tables — raises :class:`PinballFormatError`
    naming ``source``.  With ``fingerprint`` given, a header fingerprint
    that differs (the blob was built under different slice options)
    is rejected the same way.
    """
    if len(data) < len(MAGIC) + _HEAD.size:
        raise _corrupt(source, "truncated before the header")
    if data[:len(MAGIC)] != MAGIC:
        raise _corrupt(source, "bad magic %r" % data[:len(MAGIC)])
    version, header_len = _HEAD.unpack_from(data, len(MAGIC))
    if version != FORMAT_VERSION:
        raise PinballFormatError(
            "%s: unsupported index format version %d (expected %d)"
            % (source, version, FORMAT_VERSION))
    body = len(MAGIC) + _HEAD.size
    if len(data) < body + header_len:
        raise _corrupt(source, "truncated inside the header")
    try:
        header = json.loads(data[body:body + header_len].decode("utf-8"))
        section_table = [(str(n), int(c), int(crc), int(r))
                         for n, c, crc, r in header["sections"]]
    except (ValueError, KeyError, TypeError) as exc:
        raise _corrupt(source, "unreadable header (%s)" % exc)
    if fingerprint is not None and header.get("fingerprint") != fingerprint:
        raise PinballFormatError(
            "%s: index fingerprint mismatch (blob %r, expected %r)"
            % (source, header.get("fingerprint"), fingerprint))

    offset = body + header_len
    raw: Dict[str, bytes] = {}
    for name, comp_len, crc, raw_len in section_table:
        blob = data[offset:offset + comp_len]
        if len(blob) != comp_len:
            raise _corrupt(source, "truncated in section %r" % name)
        offset += comp_len
        if zlib.crc32(blob) & 0xFFFFFFFF != crc:
            raise _corrupt(source, "CRC mismatch in section %r" % name)
        try:
            payload = zlib.decompress(blob)
        except zlib.error as exc:
            raise _corrupt(source, "section %r: %s" % (name, exc))
        if len(payload) != raw_len:
            raise _corrupt(source, "section %r length mismatch" % name)
        raw[name] = payload
    if offset != len(data):
        raise _corrupt(source, "%d trailing bytes" % (len(data) - offset))

    def q_section(name: str) -> array:
        payload = raw.get(name)
        if payload is None:
            raise _corrupt(source, "missing section %r" % name)
        out = array("q")
        out.frombytes(payload)
        return out

    try:
        tables = json.loads(raw["tables"].decode("utf-8"))
        frozen = FrozenIndex(
            options=options or SliceOptions(),
            indptr=q_section("indptr"), preds=q_section("preds"),
            kinds=bytearray(raw["kinds"]), elocs=q_section("elocs"),
            tids=q_section("tids"), tindexes=q_section("tindexes"),
            addrs=q_section("addrs"), lines=q_section("lines"),
            funcs=q_section("funcs"), reads=q_section("reads"),
            dp_indptr=q_section("dp_indptr"), dp_flat=q_section("dp_flat"),
            locs=[tuple(loc) for loc in tables["locs"]],
            func_table=list(tables["func_table"]),
            values_json=raw["values"],
            unresolved={int(g): tuple(locids)
                        for g, locids in tables["unresolved"]},
            redirect={int(g): int(s) for g, s in tables["redirect"]},
            prune=bool(header.get("prune")),
            build_time=float(header.get("build_time", 0.0)),
            source=source)
    except (KeyError, ValueError, TypeError, IndexError) as exc:
        raise _corrupt(source, "malformed payload (%s)" % exc)
    if OBS.enabled:
        OBS.inc("index_cache.deserializations")
    return frozen


# -- the frozen index ---------------------------------------------------------

class _FrozenColumns:
    """Per-thread statics/dyns shims feeding the base query path.

    :meth:`DependenceIndex.slice` renders nodes from
    ``_columns[tid].statics[tindex]`` / ``.dyns[tindex]``; these lists
    reproduce exactly the fields it reads (addr, line, func, values) —
    def/use sets are not needed after the build, so they are empty.
    """

    __slots__ = ("statics", "dyns")

    def __init__(self) -> None:
        self.statics: List[tuple] = []
        self.dyns: List[tuple] = []


class _FrozenTrace:
    """The one :class:`GlobalTrace` capability queries use: ``gpos_of``.

    The per-tid map is built lazily on the first lookup: a warm node's
    session *open* stays O(sections loaded), and the one O(nodes) pass
    is paid by the first query instead (and only once).
    """

    __slots__ = ("_tids", "_tindexes", "_by_tid")

    def __init__(self, tids: array, tindexes: array) -> None:
        self._tids = tids
        self._tindexes = tindexes
        self._by_tid: Optional[Dict[int, Dict[int, int]]] = None

    def gpos_of(self, instance: Instance) -> int:
        by_tid = self._by_tid
        if by_tid is None:
            by_tid = {}
            tids = self._tids
            tindexes = self._tindexes
            for g in range(len(tids)):
                by_tid.setdefault(tids[g], {})[tindexes[g]] = g
            self._by_tid = by_tid
        tid, tindex = instance
        try:
            return by_tid[tid][tindex]
        except KeyError:
            raise KeyError("instance %r is not in the merged trace"
                           % (instance,))


class FrozenIndex(DependenceIndex):
    """A deserialized dependence index: full query API, no trace behind it.

    Inherits the whole query path (``slice``/``_closure``/``_resolve``/
    ``_chase`` and both memo layers) from :class:`DependenceIndex`; only
    construction differs — the CSR columns arrive from the blob instead
    of a build pass.  Also answers the criterion-helper queries a warm
    serve session needs (:meth:`last_reads`,
    :meth:`last_instance_at_line`, :meth:`last_write_to_addr_range`).
    """

    def __init__(self, options: SliceOptions, indptr: array, preds: array,
                 kinds: bytearray, elocs: array, tids: array,
                 tindexes: array, addrs: array, lines: array, funcs: array,
                 reads: array, dp_indptr: array, dp_flat: array,
                 locs: List[tuple], func_table: List[Optional[str]],
                 values_json: bytes,
                 unresolved: Dict[int, tuple], redirect: Dict[int, int],
                 prune: bool, build_time: float, source: str) -> None:
        # Deliberately no super().__init__: there is no trace to build
        # from.  Every field the inherited query path reads is set here.
        self.options = options
        self.restores = {}
        self.source = source
        self.memo_hits = 0
        self.memo_misses = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.bypassed_edges = 0
        self._slice_cache = OrderedDict()
        self._closure_memo = OrderedDict()
        self._detail_cache: Dict[int, tuple] = {}
        self.build_time = build_time

        self._indptr = indptr
        self._preds = preds
        self._kinds = kinds
        self._elocs = elocs
        self._tids = tids
        self._tindexes = tindexes
        self._locs = locs
        self._loc_ids = {loc: locid for locid, loc in enumerate(locs)}
        self._def_positions = [dp_flat[dp_indptr[i]:dp_indptr[i + 1]]
                               for i in range(len(dp_indptr) - 1)]
        self._unresolved = unresolved
        self._redirect = redirect
        self._prune = prune
        self._bypass_memo: Dict[Tuple[int, int], int] = {}
        total = len(indptr) - 1
        self._fragment_cuts = [0, total]
        self._fragment_offsets = [len(preds)]

        # Node detail stays in the flat columns; the per-thread
        # statics/dyns shims the query path reads are materialized
        # lazily on first access (see the ``_columns`` property), so a
        # warm open costs O(sections), not O(nodes).
        self._columnar = True
        self._addrs_col = addrs
        self._funcs_col = funcs
        self._func_table = func_table
        self._values_json = values_json
        self._columns_built: Optional[Dict[int, _FrozenColumns]] = None
        self.gtrace = _FrozenTrace(tids, tindexes)

        self._reads = reads
        self._lines_col = lines
        self._line_index: Optional[tuple] = None

    @property
    def _columns(self) -> Dict[int, _FrozenColumns]:
        built = self._columns_built
        if built is None:
            built = {}
            tids = self._tids
            addrs = self._addrs_col
            lines = self._lines_col
            funcs = self._funcs_col
            table = self._func_table
            try:
                values = json.loads(self._values_json.decode("utf-8"))
                if len(values) != len(tids):
                    raise ValueError("values column length mismatch")
            except (ValueError, UnicodeDecodeError) as exc:
                raise _corrupt(self.source, "values section (%s)" % exc)
            for g in range(len(tids)):
                cols = built.get(tids[g])
                if cols is None:
                    cols = built[tids[g]] = _FrozenColumns()
                line = lines[g]
                vals = values[g]
                cols.statics.append((addrs[g], None if line < 0 else line,
                                     table[funcs[g]], (), ()))
                cols.dyns.append(
                    ((), (), None, None if vals is None else dict(vals)))
            self._columns_built = built
        return built

    # -- criterion helpers (what a warm serve session asks) ----------------

    def instance_of(self, gpos: int) -> Instance:
        return (self._tids[gpos], self._tindexes[gpos])

    def last_reads(self, count: int) -> List[Instance]:
        return [self.instance_of(g) for g in self._reads[:-count - 1:-1]]

    def _line_maps(self) -> tuple:
        if self._line_index is None:
            line_best: Dict[int, int] = {}
            line_tid_best: Dict[Tuple[int, int], int] = {}
            lines = self._lines_col
            tids = self._tids
            for g in range(len(lines)):
                line = lines[g]
                if line < 0:
                    continue
                line_best[line] = g          # ascending gpos: last wins
                line_tid_best[(line, tids[g])] = g
            self._line_index = (line_best, line_tid_best)
        return self._line_index

    def last_instance_at_line(self, line: int,
                              tid: Optional[int] = None) -> Instance:
        line_best, line_tid_best = self._line_maps()
        best = (line_best.get(line) if tid is None
                else line_tid_best.get((line, tid)))
        if best is None:
            raise ValueError("line %d was never executed%s" % (
                line, "" if tid is None else " by tid %d" % tid))
        return self.instance_of(best)

    def last_write_to_addr_range(self, lo: int, hi: int,
                                 tid: Optional[int] = None
                                 ) -> Optional[Instance]:
        """Latest write to any address in ``[lo, hi)`` (per-tid option)."""
        best = -1
        tids = self._tids
        for addr in range(lo, hi):
            locid = self._loc_ids.get(("m", addr))
            if locid is None:
                continue
            dp = self._def_positions[locid]
            if tid is None:
                if dp:
                    best = max(best, dp[-1])
                continue
            for i in range(len(dp) - 1, -1, -1):
                if tids[dp[i]] == tid:
                    best = max(best, dp[i])
                    break
        return None if best < 0 else self.instance_of(best)

    def stats(self) -> dict:
        out = DependenceIndex.stats(self)
        out["frozen"] = True
        return out
