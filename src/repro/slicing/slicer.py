"""Backward dynamic slicing over the global trace (Section 3, step iii).

:class:`BackwardSlicer` is the query facade.  ``SliceOptions(index=...)``
selects the engine:

* ``"ddg"`` (default) — the build-once CSR dependence index of
  :mod:`repro.slicing.ddg`: one pass compiles every dependence edge, then
  each query is a memoized graph traversal touching only the slice.  The
  engine is built lazily on the first query.
* ``"columnar"`` / ``"rows"`` — the per-query backward scans described
  below, kept as baselines (and as the differential tests' references).

One backward scan from the criterion position resolves data dependences:
the *wanted* map holds, per location, the consumers still looking for their
reaching definition; the first definition encountered below a consumer's
position is, by construction of the scan order, the latest one — the
dynamic reaching definition.  Control dependences come for free: every
trace record carries its controlling instance, so adding a node chains its
control parents directly without scanning.

LP block summaries let the scan skip blocks that define none of the wanted
locations.  Save/restore bypassing (Section 5.2) redirects a dependence
that resolves to a verified *restore* to instead search below the matching
*save*, so spurious save/restore chains never enter the slice.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.obs.registry import OBS
from repro.slicing.ddg import DependenceIndex
from repro.slicing.global_trace import GlobalTrace
from repro.slicing.lp import TraceBlock, build_blocks_with_defs
from repro.slicing.options import SliceOptions
from repro.slicing.slice import DynamicSlice, SliceNode
from repro.slicing.trace import Instance, Location, TraceRecord


class BackwardSlicer:
    """Computes backward dynamic slices over one global trace."""

    def __init__(self, gtrace: GlobalTrace,
                 verified_restores: Optional[Dict[Instance, Instance]] = None,
                 options: Optional[SliceOptions] = None) -> None:
        self.gtrace = gtrace
        self.options = options or SliceOptions()
        self.restores = dict(verified_restores or {})
        self.index = self.options.index
        self._ddg: Optional[DependenceIndex] = None
        if self.index in ("ddg", "reexec"):
            # "reexec" here means a reexec session fell back to the
            # materialized pipeline (sharded build, exclusion pinball,
            # legacy engine, undecodable program); the ddg engine answers
            # with identical bytes, so the fallback is transparent.
            # The DDG engine builds its own flat edge columns (lazily, on
            # the first query); the LP block summaries are scan-only.
            self.blocks: List[TraceBlock] = []
            self._def_locs = None
        else:
            #: ``_def_locs[gpos]`` — interned def-location tuple per
            #: position for columnar stores (None for record-list orders):
            #: lets the backward scan test a position against the wanted
            #: set without materializing its record.  ``index="rows"``
            #: forces the record path even on a columnar store.
            self.blocks, self._def_locs = build_blocks_with_defs(
                gtrace.order, self.options.block_size,
                force_rows=(self.index == "rows"))
        #: save-instance -> gpos memo for the save/restore bypass: the
        #: same save is typically bypassed many times per slice, and its
        #: global position never changes once the trace is merged.
        self._save_gpos: Dict[Instance, int] = {}

    # -- public API -----------------------------------------------------------

    @property
    def ddg(self) -> DependenceIndex:
        """The compiled dependence index (built on first access)."""
        if self._ddg is None:
            self._ddg = DependenceIndex(self.gtrace, self.restores,
                                        self.options)
        return self._ddg

    def index_stats(self) -> dict:
        """Amortization counters for benchmarks / the CLI (zeros until
        the DDG engine has been built)."""
        out = {
            "slice_index": self.index,
            "ddg_build_time_sec": 0.0,
            "edge_count": 0,
            "memo_hits": 0,
            "memo_misses": 0,
            "slice_cache_hits": 0,
            "closure_memo_hits": 0,
            "bypassed_edges": 0,
        }
        if self._ddg is not None:
            ddg = self._ddg
            out.update(
                ddg_build_time_sec=ddg.build_time,
                edge_count=ddg.edge_count,
                memo_hits=ddg.memo_hits + ddg.cache_hits,
                memo_misses=ddg.memo_misses + ddg.cache_misses,
                slice_cache_hits=ddg.cache_hits,
                closure_memo_hits=ddg.memo_hits,
                bypassed_edges=ddg.bypassed_edges,
            )
        return out

    def slice(self, criterion: Instance,
              locations: Optional[Sequence[Location]] = None) -> DynamicSlice:
        """Backward slice from ``criterion``.

        With ``locations`` the slice tracks those specific locations as of
        (and including) the criterion instruction; otherwise it tracks the
        criterion instruction's own uses — "the statements that played a
        role in the computation of the value".
        """
        if self.index in ("ddg", "reexec"):
            return self.ddg.slice(criterion, locations)
        crit_rec = self.gtrace.record_of(criterion)
        stats = {
            "scanned_records": 0,
            "skipped_blocks": 0,
            "visited_blocks": 0,
            "bypassed_deps": 0,
            "unresolved_locations": 0,
        }
        nodes: Dict[Instance, SliceNode] = {}
        edges: List[Tuple[Instance, Instance, str, Optional[tuple]]] = []
        # location -> list of (before_gpos, consumer_instance)
        wanted: Dict[Location, List[Tuple[int, Instance]]] = {}

        if self._def_locs is not None:
            # Columnar store: the whole node-expansion loop runs on the
            # parallel columns — no TraceRecord is materialized for slice
            # membership, only the criterion record above.
            store = self.gtrace.store
            columns = store._columns
            locations_for = store.locations_for

            def add_node(inst: Instance) -> None:
                """Insert an instance and chain its control parents."""
                stack = [inst]
                while stack:
                    inst = stack.pop()
                    if inst in nodes:
                        continue
                    tid, tindex = inst
                    cols = columns[tid]
                    addr, line, func, _rdefs, ruses = cols.statics[tindex]
                    _mdefs, muses, cd, values = cols.dyns[tindex]
                    nodes[inst] = SliceNode(tid, tindex, addr, line, func,
                                            values)
                    gpos = cols.gpos[tindex]
                    for loc in locations_for(tid, ruses, muses):
                        entries = wanted.get(loc)
                        if entries is None:
                            wanted[loc] = [(gpos, inst)]
                        else:
                            entries.append((gpos, inst))
                    if cd is not None:
                        edges.append((inst, cd, "control", None))
                        stack.append(cd)

            add_node(crit_rec._inst)
        else:
            record_of = self.gtrace.record_of

            def add_node(record: TraceRecord) -> None:
                """Insert a record and chain its control-dependence parents."""
                stack = [record]
                while stack:
                    rec = stack.pop()
                    inst = rec._inst
                    if inst in nodes:
                        continue
                    nodes[inst] = SliceNode(
                        rec.tid, rec.tindex, rec.addr, rec.line, rec.func,
                        rec.values)
                    gpos = rec.gpos
                    for loc in rec.use_locations():
                        entries = wanted.get(loc)
                        if entries is None:
                            wanted[loc] = [(gpos, inst)]
                        else:
                            entries.append((gpos, inst))
                    cd = rec.cd
                    if cd is not None:
                        edges.append((inst, cd, "control", None))
                        stack.append(record_of(cd))

            add_node(crit_rec)
        if locations is not None:
            for loc in locations:
                wanted.setdefault(tuple(loc), []).append(
                    (crit_rec.gpos + 1, crit_rec.instance))

        self._scan(crit_rec.gpos, wanted, nodes, edges, add_node, stats)
        stats["unresolved_locations"] = len(wanted)
        stats["nodes"] = len(nodes)
        stats["edges"] = len(edges)
        if OBS.enabled:
            OBS.add("slicing.scan_queries", 1)
            OBS.add("slicing.scanned_records", stats["scanned_records"])
            OBS.add("slicing.skipped_blocks", stats["skipped_blocks"])
            OBS.add("slicing.visited_blocks", stats["visited_blocks"])
            OBS.add("slicing.edges_walked", len(edges))
        return DynamicSlice(crit_rec.instance, nodes, edges, stats)

    # -- the backward scan ---------------------------------------------------------

    def _scan(self, start_pos: int, wanted, nodes, edges, add_node,
              stats) -> None:
        order = self.gtrace.order
        prune = self.options.prune_save_restore and bool(self.restores)
        block_size = self.options.block_size
        start_block = start_pos // block_size if order else -1
        for block_index in range(min(start_block, len(self.blocks) - 1),
                                 -1, -1):
            if not wanted:
                break
            block = self.blocks[block_index]
            # ``wanted`` is keyed by location, so the dict itself serves as
            # the wanted-location set: no per-block set() rebuild (the set
            # is maintained incrementally by the dict insert/delete flow).
            if not block.may_define(wanted):
                stats["skipped_blocks"] += 1
                continue
            stats["visited_blocks"] += 1
            hi = min(block.end - 1, start_pos)
            def_locs = self._def_locs
            if def_locs is not None:
                # Columnar: test the interned def tuple against the wanted
                # map first; on a hit, match on (tid, tindex) indices —
                # no record is materialized anywhere in the scan.
                tids = order._tids
                tindexes = order._tindexes
                scanned = 0
                for position in range(hi, block.start - 1, -1):
                    if not wanted:
                        break
                    scanned += 1
                    locs = def_locs[position]
                    for loc in locs:
                        if loc in wanted:
                            self._match_defs_columnar(
                                locs, (tids[position], tindexes[position]),
                                position, wanted, nodes, edges, add_node,
                                stats, prune)
                            break
                stats["scanned_records"] += scanned
            else:
                for position in range(hi, block.start - 1, -1):
                    if not wanted:
                        break
                    record = order[position]
                    stats["scanned_records"] += 1
                    self._match_defs(record, position, wanted, nodes, edges,
                                     add_node, stats, prune)

    def _match_defs_columnar(self, def_locs: tuple, inst: Instance,
                             position: int, wanted, nodes, edges, add_node,
                             stats, prune: bool) -> None:
        """Columnar twin of :meth:`_match_defs`: works on the interned def
        tuple and the (tid, tindex) instance; ``add_node`` (the columnar
        closure) takes instances, so nothing here touches a TraceRecord."""
        for loc in def_locs:
            entries = wanted.get(loc)
            if not entries:
                continue
            matched = [entry for entry in entries if entry[0] > position]
            if not matched:
                continue
            if len(matched) == len(entries):
                remaining = []
            else:
                remaining = [entry for entry in entries
                             if entry[0] <= position]
            if prune and loc[0] == "r" and inst in self.restores:
                save_instance = self.restores[inst]
                save_gpos = self._save_gpos.get(save_instance)
                if save_gpos is None:
                    save_gpos = self.gtrace.record_of(save_instance).gpos
                    self._save_gpos[save_instance] = save_gpos
                redirected = [(save_gpos, consumer)
                              for _before, consumer in matched]
                stats["bypassed_deps"] += len(matched)
                new_entries = remaining + redirected
                if new_entries:
                    wanted[loc] = new_entries
                else:
                    del wanted[loc]
                continue
            if remaining:
                wanted[loc] = remaining
            else:
                del wanted[loc]
            for _before, consumer in matched:
                edges.append((consumer, inst, "data", loc))
            if inst not in nodes:
                add_node(inst)

    def _match_defs(self, record: TraceRecord, position: int, wanted,
                    nodes, edges, add_node, stats, prune: bool) -> None:
        for loc in record.def_locations():
            entries = wanted.get(loc)
            if not entries:
                continue
            matched = [entry for entry in entries if entry[0] > position]
            if not matched:
                continue
            if len(matched) == len(entries):
                # Common case: every consumer sits above this definition
                # (control parents below the scan front are the exception),
                # so skip the second partition pass.
                remaining = []
            else:
                remaining = [entry for entry in entries
                             if entry[0] <= position]
            if (prune and loc[0] == "r"
                    and record._inst in self.restores):
                # Verified restore: bypass it.  The consumers' reaching
                # definition is whatever defined the register before the
                # matching save — resume the search below the save.
                save_instance = self.restores[record._inst]
                save_gpos = self._save_gpos.get(save_instance)
                if save_gpos is None:
                    save_gpos = self.gtrace.record_of(save_instance).gpos
                    self._save_gpos[save_instance] = save_gpos
                redirected = [(save_gpos, consumer)
                              for _before, consumer in matched]
                stats["bypassed_deps"] += len(matched)
                new_entries = remaining + redirected
                if new_entries:
                    wanted[loc] = new_entries
                else:
                    del wanted[loc]
                continue
            # Commit the shrunken entry list *before* expanding the node:
            # add_node may append fresh entries for this same location
            # (e.g. ``add r0, r0, 1`` both defines and uses r0), and those
            # must survive.
            if remaining:
                wanted[loc] = remaining
            else:
                del wanted[loc]
            inst = record._inst
            for _before, consumer in matched:
                edges.append((consumer, inst, "data", loc))
            if inst not in nodes:
                add_node(record)
