"""Backward dynamic slicing over the global trace (Section 3, step iii).

One backward scan from the criterion position resolves data dependences:
the *wanted* map holds, per location, the consumers still looking for their
reaching definition; the first definition encountered below a consumer's
position is, by construction of the scan order, the latest one — the
dynamic reaching definition.  Control dependences come for free: every
trace record carries its controlling instance, so adding a node chains its
control parents directly without scanning.

LP block summaries let the scan skip blocks that define none of the wanted
locations.  Save/restore bypassing (Section 5.2) redirects a dependence
that resolves to a verified *restore* to instead search below the matching
*save*, so spurious save/restore chains never enter the slice.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.slicing.global_trace import GlobalTrace
from repro.slicing.lp import TraceBlock, build_blocks
from repro.slicing.options import SliceOptions
from repro.slicing.slice import DynamicSlice, SliceNode
from repro.slicing.trace import Instance, Location, TraceRecord


class BackwardSlicer:
    """Computes backward dynamic slices over one global trace."""

    def __init__(self, gtrace: GlobalTrace,
                 verified_restores: Optional[Dict[Instance, Instance]] = None,
                 options: Optional[SliceOptions] = None) -> None:
        self.gtrace = gtrace
        self.options = options or SliceOptions()
        self.restores = dict(verified_restores or {})
        self.blocks: List[TraceBlock] = build_blocks(
            gtrace.order, self.options.block_size)

    # -- public API -----------------------------------------------------------

    def slice(self, criterion: Instance,
              locations: Optional[Sequence[Location]] = None) -> DynamicSlice:
        """Backward slice from ``criterion``.

        With ``locations`` the slice tracks those specific locations as of
        (and including) the criterion instruction; otherwise it tracks the
        criterion instruction's own uses — "the statements that played a
        role in the computation of the value".
        """
        crit_rec = self.gtrace.record_of(criterion)
        stats = {
            "scanned_records": 0,
            "skipped_blocks": 0,
            "visited_blocks": 0,
            "bypassed_deps": 0,
            "unresolved_locations": 0,
        }
        nodes: Dict[Instance, SliceNode] = {}
        edges: List[Tuple[Instance, Instance, str, Optional[tuple]]] = []
        # location -> list of (before_gpos, consumer_instance)
        wanted: Dict[Location, List[Tuple[int, Instance]]] = {}

        def add_node(record: TraceRecord) -> None:
            """Insert a record and chain its control-dependence parents."""
            stack = [record]
            while stack:
                rec = stack.pop()
                if rec.instance in nodes:
                    continue
                nodes[rec.instance] = SliceNode(
                    rec.tid, rec.tindex, rec.addr, rec.line, rec.func,
                    rec.values)
                for loc in rec.use_locations():
                    wanted.setdefault(loc, []).append(
                        (rec.gpos, rec.instance))
                if rec.cd is not None:
                    edges.append((rec.instance, rec.cd, "control", None))
                    stack.append(self.gtrace.record_of(rec.cd))

        add_node(crit_rec)
        if locations is not None:
            for loc in locations:
                wanted.setdefault(tuple(loc), []).append(
                    (crit_rec.gpos + 1, crit_rec.instance))

        self._scan(crit_rec.gpos, wanted, nodes, edges, add_node, stats)
        stats["unresolved_locations"] = len(wanted)
        stats["nodes"] = len(nodes)
        stats["edges"] = len(edges)
        return DynamicSlice(crit_rec.instance, nodes, edges, stats)

    # -- the backward scan ---------------------------------------------------------

    def _scan(self, start_pos: int, wanted, nodes, edges, add_node,
              stats) -> None:
        order = self.gtrace.order
        prune = self.options.prune_save_restore and bool(self.restores)
        block_size = self.options.block_size
        start_block = start_pos // block_size if order else -1
        for block_index in range(min(start_block, len(self.blocks) - 1),
                                 -1, -1):
            if not wanted:
                break
            block = self.blocks[block_index]
            if not block.may_define(set(wanted)):
                stats["skipped_blocks"] += 1
                continue
            stats["visited_blocks"] += 1
            hi = min(block.end - 1, start_pos)
            for position in range(hi, block.start - 1, -1):
                if not wanted:
                    break
                record = order[position]
                stats["scanned_records"] += 1
                self._match_defs(record, position, wanted, nodes, edges,
                                 add_node, stats, prune)

    def _match_defs(self, record: TraceRecord, position: int, wanted,
                    nodes, edges, add_node, stats, prune: bool) -> None:
        for loc in record.def_locations():
            entries = wanted.get(loc)
            if not entries:
                continue
            matched = [entry for entry in entries if entry[0] > position]
            if not matched:
                continue
            remaining = [entry for entry in entries if entry[0] <= position]
            if (prune and loc[0] == "r"
                    and record.instance in self.restores):
                # Verified restore: bypass it.  The consumers' reaching
                # definition is whatever defined the register before the
                # matching save — resume the search below the save.
                save_instance = self.restores[record.instance]
                save_gpos = self.gtrace.record_of(save_instance).gpos
                redirected = [(save_gpos, consumer)
                              for _before, consumer in matched]
                stats["bypassed_deps"] += len(matched)
                new_entries = remaining + redirected
                if new_entries:
                    wanted[loc] = new_entries
                else:
                    del wanted[loc]
                continue
            # Commit the shrunken entry list *before* expanding the node:
            # add_node may append fresh entries for this same location
            # (e.g. ``add r0, r0, 1`` both defines and uses r0), and those
            # must survive.
            if remaining:
                wanted[loc] = remaining
            else:
                del wanted[loc]
            for _before, consumer in matched:
                edges.append((consumer, record.instance, "data", loc))
            if record.instance not in nodes:
                add_node(record)
