"""Online dynamic control-dependence detection (Xin & Zhang, ISSTA'07).

Per thread, a stack of open control regions.  Executing a conditional
branch or indirect jump opens a region that closes when control reaches the
branch's immediate post-dominator *in the same call frame*; a call opens a
region for the whole callee frame (so callee instructions are transitively
control dependent on the call site, as in the paper's Figure 8 discussion).
The controlling instance of each executed instruction is the top of the
stack.

Precision depends entirely on the post-dominator information supplied by
the :class:`~repro.analysis.registry.CfgRegistry`: with an unrefined CFG,
indirect-jump regions are wrong and control dependences go missing —
exactly the Section 5.1 imprecision.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.registry import CfgRegistry
from repro.isa.instructions import Opcode
from repro.vm.hooks import InstrEvent

Instance = Tuple[int, int]


class _Region:
    __slots__ = ("frame_id", "inst", "end_addr")

    def __init__(self, frame_id: int, inst: Instance,
                 end_addr: Optional[int]) -> None:
        self.frame_id = frame_id
        self.inst = inst
        self.end_addr = end_addr   # None: closes at frame exit


class ControlDepTracker:
    """Tracks the dynamic control-dependence parent of each instruction."""

    def __init__(self, registry: CfgRegistry) -> None:
        self.registry = registry
        self._stacks: Dict[int, List[_Region]] = {}

    def on_event(self, event: InstrEvent,
                 callee_frame_id: Optional[int]) -> Optional[Instance]:
        """Process one retired instruction; returns its controlling instance.

        ``callee_frame_id`` must be the new frame's id for call
        instructions (the caller reads it off the thread after execution)
        and None otherwise.
        """
        tid = event.tid
        frame = event.frame_id
        stack = self._stacks.setdefault(tid, [])

        # Close regions that end at this address in this frame.
        while (stack and stack[-1].frame_id == frame
               and stack[-1].end_addr == event.addr):
            stack.pop()

        cd = stack[-1].inst if stack else None

        op = event.instr.op
        if op == Opcode.IJMP and not self._ijmp_has_targets(event.addr):
            # No CFG successors known for this indirect jump: prior tools
            # compute no post-dominator and hence open no region — control
            # dependences on the jump go *missing*, the exact Section 5.1
            # imprecision (reproduced when refinement is disabled).
            op = None
        if op in (Opcode.BR, Opcode.BRZ, Opcode.IJMP):
            end_addr = self.registry.region_end_addr(event.addr)
            region = _Region(frame, (tid, event.tindex), end_addr)
            # Merge-with-top (Xin-Zhang): a region ending at the same point
            # in the same frame is superseded by the newer branch instance.
            if (stack and stack[-1].frame_id == frame
                    and stack[-1].end_addr == end_addr):
                stack[-1] = region
            else:
                stack.append(region)
        elif op in (Opcode.CALL, Opcode.ICALL):
            stack.append(_Region(
                callee_frame_id if callee_frame_id is not None else frame,
                (tid, event.tindex), None))
        elif op == Opcode.RET:
            # Close every region of the frame being exited.
            while stack and stack[-1].frame_id == frame:
                stack.pop()
        return cd

    def _ijmp_has_targets(self, addr: int) -> bool:
        cfg = self.registry.cfg_for_addr(addr)
        return bool(cfg.indirect_targets.get(addr))

    def depth(self, tid: int) -> int:
        return len(self._stacks.get(tid, ()))
