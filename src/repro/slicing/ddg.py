"""Build-once CSR dynamic dependence graph for interactive slice queries.

The paper's workflow (Figure 4) is *cyclic*: replay the region pinball
once, then answer **many** interactive slice queries against the same
trace.  The backward-scan engines pay O(|trace|) per query; this module
instead pays one O(|trace| + |edges|) pass that compiles every dependence
into a compact, flat graph, after which each query is a cheap int-array
traversal touching only the slice itself:

* **Build** — a forward pass over the merged global trace resolves
  every use to its dynamic reaching definition (per-location last-def
  tables), chains dynamic control-dependence parents, and applies the
  Section 5.2 save/restore bypass *at build time*: a data dependence that
  would land on a verified restore is redirected (transitively) to the
  definition reaching the matching save, so spurious save/restore chains
  never enter the graph.  For a columnar trace store the pass runs
  directly on the interned columns — no ``TraceRecord`` is materialized.
  The pass is structured as ``SliceOptions.shards`` *fragments* —
  contiguous gpos windows appended to the same CSR columns while the
  live def maps (per-location last-def tables, the control-dep frontier
  encoded in the ``cd`` column, the bypass memo) carry across each
  fragment seam — so the region-sharded pipeline
  (:mod:`repro.slicing.shard`) and the serial path share one build that
  is byte-identical for any fragment count.
* **CSR layout** — edges live in flat ``array('q')`` columns indexed by
  global position: ``indptr[g] .. indptr[g+1]`` delimits node ``g``'s
  predecessor rows in ``preds`` (producer gpos), with parallel edge-kind
  bytes and location-id columns (locations interned into one table).
* **Query** — a backward slice is the reachable set from the criterion's
  gpos, found by an int BFS over the CSR columns; the slice's edges are
  then exactly the CSR rows of its members.  Two memo layers exploit the
  cyclic-debugging access pattern (queries cluster near the failure):

  - a *closure memo*: complete reachable-set fragments from previously
    visited start nodes are reused wholesale by later traversals;
  - an LRU of complete :class:`DynamicSlice` results keyed by
    ``(criterion, locations)`` (options are fixed per index instance).

Equivalence with the backward-scan engines (same nodes, same edge
multiset, including verified-restore exclusion) is asserted by
``tests/slicing/test_index_differential.py`` over randomized
multi-threaded programs.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.registry import OBS
from repro.slicing.global_trace import GlobalTrace
from repro.slicing.options import SliceOptions
from repro.slicing.slice import DynamicSlice, SliceNode
from repro.slicing.trace import Instance, Location

#: Edge-kind bytes in the CSR kind column.
EDGE_DATA = 0
EDGE_CONTROL = 1


def fragment_cuts(total: int, fragments: int) -> List[int]:
    """Gpos cut points splitting ``total`` positions into ``fragments``
    contiguous build windows: ``[0, ..., total]`` with evenly spaced
    interior cuts (same arithmetic as the shard planner's step
    boundaries).  Always at least one fragment; never more than one per
    position."""
    fragments = max(1, min(int(fragments or 1), total or 1))
    return [total * i // fragments for i in range(fragments + 1)]


class DependenceIndex:
    """Compiled dependence graph over one merged global trace.

    Build it once per :class:`~repro.slicing.api.SlicingSession` (the
    :class:`~repro.slicing.slicer.BackwardSlicer` facade does this lazily
    on the first query), then serve any number of slice queries in time
    proportional to the slice, not the trace.
    """

    def __init__(self, gtrace: GlobalTrace,
                 verified_restores: Optional[Dict[Instance, Instance]] = None,
                 options: Optional[SliceOptions] = None) -> None:
        self.gtrace = gtrace
        self.options = options or SliceOptions()
        self.restores = dict(verified_restores or {})
        #: Closure-memo / result-LRU counters (cumulative, for stats()).
        self.memo_hits = 0
        self.memo_misses = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.bypassed_edges = 0
        self._slice_cache: "OrderedDict[tuple, DynamicSlice]" = OrderedDict()
        self._closure_memo: "OrderedDict[int, frozenset]" = OrderedDict()
        #: gpos -> (instance, SliceNode, edge rows, unresolved locations):
        #: everything a query needs per member, rendered once and shared —
        #: all of it is fully determined by the CSR row, and queries in a
        #: cyclic-debugging session revisit the same neighborhood.
        self._detail_cache: Dict[int, tuple] = {}
        # Span in place of the old ad-hoc perf_counter pair: it measures
        # regardless of enablement, so ``build_time`` stays populated.
        with OBS.span("slicing.ddg_build") as span:
            self._build()
        self.build_time = span.elapsed
        if OBS.enabled:
            OBS.add("slicing.ddg_builds", 1)
            OBS.add("slicing.ddg_edges", self.edge_count)
            OBS.add("slicing.ddg_nodes", self.node_count)

    # -- reporting -----------------------------------------------------------

    @property
    def edge_count(self) -> int:
        return len(self._preds)

    @property
    def node_count(self) -> int:
        return len(self._indptr) - 1

    def stats(self) -> dict:
        return {
            "build_time_sec": self.build_time,
            "node_count": self.node_count,
            "edge_count": self.edge_count,
            "location_count": len(self._locs),
            "fragment_count": len(self._fragment_offsets),
            "fragment_edge_offsets": list(self._fragment_offsets),
            "bypassed_edges": self.bypassed_edges,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "closure_memo_entries": len(self._closure_memo),
            "slice_cache_entries": len(self._slice_cache),
        }

    # -- build ---------------------------------------------------------------

    def _build(self) -> None:
        order = self.gtrace.order
        store = self.gtrace.store
        total = len(order)
        columnar = getattr(order, "instance_at", None) is not None
        self._columnar = columnar
        if columnar:
            tids = order._tids
            tindexes = order._tindexes
            columns = store._columns
            self._columns = columns
        else:
            tids = [record.tid for record in order]
            tindexes = [record.tindex for record in order]
            self._columns = None
        self._tids = tids
        self._tindexes = tindexes

        prune = self.options.prune_save_restore and bool(self.restores)
        self._prune = prune
        #: verified-restore gpos -> matching save gpos (Section 5.2).
        redirect: Dict[int, int] = {}
        if prune:
            gpos_of = self.gtrace.gpos_of
            for restore_inst, save_inst in self.restores.items():
                try:
                    redirect[gpos_of(restore_inst)] = gpos_of(save_inst)
                except (KeyError, IndexError):
                    # A pair outside the merged region cannot be matched
                    # by any scanned definition either; skip it.
                    continue
        self._redirect = redirect
        #: (locid, restore gpos) -> effective producer gpos (or -1).  The
        #: chase result only depends on definitions *below* the save, all
        #: of which precede the restore in the forward build — so entries
        #: computed mid-build stay valid forever.
        self._bypass_memo: Dict[Tuple[int, int], int] = {}

        #: Restore gposes as a flat flag column: `flags[g]` beats a dict
        #: membership test on the per-register-use hot path.
        restore_flags = bytearray(total)
        for restore_gpos in redirect:
            restore_flags[restore_gpos] = 1

        loc_ids: Dict[Location, int] = {}
        locs: List[Location] = []
        #: locid -> ascending gpos list of its definitions (the
        #: addr/register write side table; also serves location queries).
        #: Dense: locids are allocated 0..N, so a flat list beats a dict.
        def_positions: List[List[int]] = []
        #: addr -> (locid, def-position list) for memory locations — one
        #: lookup resolves both; the list object is shared with
        #: ``def_positions`` and mutated in place.
        mem_entries: Dict[int, tuple] = {}
        #: Register "plans": per distinct instruction per thread, the
        #: (use (locid, def-list) pairs, def def-lists) — def-position
        #: lists are bound directly so the hot loop never re-indexes
        #: ``def_positions``.  Columnar statics tuples are owned by the
        #: store for its whole lifetime, so ``id(static)`` is a stable,
        #: hash-cheap key; one plan dict per thread (the merged order
        #: clusters per-thread runs, so the per-tid locals below rarely
        #: need refreshing).
        plans_by_tid: Dict[int, dict] = {}
        row_plans: Dict[tuple, Tuple[tuple, tuple]] = {}

        def reg_plan(tid, ruses, rdefs):
            pairs = []
            for name in ruses:
                loc = ("r", tid, name)
                locid = loc_ids.get(loc)
                if locid is None:
                    locid = loc_ids[loc] = len(locs)
                    locs.append(loc)
                    def_positions.append([])
                pairs.append((locid, def_positions[locid]))
            dps = []
            for name in rdefs:
                loc = ("r", tid, name)
                locid = loc_ids.get(loc)
                if locid is None:
                    locid = loc_ids[loc] = len(locs)
                    locs.append(loc)
                    def_positions.append([])
                dps.append(def_positions[locid])
            return tuple(pairs), tuple(dps)

        indptr = array("q", [0])
        preds = array("q")
        kinds = bytearray()
        elocs = array("q")
        #: gpos -> tuple of locids whose reaching definition was not found
        #: inside the trace (initial-state reads); sparse.
        unresolved: Dict[int, tuple] = {}

        chase = self._chase

        def build_fragment(lo: int, hi: int) -> None:
            """Append gpos window ``[lo, hi)`` to the shared CSR columns.

            Everything that crosses the seam — the per-location last-def
            tables (``def_positions`` / ``mem_entries``), the register
            plans, the bypass memo, the unresolved map — lives in the
            enclosing scope and carries from fragment to fragment; the
            per-thread column locals below are a cache refreshed on
            thread-run boundaries and reset per fragment.
            """
            last_tid = None
            statics_col = dyns_col = plan_map = None
            for g in range(lo, hi):
                tid = tids[g]
                tindex = tindexes[g]
                if columnar:
                    if tid != last_tid:
                        cols = columns[tid]
                        statics_col = cols.statics
                        dyns_col = cols.dyns
                        plan_map = plans_by_tid.get(tid)
                        if plan_map is None:
                            plan_map = plans_by_tid[tid] = {}
                        last_tid = tid
                    static = statics_col[tindex]
                    mdefs, muses, cd, _values = dyns_col[tindex]
                    sid = id(static)
                    plan = plan_map.get(sid)
                    if plan is None:
                        plan = plan_map[sid] = reg_plan(
                            tid, static[4], static[3])
                else:
                    record = order[g]
                    mdefs, muses, cd = record.mdefs, record.muses, record.cd
                    plan_key = (tid, record.ruses, record.rdefs)
                    plan = row_plans.get(plan_key)
                    if plan is None:
                        plan = row_plans[plan_key] = reg_plan(
                            tid, record.ruses, record.rdefs)
                use_pairs, def_dps = plan

                missing = None
                for locid, dp in use_pairs:    # register uses (bypass applies)
                    if not dp:
                        if missing is None:
                            missing = [locid]
                        else:
                            missing.append(locid)
                        continue
                    producer = dp[-1]
                    if prune and restore_flags[producer]:
                        producer = chase(locid, dp, producer, len(dp) - 1)
                        if producer < 0:
                            if missing is None:
                                missing = [locid]
                            else:
                                missing.append(locid)
                            continue
                    preds.append(producer)
                    kinds.append(EDGE_DATA)
                    elocs.append(locid)
                for addr in muses:             # memory uses (no bypass)
                    entry = mem_entries.get(addr)
                    if entry is None:
                        loc = ("m", addr)
                        locid = loc_ids[loc] = len(locs)
                        locs.append(loc)
                        dp = []
                        def_positions.append(dp)
                        mem_entries[addr] = (locid, dp)
                    else:
                        locid, dp = entry
                    if not dp:
                        if missing is None:
                            missing = [locid]
                        else:
                            missing.append(locid)
                        continue
                    preds.append(dp[-1])
                    kinds.append(EDGE_DATA)
                    elocs.append(locid)
                if cd is not None:
                    if columnar:
                        cd_gpos = columns[cd[0]].gpos[cd[1]]
                    else:
                        cd_gpos = store.get(cd).gpos
                    preds.append(cd_gpos)
                    kinds.append(EDGE_CONTROL)
                    elocs.append(-1)
                if missing is not None:
                    unresolved[g] = tuple(missing)
                for dp in def_dps:
                    dp.append(g)
                for addr in mdefs:
                    entry = mem_entries.get(addr)
                    if entry is None:
                        loc = ("m", addr)
                        locid = loc_ids[loc] = len(locs)
                        locs.append(loc)
                        dp = [g]
                        def_positions.append(dp)
                        mem_entries[addr] = (locid, dp)
                    else:
                        entry[1].append(g)
                indptr.append(len(preds))

        # The fragment driver: the CSR columns and def maps are strictly
        # append-only, so running the windows in order is byte-identical
        # to one monolithic pass — asserted for shards in {1, 2, 4} by
        # tests/slicing/test_shard_differential.py.  ``_fragment_offsets``
        # records the edge-column watermark after each fragment (the CSR
        # seam positions a sharded exporter would stitch at).
        cuts = fragment_cuts(total, self.options.shards)
        fragment_offsets: List[int] = []
        for lo, hi in zip(cuts, cuts[1:]):
            with OBS.span("slicing.ddg_fragment"):
                build_fragment(lo, hi)
            fragment_offsets.append(len(preds))
        self._fragment_cuts = cuts
        self._fragment_offsets = fragment_offsets
        if OBS.enabled:
            OBS.add("slicing.ddg_fragments", len(fragment_offsets))

        self._loc_ids = loc_ids
        self._locs = locs
        self._def_positions = def_positions
        self._indptr = indptr
        self._preds = preds
        self._kinds = kinds
        self._elocs = elocs
        self._unresolved = unresolved

    def _chase(self, locid: int, dp: List[int], producer: int,
               hi_index: int) -> int:
        """Resolve a definition that landed on a verified restore.

        Mirrors the scan engines' redirect: search for the latest
        definition *below* the matching save, transitively bypassing
        chained restores.  Returns -1 when the location's value comes
        from initial state below every save.
        """
        key = (locid, producer)
        cached = self._bypass_memo.get(key)
        if cached is not None:
            return cached
        self.bypassed_edges += 1
        redirect = self._redirect
        i = hi_index
        while True:
            save_gpos = redirect[producer]
            i = bisect_left(dp, save_gpos, 0, i) - 1
            if i < 0:
                result = -1
                break
            producer = dp[i]
            if producer not in redirect:
                result = producer
                break
        self._bypass_memo[key] = result
        return result

    # -- query ---------------------------------------------------------------

    def slice(self, criterion: Instance,
              locations: Optional[Sequence[Location]] = None) -> DynamicSlice:
        """Backward slice from ``criterion`` (same contract as the scan
        engines' :meth:`BackwardSlicer.slice`)."""
        criterion = (criterion[0], criterion[1])
        loc_key = (None if locations is None
                   else tuple(tuple(loc) for loc in locations))
        key = (criterion, loc_key)
        cache_size = self.options.slice_cache_size
        if cache_size:
            cached = self._slice_cache.get(key)
            if cached is not None:
                self._slice_cache.move_to_end(key)
                self.cache_hits += 1
                OBS.add("slicing.slice_cache_hits", 1)
                return cached
        self.cache_misses += 1

        crit_gpos = self.gtrace.gpos_of(criterion)
        hits_before = self.memo_hits
        misses_before = self.memo_misses
        members = set(self._closure(crit_gpos))

        # Location queries: track the given locations as of (and
        # including) the criterion instruction — resolve each to its
        # reaching definition at crit_gpos + 1 and pull in its closure.
        extra_edges: List[Tuple[int, Location]] = []
        unresolved_locs = set()
        if locations is not None:
            for loc in locations:
                loc = tuple(loc)
                producer = self._resolve(loc, crit_gpos + 1)
                if producer < 0:
                    unresolved_locs.add(loc)
                else:
                    extra_edges.append((producer, loc))
                    if producer not in members:
                        members |= self._closure(producer)

        tids = self._tids
        tindexes = self._tindexes
        indptr = self._indptr
        preds = self._preds
        kinds = self._kinds
        elocs = self._elocs
        locs = self._locs
        unresolved = self._unresolved

        nodes: Dict[Instance, SliceNode] = {}
        edges: List[Tuple[Instance, Instance, str, Optional[tuple]]] = []
        details = self._detail_cache
        columnar = self._columnar
        store_get = None if columnar else self.gtrace.store.get
        last_tid = None
        statics_col = dyns_col = None
        for g in sorted(members):
            detail = details.get(g)
            if detail is None:
                tid = tids[g]
                tindex = tindexes[g]
                inst = (tid, tindex)
                if columnar:
                    # Members arrive gpos-sorted, i.e. clustered into
                    # per-thread runs — refresh the column locals only on
                    # run boundaries.
                    if tid != last_tid:
                        cols = self._columns[tid]
                        statics_col = cols.statics
                        dyns_col = cols.dyns
                        last_tid = tid
                    addr, line, func, _rdefs, _ruses = statics_col[tindex]
                    node = SliceNode(tid, tindex, addr, line, func,
                                     dyns_col[tindex][3])
                else:
                    record = store_get(inst)
                    node = SliceNode(tid, tindex, record.addr, record.line,
                                     record.func, record.values)
                rows = []
                for e in range(indptr[g], indptr[g + 1]):
                    p = preds[e]
                    pinst = (tids[p], tindexes[p])
                    if kinds[e] == EDGE_CONTROL:
                        rows.append((inst, pinst, "control", None))
                    else:
                        rows.append((inst, pinst, "data", locs[elocs[e]]))
                miss = unresolved.get(g)
                mlocs = (tuple(locs[locid] for locid in miss)
                         if miss else None)
                detail = details[g] = (inst, node, rows, mlocs)
            inst, node, rows, mlocs = detail
            nodes[inst] = node
            if rows:
                edges.extend(rows)
            if mlocs:
                unresolved_locs.update(mlocs)
        crit_inst = (tids[crit_gpos], tindexes[crit_gpos])
        for producer, loc in extra_edges:
            edges.append((crit_inst, (tids[producer], tindexes[producer]),
                          "data", loc))

        stats = {
            "engine": "ddg",
            "nodes": len(nodes),
            "edges": len(edges),
            "unresolved_locations": len(unresolved_locs),
            "closure_memo_hits": self.memo_hits - hits_before,
        }
        if OBS.enabled:
            OBS.add("slicing.bfs_visited_nodes", len(members))
            OBS.add("slicing.memo_hits", self.memo_hits - hits_before)
            OBS.add("slicing.memo_misses", self.memo_misses - misses_before)
            OBS.add("slicing.edges_walked", len(edges))
        result = DynamicSlice(crit_inst, nodes, edges, stats)
        if cache_size:
            self._slice_cache[key] = result
            if len(self._slice_cache) > cache_size:
                self._slice_cache.popitem(last=False)
        return result

    # -- internals -----------------------------------------------------------

    def _closure(self, start: int) -> frozenset:
        """Reachable gpos set from ``start`` over the CSR columns, reusing
        previously computed fragments (the closure memo)."""
        memo = self._closure_memo
        cached = memo.get(start)
        if cached is not None:
            memo.move_to_end(start)
            self.memo_hits += 1
            return cached
        self.memo_misses += 1
        indptr = self._indptr
        preds = self._preds
        visited = set()
        add = visited.add
        stack = [start]
        pop = stack.pop
        extend = stack.extend
        while stack:
            g = pop()
            if g in visited:
                continue
            if g != start:
                fragment = memo.get(g)
                if fragment is not None:
                    memo.move_to_end(g)
                    self.memo_hits += 1
                    visited |= fragment
                    continue
            add(g)
            extend(preds[indptr[g]:indptr[g + 1]])
        result = frozenset(visited)
        size = self.options.closure_memo_size
        if size:
            memo[start] = result
            if len(memo) > size:
                memo.popitem(last=False)
        return result

    def _resolve(self, loc: Location, before: int) -> int:
        """Latest definition of ``loc`` strictly below gpos ``before``
        (with save/restore bypass), or -1 when unresolved."""
        locid = self._loc_ids.get(loc)
        if locid is None:
            return -1
        dp = self._def_positions[locid]
        if not dp:
            return -1
        i = bisect_left(dp, before) - 1
        if i < 0:
            return -1
        producer = dp[i]
        if (self._prune and loc[0] == "r" and producer in self._redirect):
            return self._chase(locid, dp, producer, i)
        return producer

