"""Per-thread local execution traces (paper Section 3, step i).

One :class:`TraceRecord` per retired instruction carries exactly what the
backward slicer needs: which registers and memory addresses the instance
defined and used, its dynamic control-dependence parent, and source debug
information.  Locations are encoded as:

* registers: ``("r", tid, name)`` — registers are per-thread state;
* memory: ``("m", addr)`` — shared across threads.

Two storage layouts exist:

* :class:`TraceStore` — the original record-per-row layout: one
  :class:`TraceRecord` object appended per retired instruction.
* :class:`ColumnarTraceStore` — the hot-path layout used by the
  predecoded engine's tracer: parallel per-thread columns with def/use
  tuples *interned* (a thread executing the same pc twice shares one
  tuple), and :class:`TraceRecord` objects materialized lazily, on first
  access, as cached views over the columns.  Both layouts expose the same
  API (``by_thread``, ``get``, lengths), so the slicer, the merger and
  the precision analyses work on either unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

Instance = Tuple[int, int]          # (tid, tindex)
Location = tuple                     # ("r", tid, name) | ("m", addr)


class TraceRecord:
    """One executed instruction instance in a thread's local trace."""

    __slots__ = ("tid", "tindex", "addr", "line", "func",
                 "rdefs", "ruses", "mdefs", "muses", "cd", "gpos", "values",
                 "_def_locs", "_use_locs", "_inst")

    def __init__(self, tid: int, tindex: int, addr: int,
                 line: Optional[int], func: Optional[str],
                 rdefs: Tuple[str, ...], ruses: Tuple[str, ...],
                 mdefs: Tuple[int, ...], muses: Tuple[int, ...],
                 cd: Optional[Instance],
                 values: Optional[dict] = None) -> None:
        self.tid = tid
        self.tindex = tindex
        self.addr = addr
        self.line = line
        self.func = func
        self.rdefs = rdefs
        self.ruses = ruses
        self.mdefs = mdefs
        self.muses = muses
        self.cd = cd           # controlling instance, or None
        self.gpos = -1         # position in the merged global trace
        self.values = values   # optional written-value map for display
        self._def_locs: Optional[Tuple[Location, ...]] = None
        self._use_locs: Optional[Tuple[Location, ...]] = None
        self._inst = (tid, tindex)

    @property
    def instance(self) -> Instance:
        return self._inst

    def def_locations(self) -> Tuple[Location, ...]:
        locs = self._def_locs
        if locs is None:
            locs = tuple(("r", self.tid, name) for name in self.rdefs) \
                + tuple(("m", addr) for addr in self.mdefs)
            self._def_locs = locs
        return locs

    def use_locations(self) -> Tuple[Location, ...]:
        locs = self._use_locs
        if locs is None:
            locs = tuple(("r", self.tid, name) for name in self.ruses) \
                + tuple(("m", addr) for addr in self.muses)
            self._use_locs = locs
        return locs

    def __repr__(self) -> str:
        return ("<TraceRecord %d:%d pc=%d line=%s defs=%s/%s uses=%s/%s>"
                % (self.tid, self.tindex, self.addr, self.line,
                   self.rdefs, self.mdefs, self.ruses, self.muses))


class TraceStore:
    """Per-thread record lists, indexable by (tid, tindex)."""

    def __init__(self) -> None:
        self.by_thread: Dict[int, List[TraceRecord]] = {}

    def append(self, record: TraceRecord) -> None:
        self.by_thread.setdefault(record.tid, []).append(record)

    def get(self, instance: Instance) -> TraceRecord:
        tid, tindex = instance
        return self.by_thread[tid][tindex]

    def thread_length(self, tid: int) -> int:
        return len(self.by_thread.get(tid, ()))

    def total_records(self) -> int:
        return sum(len(records) for records in self.by_thread.values())

    def threads(self) -> List[int]:
        return sorted(self.by_thread)

    def __contains__(self, instance: Instance) -> bool:
        tid, tindex = instance
        records = self.by_thread.get(tid)
        return records is not None and 0 <= tindex < len(records)


# -- columnar layout ----------------------------------------------------------

class _ThreadColumns:
    """Parallel per-thread columns; one slot per retired instruction.

    Each row is split into a *static* part — ``(addr, line, func, rdefs,
    ruses)``, a pure function of the instruction (modulo the SYS r0 def),
    interned by the tracer so a pc executed a million times contributes
    one tuple — and a *dynamic* part ``(mdefs, muses, cd, values)`` built
    per retired instruction.  Four appends per instruction instead of one
    per field."""

    __slots__ = ("statics", "dyns", "gpos", "cache")

    def __init__(self) -> None:
        #: Interned (addr, line, func, rdefs, ruses) per row.
        self.statics: List[tuple] = []
        #: (mdefs, muses, cd, values) per row.
        self.dyns: List[tuple] = []
        self.gpos: List[int] = []
        #: Lazily materialized TraceRecord views (None until first access).
        self.cache: List[Optional[TraceRecord]] = []


class _LazyThreadView:
    """List-like view of one thread's records, materializing on access."""

    __slots__ = ("_store", "_tid", "_cols")

    def __init__(self, store: "ColumnarTraceStore", tid: int,
                 cols: _ThreadColumns) -> None:
        self._store = store
        self._tid = tid
        self._cols = cols

    def __len__(self) -> int:
        return len(self._cols.statics)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        length = len(self._cols.statics)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError(index)
        return self._store.materialize(self._tid, index)

    def __iter__(self):
        for tindex in range(len(self._cols.statics)):
            yield self._store.materialize(self._tid, tindex)


class ColumnarTraceStore:
    """Interned, columnar trace storage with lazy :class:`TraceRecord` views.

    Append path (one call per retired instruction) touches only parallel
    lists and an intern table; no record object, no location tuples.  The
    record/location objects are built on first access and cached, so a
    consumer that never looks at a record (e.g. an LP-skipped trace block)
    never pays for it.
    """

    def __init__(self) -> None:
        self._columns: Dict[int, _ThreadColumns] = {}
        #: Public mapping tid -> list-like record view (same shape as
        #: TraceStore.by_thread; views are created when a tid first appears).
        self.by_thread: Dict[int, _LazyThreadView] = {}
        self._tuples: dict = {}      # interner: def/use tuples
        self._loc_memo: dict = {}    # (tid, rtuple, mtuple) -> location tuple

    # -- append (hot) ---------------------------------------------------------

    def intern(self, items: tuple) -> tuple:
        """Return the canonical instance of ``items`` (tuple interning)."""
        return self._tuples.setdefault(items, items)

    def columns_for(self, tid: int) -> _ThreadColumns:
        cols = self._columns.get(tid)
        if cols is None:
            cols = self._columns[tid] = _ThreadColumns()
            self.by_thread[tid] = _LazyThreadView(self, tid, cols)
        return cols

    def append_row(self, cols: _ThreadColumns, static: tuple,
                   mdefs: tuple, muses: tuple, cd: Optional[Instance],
                   values: Optional[dict]) -> None:
        """Append one row.  ``static`` is the interned
        ``(addr, line, func, rdefs, ruses)`` tuple for the instruction."""
        cols.statics.append(static)
        cols.dyns.append((mdefs, muses, cd, values))
        cols.gpos.append(-1)
        cols.cache.append(None)

    # -- location interning ---------------------------------------------------

    def locations_for(self, tid: int, regs: tuple, mems: tuple) -> tuple:
        """The interned location tuple for a (regs, mems) def or use set."""
        key = (tid, regs, mems)
        locs = self._loc_memo.get(key)
        if locs is None:
            locs = tuple(("r", tid, name) for name in regs) \
                + tuple(("m", addr) for addr in mems)
            self._loc_memo[key] = locs
        return locs

    # -- record materialization -----------------------------------------------

    def materialize(self, tid: int, tindex: int) -> TraceRecord:
        cols = self._columns[tid]
        record = cols.cache[tindex]
        if record is None:
            # Direct slot assignment (bypassing __init__) — materialize is
            # called once per record the slicer actually touches, and the
            # constructor's keyword handling is measurable at that volume.
            record = TraceRecord.__new__(TraceRecord)
            (record.addr, record.line, record.func, rdefs, ruses) = \
                cols.statics[tindex]
            (mdefs, muses, record.cd, record.values) = cols.dyns[tindex]
            record.tid = tid
            record.tindex = tindex
            record.rdefs = rdefs
            record.ruses = ruses
            record.mdefs = mdefs
            record.muses = muses
            record.gpos = cols.gpos[tindex]
            record._def_locs = self.locations_for(tid, rdefs, mdefs)
            record._use_locs = self.locations_for(tid, ruses, muses)
            record._inst = (tid, tindex)
            cols.cache[tindex] = record
        return record

    def gpos_of(self, tid: int, tindex: int) -> int:
        """Global position of one row without materializing its record."""
        cols = self._columns[tid]
        positions = cols.gpos
        if not 0 <= tindex < len(positions):
            raise IndexError(tindex)
        return positions[tindex]

    def set_gpos(self, tid: int, tindex: int, gpos: int) -> None:
        cols = self._columns[tid]
        cols.gpos[tindex] = gpos
        record = cols.cache[tindex]
        if record is not None:
            record.gpos = gpos

    def def_locations_at(self, tid: int, tindex: int) -> tuple:
        """Def locations of one row without materializing its record."""
        cols = self._columns[tid]
        return self.locations_for(
            tid, cols.statics[tindex][3], cols.dyns[tindex][0])

    # -- TraceStore-compatible API --------------------------------------------

    def get(self, instance: Instance) -> TraceRecord:
        tid, tindex = instance
        if tindex < 0:
            raise IndexError(tindex)
        cols = self._columns[tid]
        # Cache-hit fast path: repeated lookups of the same instance (the
        # slicer chasing cd chains and dependence edges) skip materialize.
        record = cols.cache[tindex]
        if record is not None:
            return record
        return self.materialize(tid, tindex)

    def thread_length(self, tid: int) -> int:
        cols = self._columns.get(tid)
        return len(cols.statics) if cols is not None else 0

    def total_records(self) -> int:
        return sum(len(cols.statics) for cols in self._columns.values())

    def threads(self) -> List[int]:
        return sorted(self._columns)

    def __contains__(self, instance: Instance) -> bool:
        tid, tindex = instance
        cols = self._columns.get(tid)
        return cols is not None and 0 <= tindex < len(cols.statics)
