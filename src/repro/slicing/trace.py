"""Per-thread local execution traces (paper Section 3, step i).

One :class:`TraceRecord` per retired instruction carries exactly what the
backward slicer needs: which registers and memory addresses the instance
defined and used, its dynamic control-dependence parent, and source debug
information.  Locations are encoded as:

* registers: ``("r", tid, name)`` — registers are per-thread state;
* memory: ``("m", addr)`` — shared across threads.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

Instance = Tuple[int, int]          # (tid, tindex)
Location = tuple                     # ("r", tid, name) | ("m", addr)


class TraceRecord:
    """One executed instruction instance in a thread's local trace."""

    __slots__ = ("tid", "tindex", "addr", "line", "func",
                 "rdefs", "ruses", "mdefs", "muses", "cd", "gpos", "values")

    def __init__(self, tid: int, tindex: int, addr: int,
                 line: Optional[int], func: Optional[str],
                 rdefs: Tuple[str, ...], ruses: Tuple[str, ...],
                 mdefs: Tuple[int, ...], muses: Tuple[int, ...],
                 cd: Optional[Instance],
                 values: Optional[dict] = None) -> None:
        self.tid = tid
        self.tindex = tindex
        self.addr = addr
        self.line = line
        self.func = func
        self.rdefs = rdefs
        self.ruses = ruses
        self.mdefs = mdefs
        self.muses = muses
        self.cd = cd           # controlling instance, or None
        self.gpos = -1         # position in the merged global trace
        self.values = values   # optional written-value map for display

    @property
    def instance(self) -> Instance:
        return (self.tid, self.tindex)

    def def_locations(self) -> Iterator[Location]:
        for name in self.rdefs:
            yield ("r", self.tid, name)
        for addr in self.mdefs:
            yield ("m", addr)

    def use_locations(self) -> Iterator[Location]:
        for name in self.ruses:
            yield ("r", self.tid, name)
        for addr in self.muses:
            yield ("m", addr)

    def __repr__(self) -> str:
        return ("<TraceRecord %d:%d pc=%d line=%s defs=%s/%s uses=%s/%s>"
                % (self.tid, self.tindex, self.addr, self.line,
                   self.rdefs, self.mdefs, self.ruses, self.muses))


class TraceStore:
    """Per-thread record lists, indexable by (tid, tindex)."""

    def __init__(self) -> None:
        self.by_thread: Dict[int, List[TraceRecord]] = {}

    def append(self, record: TraceRecord) -> None:
        self.by_thread.setdefault(record.tid, []).append(record)

    def get(self, instance: Instance) -> TraceRecord:
        tid, tindex = instance
        return self.by_thread[tid][tindex]

    def thread_length(self, tid: int) -> int:
        return len(self.by_thread.get(tid, ()))

    def total_records(self) -> int:
        return sum(len(records) for records in self.by_thread.values())

    def threads(self) -> List[int]:
        return sorted(self.by_thread)

    def __contains__(self, instance: Instance) -> bool:
        tid, tindex = instance
        records = self.by_thread.get(tid)
        return records is not None and 0 <= tindex < len(records)
