"""Save/restore pair detection (paper Section 5.2).

Two phases, exactly as the paper describes:

* **Static candidates** — the first ``MaxSave`` ``push`` instructions at a
  function's entry are potential *saves*; the ``pop`` instructions in the
  window before each ``ret`` are potential *restores*.  No compiler
  cooperation: this works on any binary our ISA can express.
* **Dynamic verification** — a candidate pair is a verified save/restore
  for a dynamic frame iff the save copied register ``r`` to stack slot
  ``s`` at frame entry and the restore copied *the same value* from ``s``
  back to ``r`` at frame exit.

The verified pairs feed the slicer's bypass: a data dependence resolved to
a verified restore is redirected to the definition reaching the matching
save, eliminating the spurious chains of Figure 8.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.isa.instructions import Opcode, Reg
from repro.isa.program import Function, Program
from repro.vm.hooks import InstrEvent

Instance = Tuple[int, int]

#: How many non-push instructions the candidate scan tolerates before
#: giving up (prologues interleave ``mov fp, sp`` / ``sub sp`` with pushes).
_SCAN_SLACK = 4


def find_static_candidates(program: Program,
                           max_save: int) -> Tuple[Set[int], Set[int]]:
    """Candidate save/restore instruction addresses across the program."""
    saves: Set[int] = set()
    restores: Set[int] = set()
    for function in program.functions.values():
        saves.update(_scan_saves(program, function, max_save))
        restores.update(_scan_restores(program, function, max_save))
    return saves, restores


def _scan_saves(program: Program, function: Function,
                max_save: int) -> List[int]:
    found: List[int] = []
    if max_save <= 0:
        return found
    slack = _SCAN_SLACK
    for addr in range(function.entry, function.end):
        instr = program.instructions[addr]
        if instr.op == Opcode.PUSH and isinstance(instr.operands[0], Reg):
            found.append(addr)
            if len(found) >= max_save:
                break
        elif instr.is_control_transfer():
            break
        else:
            slack -= 1
            if slack < 0:
                break
    return found


def _scan_restores(program: Program, function: Function,
                   max_save: int) -> List[int]:
    found: List[int] = []
    if max_save <= 0:
        return found
    for ret_addr in range(function.entry, function.end):
        if program.instructions[ret_addr].op != Opcode.RET:
            continue
        slack = _SCAN_SLACK
        count = 0
        for addr in range(ret_addr - 1, function.entry - 1, -1):
            instr = program.instructions[addr]
            if instr.op == Opcode.POP:
                found.append(addr)
                count += 1
                if count >= max_save:
                    break
            elif instr.is_control_transfer():
                break
            else:
                slack -= 1
                if slack < 0:
                    break
    return found


class SaveRestoreDetector:
    """Verifies candidate pairs dynamically as the trace is collected."""

    def __init__(self, program: Program, max_save: int) -> None:
        self.max_save = max_save
        if max_save > 0:
            self.save_addrs, self.restore_addrs = find_static_candidates(
                program, max_save)
        else:
            self.save_addrs, self.restore_addrs = set(), set()
        #: (tid, frame_id) -> reg -> (save_tindex, stack_addr, value)
        self._open: Dict[Tuple[int, int], Dict[str, Tuple[int, int, object]]] = {}
        #: restore instance -> matching save instance.
        self.verified: Dict[Instance, Instance] = {}
        #: All instances participating in a verified pair (for reporting).
        self.pair_count = 0

    def on_event(self, event: InstrEvent) -> None:
        if not self.max_save:
            return
        addr = event.addr
        if addr in self.save_addrs and event.instr.op == Opcode.PUSH:
            reg = event.instr.operands[0].name
            if not event.mem_writes:
                return
            stack_addr, value = event.mem_writes[0]
            key = (event.tid, event.frame_id)
            self._open.setdefault(key, {})[reg] = (
                event.tindex, stack_addr, value)
        elif addr in self.restore_addrs and event.instr.op == Opcode.POP:
            reg = event.instr.operands[0].name
            if not event.mem_reads:
                return
            stack_addr, value = event.mem_reads[0]
            key = (event.tid, event.frame_id)
            frame_saves = self._open.get(key)
            if not frame_saves:
                return
            saved = frame_saves.get(reg)
            if saved is None:
                return
            save_tindex, save_stack_addr, save_value = saved
            if save_stack_addr == stack_addr and save_value == value:
                self.verified[(event.tid, event.tindex)] = (
                    event.tid, save_tindex)
                self.pair_count += 1
                del frame_saves[reg]
        elif event.instr.op == Opcode.RET:
            # Frame is gone; drop its open saves.
            self._open.pop((event.tid, event.frame_id), None)
