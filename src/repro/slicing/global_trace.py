"""Combined global trace construction (paper Section 3, step ii).

Merges the per-thread local traces into one total order that respects

* program order within each thread, and
* the shared-memory access-order edges (RAW/WAW/WAR across threads)
  recorded in the pinball.

The merge is a Kahn-style topological sort that *clusters* per-thread runs:
it keeps emitting from the current thread until the next record has an
unsatisfied cross-thread dependency, then rotates — the locality heuristic
the paper describes for the LP algorithm ("we always try to cluster traces
for each thread to the extent possible").
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.slicing.trace import TraceRecord, TraceStore

Edge = Tuple[int, int, int, int, int, str]


class GlobalTraceError(Exception):
    """The access-order edges were inconsistent (cyclic) — cannot happen
    for edges recorded from a real execution."""


class GlobalTrace:
    """The merged total order, with per-record global positions filled in."""

    def __init__(self, order: List[TraceRecord], store: TraceStore) -> None:
        self.order = order
        self.store = store

    def __len__(self) -> int:
        return len(self.order)

    def record_at(self, gpos: int) -> TraceRecord:
        return self.order[gpos]

    def record_of(self, instance: Tuple[int, int]) -> TraceRecord:
        return self.store.get(instance)

    def verify_topological(self, edges: Sequence[Edge]) -> bool:
        """Check the order honors program order and every edge (for tests)."""
        last_by_thread: Dict[int, int] = {}
        for gpos, record in enumerate(self.order):
            if record.gpos != gpos:
                return False
            previous = last_by_thread.get(record.tid, -1)
            if record.tindex != previous + 1:
                return False
            last_by_thread[record.tid] = record.tindex
        for from_tid, from_tindex, to_tid, to_tindex, _addr, _kind in edges:
            frm = self.store.get((from_tid, from_tindex))
            to = self.store.get((to_tid, to_tindex))
            if frm.gpos >= to.gpos:
                return False
        return True


def merge_traces(store: TraceStore, edges: Sequence[Edge]) -> GlobalTrace:
    """Topologically merge per-thread traces honoring ``edges``.

    Each edge ``(from_tid, from_tindex, to_tid, to_tindex, addr, kind)``
    constrains the *from* instance to precede the *to* instance.
    """
    incoming: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for from_tid, from_tindex, to_tid, to_tindex, _addr, _kind in edges:
        incoming.setdefault((to_tid, to_tindex), []).append(
            (from_tid, from_tindex))

    tids = store.threads()
    cursor: Dict[int, int] = {tid: 0 for tid in tids}
    lengths: Dict[int, int] = {tid: store.thread_length(tid) for tid in tids}
    total = sum(lengths.values())
    order: List[TraceRecord] = []
    current = 0
    stalled = 0
    while len(order) < total:
        tid = tids[current]
        emitted_here = 0
        while cursor[tid] < lengths[tid]:
            deps = incoming.get((tid, cursor[tid]))
            if deps is not None and any(
                    cursor[from_tid] <= from_tindex
                    for from_tid, from_tindex in deps):
                break
            record = store.by_thread[tid][cursor[tid]]
            record.gpos = len(order)
            order.append(record)
            cursor[tid] += 1
            emitted_here += 1
        if emitted_here:
            stalled = 0
        else:
            stalled += 1
            if stalled >= len(tids):
                raise GlobalTraceError(
                    "access-order edges form a cycle; remaining cursors: %r"
                    % cursor)
        current = (current + 1) % len(tids)
    return GlobalTrace(order, store)
