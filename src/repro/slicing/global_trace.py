"""Combined global trace construction (paper Section 3, step ii).

Merges the per-thread local traces into one total order that respects

* program order within each thread, and
* the shared-memory access-order edges (RAW/WAW/WAR across threads)
  recorded in the pinball.

The merge is a Kahn-style topological sort that *clusters* per-thread runs:
it keeps emitting from the current thread until the next record has an
unsatisfied cross-thread dependency, then rotates — the locality heuristic
the paper describes for the LP algorithm ("we always try to cluster traces
for each thread to the extent possible").

For a :class:`~repro.slicing.trace.ColumnarTraceStore` the merge runs
entirely on (tid, tindex) indices and a per-thread ``gpos`` column — no
:class:`~repro.slicing.trace.TraceRecord` is materialized.  The resulting
``GlobalTrace.order`` is then a lazy sequence view that materializes (and
caches, via the store) only the records a consumer actually touches.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from repro.slicing.trace import ColumnarTraceStore, TraceRecord, TraceStore

Edge = Tuple[int, int, int, int, int, str]


class GlobalTraceError(Exception):
    """The access-order edges were inconsistent (cyclic) — cannot happen
    for edges recorded from a real execution."""


class LazyOrderView:
    """Sequence of the merged global trace, materializing records lazily.

    Record identity is shared with the store's own cache, so
    ``gtrace.record_at(g) is gtrace.record_of(instance)`` holds exactly as
    it does for the eager list.
    """

    __slots__ = ("_store", "_tids", "_tindexes", "_cache")

    def __init__(self, store: ColumnarTraceStore,
                 tids: List[int], tindexes: List[int]) -> None:
        self._store = store
        self._tids = tids
        self._tindexes = tindexes
        #: Per-position record cache: a repeat access (the slicer scans
        #: the same positions across queries) is one list index, not a
        #: store round-trip.  Holds the *same* objects as the store's own
        #: per-thread cache, so record identity is preserved.
        self._cache: List[object] = [None] * len(tids)

    def instance_at(self, gpos: int) -> Tuple[int, int]:
        return (self._tids[gpos], self._tindexes[gpos])

    def __len__(self) -> int:
        return len(self._tids)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        length = len(self._tids)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError(index)
        record = self._cache[index]
        if record is None:
            record = self._store.materialize(
                self._tids[index], self._tindexes[index])
            self._cache[index] = record
        return record

    def __iter__(self):
        for index in range(len(self._tids)):
            yield self[index]

    def __reversed__(self):
        for index in range(len(self._tids) - 1, -1, -1):
            yield self[index]


OrderSeq = Union[List[TraceRecord], LazyOrderView]


class GlobalTrace:
    """The merged total order, with per-record global positions filled in."""

    def __init__(self, order: OrderSeq,
                 store: Union[TraceStore, ColumnarTraceStore]) -> None:
        self.order = order
        self.store = store

    def __len__(self) -> int:
        return len(self.order)

    def record_at(self, gpos: int) -> TraceRecord:
        return self.order[gpos]

    def record_of(self, instance: Tuple[int, int]) -> TraceRecord:
        return self.store.get(instance)

    def gpos_of(self, instance: Tuple[int, int]) -> int:
        """Global position of ``instance`` — O(1) column read for columnar
        stores (no record materialization), record lookup otherwise."""
        fast = getattr(self.store, "gpos_of", None)
        if fast is not None:
            return fast(instance[0], instance[1])
        return self.store.get(instance).gpos

    def verify_topological(self, edges: Sequence[Edge]) -> bool:
        """Check the order honors program order and every edge (for tests)."""
        last_by_thread: Dict[int, int] = {}
        for gpos, record in enumerate(self.order):
            if record.gpos != gpos:
                return False
            previous = last_by_thread.get(record.tid, -1)
            if record.tindex != previous + 1:
                return False
            last_by_thread[record.tid] = record.tindex
        for from_tid, from_tindex, to_tid, to_tindex, _addr, _kind in edges:
            frm = self.store.get((from_tid, from_tindex))
            to = self.store.get((to_tid, to_tindex))
            if frm.gpos >= to.gpos:
                return False
        return True


def _build_incoming(edges: Sequence[Edge]) -> Dict[Tuple[int, int],
                                                   List[Tuple[int, int]]]:
    incoming: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for from_tid, from_tindex, to_tid, to_tindex, _addr, _kind in edges:
        incoming.setdefault((to_tid, to_tindex), []).append(
            (from_tid, from_tindex))
    return incoming


def merge_traces(store: Union[TraceStore, ColumnarTraceStore],
                 edges: Sequence[Edge]) -> GlobalTrace:
    """Topologically merge per-thread traces honoring ``edges``.

    Each edge ``(from_tid, from_tindex, to_tid, to_tindex, addr, kind)``
    constrains the *from* instance to precede the *to* instance.
    """
    if isinstance(store, ColumnarTraceStore):
        return _merge_columnar(store, edges)
    incoming = _build_incoming(edges)

    tids = store.threads()
    cursor: Dict[int, int] = {tid: 0 for tid in tids}
    lengths: Dict[int, int] = {tid: store.thread_length(tid) for tid in tids}
    total = sum(lengths.values())
    order: List[TraceRecord] = []
    current = 0
    stalled = 0
    while len(order) < total:
        tid = tids[current]
        emitted_here = 0
        while cursor[tid] < lengths[tid]:
            deps = incoming.get((tid, cursor[tid]))
            if deps is not None and any(
                    cursor[from_tid] <= from_tindex
                    for from_tid, from_tindex in deps):
                break
            record = store.by_thread[tid][cursor[tid]]
            record.gpos = len(order)
            order.append(record)
            cursor[tid] += 1
            emitted_here += 1
        if emitted_here:
            stalled = 0
        else:
            stalled += 1
            if stalled >= len(tids):
                raise GlobalTraceError(
                    "access-order edges form a cycle; remaining cursors: %r"
                    % cursor)
        current = (current + 1) % len(tids)
    return GlobalTrace(order, store)


def _merge_columnar(store: ColumnarTraceStore,
                    edges: Sequence[Edge]) -> GlobalTrace:
    """Index-only merge: identical emission order, zero materialization."""
    incoming = _build_incoming(edges)

    tids = store.threads()
    cursor: Dict[int, int] = {tid: 0 for tid in tids}
    lengths: Dict[int, int] = {tid: store.thread_length(tid) for tid in tids}
    total = sum(lengths.values())
    order_tids: List[int] = []
    order_tindexes: List[int] = []
    set_gpos = store.set_gpos
    current = 0
    stalled = 0
    while len(order_tids) < total:
        tid = tids[current]
        emitted_here = 0
        length = lengths[tid]
        while cursor[tid] < length:
            position = cursor[tid]
            if incoming:
                deps = incoming.get((tid, position))
                if deps is not None and any(
                        cursor[from_tid] <= from_tindex
                        for from_tid, from_tindex in deps):
                    break
            set_gpos(tid, position, len(order_tids))
            order_tids.append(tid)
            order_tindexes.append(position)
            cursor[tid] = position + 1
            emitted_here += 1
        if emitted_here:
            stalled = 0
        else:
            stalled += 1
            if stalled >= len(tids):
                raise GlobalTraceError(
                    "access-order edges form a cycle; remaining cursors: %r"
                    % cursor)
        current = (current + 1) % len(tids)
    return GlobalTrace(LazyOrderView(store, order_tids, order_tindexes),
                       store)
