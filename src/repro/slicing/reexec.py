"""On-demand re-execution slicing: the ``index="reexec"`` engine.

The materialized engines (``ddg`` / ``columnar`` / ``rows``) pay one traced
replay that records *every* retired instruction's operands, then keep the
whole trace resident for the session.  For long regions the trace — not
the slice — dominates peak memory.  This module answers the same queries
byte-identically while keeping resident state proportional to what the
queries actually touch, by leaning on the pinball's determinism twice:

* **Scaffold pass** (once, at session open): one full replay in the
  *selective-trace* VM mode (:func:`repro.vm.microops.decode_selective`,
  ``"flow"`` sink) records only the per-thread pc streams plus the few
  execution-time facts static analysis cannot recover — branch region
  ends under live CFG refinement, per-instance syscall result presence,
  dynamically verified save/restore pairs (reusing
  :class:`~repro.slicing.save_restore.SaveRestoreDetector` verbatim via
  shim events), and a per-window *written-address directory* (the set of
  memory addresses each window writes, no order or attribution).
  Everything else about an instruction — its register
  defs/uses, line, function — is a pure function of the static program
  and is derived per *pc*, not per instance.  The pass also cuts the
  region into checkpoint-bounded *windows*: embedded (v2) checkpoints
  where the pinball carries them, otherwise checkpoints synthesized at
  planned boundaries while the scaffold passes by (the v1 fallback).
* **Window scans** (on demand, per query): memory-access addresses are
  the one per-instance fact the scaffold skips.  When a query needs the
  defs/uses of a window's instructions, the engine resumes the nearest
  checkpoint (:func:`~repro.pinplay.replayer.resume_machine`) and
  replays *only that window* with the ``"mem"`` selective table armed —
  every other window stays unexecuted, unrecorded, and unresident.
  Backward def searches consult the written-address directory first, so
  a resolution touching distant history re-replays exactly the window
  holding the producer — and a read of pre-region state resolves to
  "unresolved" from set membership alone, with no re-replay at all.

Discovered dependences are memoized into a sparse *partial DDG* whose
per-node rows replicate :class:`~repro.slicing.ddg.DependenceIndex`'s
build exactly (same producer resolution, same save/restore bypass chase,
same control-dependence replication of
:class:`~repro.slicing.control_dep.ControlDepTracker`, same closure memo
and slice LRU), so repeated queries converge to ddg-class latency while
the first query never pays the full-trace build.  Byte-identity of the
resulting slices is asserted by
``tests/slicing/test_reexec_differential.py``.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import config
from repro.analysis.registry import CfgRegistry
from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.obs.registry import OBS
from repro.pinplay.format_v2 import EmbeddedCheckpoint, capture_state
from repro.pinplay.pinball import Pinball
from repro.pinplay.replayer import SyscallInjector, resume_machine
from repro.slicing.global_trace import GlobalTraceError
from repro.slicing.options import SliceOptions
from repro.slicing.save_restore import SaveRestoreDetector
from repro.slicing.shard import plan_boundaries
from repro.slicing.slice import DynamicSlice, SliceNode
from repro.slicing.trace import Instance, Location
from repro.slicing.tracer import prime_jump_tables
from repro.vm.errors import ReplayDivergence
from repro.vm.machine import Machine, MachineSnapshot
from repro.vm.microops import MEM_OPCODES, decode_selective
from repro.vm.scheduler import RecordedScheduler

#: Per-pc instruction classes driving the offline control-dep replication.
_PLAIN, _BRANCH, _CALL, _RET, _SYS = 0, 1, 2, 3, 4

#: ``br_end`` encodings for region ends that are not addresses.
_END_NONE = -1        # post-dominator unknown: region closes at frame exit
_END_NO_TARGETS = -2  # IJMP with no known targets: no region at all

#: Most windows the v1 fallback synthesizes checkpoints for — bounds the
#: scaffold's resident snapshot memory for pinballs recorded without
#: embedded checkpoints.
_MAX_SYNTH_WINDOWS = 16

#: Opcodes that read memory on every retire (the ``last_reads`` index).
_MEM_READERS = frozenset((Opcode.LD, Opcode.POP, Opcode.RET))


def _derive_reg_sets(instr, track_sp: bool) -> Tuple[tuple, tuple]:
    """Static register (rdefs, ruses) for one instruction, byte-equal to
    what :class:`~repro.slicing.tracer.TraceCollector` derives from a
    traced event of the same opcode/shape (same traversal order, same
    ``sp`` filtering, same dedupe).  SYS returns the no-result variant;
    its per-instance ``r0`` def is applied from the scaffold's flag
    stream.  Raises ValueError for shapes the traced closures would not
    decode either."""
    op = instr.op
    ops = instr.operands
    kinds = instr.operand_kinds()
    reads: List[str] = []
    writes: List[str] = []
    if op == Opcode.MOV or op == Opcode.LEA:
        if kinds == "rr":
            reads.append(ops[1].name)
        elif kinds != "ri":
            raise ValueError("underivable %s shape %r" % (op, kinds))
        writes.append(ops[0].name)
    elif op == Opcode.LD:
        reads.append(ops[1].base.name)
        writes.append(ops[0].name)
    elif op == Opcode.ST:
        reads.append(ops[0].base.name)
        if kinds == "mr":
            reads.append(ops[1].name)
        elif kinds != "mi":
            raise ValueError("underivable st shape %r" % (kinds,))
    elif op == Opcode.BINOP:
        if kinds not in ("rrr", "rri", "rir", "rii"):
            raise ValueError("underivable binop shape %r" % (kinds,))
        if kinds[1] == "r":
            reads.append(ops[1].name)
        if kinds[2] == "r":
            reads.append(ops[2].name)
        writes.append(ops[0].name)
    elif op == Opcode.UNOP:
        if kinds not in ("rr", "ri"):
            raise ValueError("underivable unop shape %r" % (kinds,))
        if kinds == "rr":
            reads.append(ops[1].name)
        writes.append(ops[0].name)
    elif op == Opcode.BR or op == Opcode.BRZ:
        reads.append(ops[0].name)
    elif op == Opcode.IJMP:
        reads.append(ops[0].name)
    elif op == Opcode.CALL:
        reads.append("sp")
        writes.append("sp")
    elif op == Opcode.ICALL:
        reads.append(ops[0].name)
        reads.append("sp")
        writes.append("sp")
    elif op == Opcode.RET:
        reads.append("sp")
        writes.append("sp")
    elif op == Opcode.PUSH:
        if kinds == "r":
            reads.append(ops[0].name)
        elif kinds != "i":
            raise ValueError("underivable push shape %r" % (kinds,))
        reads.append("sp")
        writes.append("sp")
    elif op == Opcode.POP:
        reads.append("sp")
        writes.append(ops[0].name)
        writes.append("sp")
    elif op == Opcode.SYS:
        reads.extend(("r0", "r1", "r2", "r3"))
    elif op not in (Opcode.JMP, Opcode.HALT, Opcode.NOP):
        raise ValueError("underivable opcode %r" % (op,))
    ruses = tuple(dict.fromkeys(
        name for name in reads if track_sp or name != "sp"))
    rdefs = tuple(dict.fromkeys(
        name for name in writes if track_sp or name != "sp"))
    return rdefs, ruses


class _ShimEvent:
    """The slice of :class:`~repro.vm.hooks.InstrEvent` the save/restore
    detector reads, built from flow-sink callbacks."""

    __slots__ = ("tid", "tindex", "addr", "instr", "frame_id",
                 "mem_writes", "mem_reads")

    def __init__(self, tid, tindex, addr, instr, frame_id,
                 mem_writes, mem_reads):
        self.tid = tid
        self.tindex = tindex
        self.addr = addr
        self.instr = instr
        self.frame_id = frame_id
        self.mem_writes = mem_writes
        self.mem_reads = mem_reads


class _RetMarker:
    """Stand-in instruction for RET shim events: the detector only
    inspects ``instr.op`` on that path."""
    op = Opcode.RET


_RET_INSTR = _RetMarker()
_NO_PAIRS = ()


class _ScaffoldSink:
    """Flow-mode selective sink: per-thread pc streams + the dynamic
    facts listed in the module docstring."""

    mode = "flow"

    def __init__(self, program: Program, options: SliceOptions) -> None:
        self.registry = CfgRegistry(program, refine=options.refine_cfg)
        if options.discover_jump_tables:
            prime_jump_tables(self.registry, program)
        self.detector = SaveRestoreDetector(
            program, options.max_save if options.prune_save_restore else 0)
        self.save_addrs = self.detector.save_addrs
        self.restore_addrs = self.detector.restore_addrs
        self._instructions = program.instructions
        self._refine = options.refine_cfg
        #: pcs fit a 16-bit column for every realistic program; fall back
        #: to 32-bit only when the code segment is genuinely that large.
        self._pc_typecode = (
            "H" if len(program.instructions) <= 0xFFFF else "I")
        self.pcs: Dict[int, array] = {}
        #: Per-thread branch region ends, one entry per BR/BRZ/IJMP retire
        #: in program order (consumed positionally by the offline
        #: control-dep replication).
        self.br_end: Dict[int, array] = {}
        #: Per-thread SYS result flags, one per SYS retire in order.
        self.sys_flag: Dict[int, bytearray] = {}
        #: Per-window written-address sets (no order, no attribution
        #: within a window).  The scaffold driver calls
        #: :meth:`begin_window` at every checkpoint bound; resolution
        #: later jumps straight to the nearest window whose set holds the
        #: address instead of scanning every window in between, and a use
        #: of an address in no set short-circuits to "unresolved".
        self.window_written: List[Set[int]] = []
        self._cur_written: Set[int] = set()

    def begin_window(self) -> None:
        self._cur_written = set()
        self.window_written.append(self._cur_written)
        #: region_end_addr per pc, valid for one refinement epoch — the
        #: tracer recomputes per event, so a refinement mid-run must
        #: invalidate what we cached before it.
        self._end_cache: Dict[int, int] = {}
        self._end_epoch = -1

    # -- callbacks (hot) ---------------------------------------------------

    def on_step(self, tid: int, pc: int) -> None:
        col = self.pcs.get(tid)
        if col is None:
            col = self.pcs[tid] = array(self._pc_typecode)
            self.br_end[tid] = array("q")
            self.sys_flag[tid] = bytearray()
        col.append(pc)

    def on_branch(self, tid: int, pc: int) -> None:
        self.br_end[tid].append(self._end_of(pc))

    def on_ijmp(self, tid: int, pc: int, target: int) -> None:
        registry = self.registry
        if self._refine:
            registry.observe_indirect_jump(pc, target)
        if registry.cfg_for_addr(pc).indirect_targets.get(pc):
            self.br_end[tid].append(self._end_of(pc))
        else:
            self.br_end[tid].append(_END_NO_TARGETS)

    def on_sys(self, tid: int, wrote_r0: bool) -> None:
        self.sys_flag[tid].append(1 if wrote_r0 else 0)

    def on_wset(self, addr: int) -> None:
        self._cur_written.add(addr)

    def on_save(self, tid: int, pc: int, stack_addr: int, value,
                frame_id: int) -> None:
        self._cur_written.add(stack_addr)
        self.detector.on_event(_ShimEvent(
            tid, len(self.pcs[tid]) - 1, pc, self._instructions[pc],
            frame_id, ((stack_addr, value),), _NO_PAIRS))

    def on_restore(self, tid: int, pc: int, stack_addr: int, value,
                   frame_id: int) -> None:
        self.detector.on_event(_ShimEvent(
            tid, len(self.pcs[tid]) - 1, pc, self._instructions[pc],
            frame_id, _NO_PAIRS, ((stack_addr, value),)))

    def on_ret(self, tid: int, frame_id: int) -> None:
        # Only the RET branch of the detector fires for this event shape
        # (addr -1 is in no candidate set); it drops the frame's open
        # saves, exactly as the traced path does for every RET.
        self.detector.on_event(_ShimEvent(
            tid, -1, -1, _RET_INSTR, frame_id, _NO_PAIRS, _NO_PAIRS))

    # -- helpers -----------------------------------------------------------

    def _end_of(self, pc: int) -> int:
        registry = self.registry
        if registry.refinements != self._end_epoch:
            self._end_cache.clear()
            self._end_epoch = registry.refinements
        end = self._end_cache.get(pc, _END_NO_TARGETS - 1)
        if end == _END_NO_TARGETS - 1:
            real = registry.region_end_addr(pc)
            end = _END_NONE if real is None else real
            self._end_cache[pc] = end
        return end


class _MemSink:
    """Mem-mode selective sink: (tid, tindex, muses, mdefs) rows in
    retire order, deduped exactly as the tracer dedupes event address
    lists."""

    mode = "mem"

    def __init__(self) -> None:
        self.rows: List[tuple] = []

    def on_mem(self, tid: int, tindex: int, reads: list, writes: list)\
            -> None:
        if not reads:
            muses = _NO_PAIRS
        elif len(reads) == 1:
            muses = (reads[0],)
        else:
            muses = tuple(dict.fromkeys(reads))
        if not writes:
            mdefs = _NO_PAIRS
        elif len(writes) == 1:
            mdefs = (writes[0],)
        else:
            mdefs = tuple(dict.fromkeys(writes))
        self.rows.append((tid, tindex, mdefs, muses))


class _Window:
    """One checkpoint-bounded region window's scanned memory facts."""

    __slots__ = ("scanned", "rows", "defs")

    def __init__(self) -> None:
        self.scanned = False
        #: (tid, tindex) -> muses for rows that *read* memory (defs live
        #: in the per-address columns below; instances without reads have
        #: no entry).
        self.rows: Dict[Instance, tuple] = {}
        #: addr -> ascending gpos list of its definitions in this window.
        self.defs: Dict[int, list] = {}


class ReexecIndex:
    """The reexec session engine: scaffold + partial DDG + window scans.

    Drop-in for the :class:`~repro.slicing.slicer.BackwardSlicer` facade
    (``slice()`` / ``index_stats()``) plus the criterion helpers
    :class:`~repro.slicing.api.SlicingSession` delegates.  Construction
    raises :class:`ValueError` when the program cannot be selectively
    decoded (or the pinball/engine combination is unsupported); the
    session then falls back to the materialized pipeline.
    """

    def __init__(self, pinball: Pinball, program: Program,
                 options: Optional[SliceOptions] = None,
                 engine: Optional[str] = None) -> None:
        if pinball.exclusions:
            raise ValueError(
                "reexec slicing does not support exclusion (slice) "
                "pinballs")
        if config.engine(explicit=engine) != "predecoded":
            raise ValueError(
                "reexec slicing requires the predecoded engine")
        self.pinball = pinball
        self.program = program
        self.options = options or SliceOptions()
        self.engine = engine
        # Selective tables (ValueError propagates to the session's
        # fallback for undecodable programs).
        self._sink = _ScaffoldSink(program, self.options)
        self._flow_table = decode_selective(program, self._sink)
        self._mem_sink = _MemSink()
        self._mem_table = decode_selective(program, self._mem_sink)
        self.registry = self._sink.registry
        self.save_restore = self._sink.detector
        self._build_statics()

        #: Re-execution counters (index_stats / OBS mirrors).
        self.passes = 0
        self.window_steps = 0
        self.watch_hits = 0
        #: Partial-DDG growth + memo counters, same roles as the ddg
        #: engine's (differential-stripped stats aside, the byte-identity
        #: contract is over slices, not counters).
        self.node_count = 0
        self.edge_count = 0
        self.memo_hits = 0
        self.memo_misses = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.bypassed_edges = 0
        self._slice_cache: "OrderedDict[tuple, DynamicSlice]" = OrderedDict()
        self._closure_memo: "OrderedDict[int, array]" = OrderedDict()
        #: gpos -> (inst, SliceNode, edge locs, unresolved locs, pred
        #: gposes): the partial DDG itself.
        self._details: Dict[int, tuple] = {}
        #: gpos -> expanded ddg-shaped edge rows, built on a node's first
        #: appearance in a materialized slice and shared by every cached
        #: slice that contains the node afterwards.
        self._expanded: Dict[int, list] = {}
        #: Dependence-location tuples interned by value: thousands of
        #: nodes use the same ("r", tid, name) / ("m", addr) keys.
        self._loc_intern: Dict[tuple, tuple] = {}
        self._bypass_memo: Dict[tuple, int] = {}
        self._crit_lines = None
        self._prepared = False

        with OBS.span("reexec.scaffold") as span:
            self._scaffold()
        self.build_time = span.elapsed

    # -- machines ----------------------------------------------------------

    def _fresh_machine(self) -> Tuple[Machine, SyscallInjector]:
        pinball = self.pinball
        if self.program.name != pinball.program_name:
            raise ReplayDivergence(
                "pinball was recorded for %r, not %r"
                % (pinball.program_name, self.program.name))
        scheduler = RecordedScheduler(pinball.schedule)
        injector = SyscallInjector(pinball.syscalls)
        machine = Machine.from_snapshot(
            self.program, MachineSnapshot.from_dict(pinball.snapshot),
            scheduler=scheduler, syscall_injector=injector.inject,
            engine=self.engine)
        return machine, injector

    def _resume(self, window: int) -> Machine:
        handle = self._handles[window]
        if handle is None:
            machine, _injector = self._fresh_machine()
            return machine
        machine, _injector = resume_machine(
            self.pinball, self.program, handle, engine=self.engine)
        return machine

    # -- scaffold ----------------------------------------------------------

    def _scaffold(self) -> None:
        pinball = self.pinball
        total = pinball.total_steps
        if pinball.checkpoints:
            by_steps = {c.steps_done: c for c in pinball.checkpoints}
            interiors = sorted(s for s in by_steps if 0 < s < total)
            synthesize = False
        else:
            interval = max(1, config.checkpoint_interval())
            nwin = max(1, min(_MAX_SYNTH_WINDOWS, total // interval))
            interiors = plan_boundaries(total, nwin)
            by_steps = {}
            synthesize = True
        bounds = [0] + interiors + [total]

        machine, injector = self._fresh_machine()
        machine.set_selective(self._flow_table)
        #: Pre-run frame-id state per thread, seeding the offline
        #: control-dep replication.  Threads spawned mid-region start
        #: with one frame (id 0) and next id 1, matching create_thread.
        self._init_frames = {
            tid: (tuple(f.frame_id for f in thread.frames),
                  thread._next_frame_id)
            for tid, thread in machine.threads.items()}

        counts = [{tid: t.instr_count for tid, t in machine.threads.items()}]
        handles: List[Optional[EmbeddedCheckpoint]] = [None]
        done = 0
        result = None
        self._sink.begin_window()
        for bound in bounds[1:]:
            delta = bound - done
            while delta > 0:
                result = machine.run(max_steps=delta)
                if result.steps == 0:
                    break
                delta -= result.steps
                done += result.steps
            counts.append({tid: t.instr_count
                           for tid, t in machine.threads.items()})
            if bound < total:
                if synthesize:
                    by_steps[bound] = EmbeddedCheckpoint(
                        done, machine.global_seq,
                        body=capture_state(machine, injector.consumed(),
                                           machine.output))
                handles.append(by_steps[bound])
                self._sink.begin_window()
        machine.set_selective(None)
        #: The scaffold replays the whole region, so its final machine is
        #: the region's end state — sessions expose it as ``machine``.
        self.final_machine = machine
        self.final_result = result
        self._bounds = bounds
        self._bnd_counts = counts
        self._handles = handles
        self._windows = [_Window() for _ in range(len(bounds) - 1)]
        #: Per-window written-address sets and their union: the window
        #: directory that lets resolution jump to the right window.
        self._window_written = self._sink.window_written
        self._written = (set().union(*self._window_written)
                         if self._window_written else set())
        self._pcs = self._sink.pcs
        self.passes += 1
        self.window_steps += done
        if OBS.enabled:
            OBS.add("reexec.passes", 1)
            OBS.add("reexec.window_steps", done)
            OBS.add("reexec.scaffold_steps", done)

    # -- per-pc statics ----------------------------------------------------

    def _build_statics(self) -> None:
        track_sp = self.options.track_stack_pointer
        plans = []
        reads_mem = bytearray()
        memop = bytearray()
        lines = []
        for instr in self.program.instructions:
            rdefs, ruses = _derive_reg_sets(instr, track_sp)
            op = instr.op
            if op == Opcode.BR or op == Opcode.BRZ or op == Opcode.IJMP:
                klass = _BRANCH
            elif op == Opcode.CALL or op == Opcode.ICALL:
                klass = _CALL
            elif op == Opcode.RET:
                klass = _RET
            elif op == Opcode.SYS:
                klass = _SYS
            else:
                klass = _PLAIN
            plans.append((instr.line, instr.func, rdefs, ruses, klass))
            reads_mem.append(1 if op in _MEM_READERS else 0)
            memop.append(1 if op in MEM_OPCODES else 0)
            lines.append(instr.line)
        self._plans = plans
        self._reads_mem = reads_mem
        self._memop = memop
        self._line_by_pc = lines

    # -- prepare: merge + offline scaffolding ------------------------------

    def prepare(self) -> None:
        """Merge the pc streams into the global order and replicate the
        offline analyses (control deps, register def chains, bypass
        redirects).  Idempotent; called once per session."""
        if self._prepared:
            return
        self._merge()
        self._offline_pass()
        prune = (self.options.prune_save_restore
                 and bool(self.save_restore.verified))
        self._prune = prune
        redirect: Dict[int, Dict[int, int]] = {}
        if prune:
            for (tid, restore_t), (_tid, save_t) in \
                    self.save_restore.verified.items():
                redirect.setdefault(tid, {})[restore_t] = save_t
        self._redirect = redirect
        #: Per-thread cumulative retire counts at each window boundary:
        #: ``window_of`` is one bisect against this.
        self._bnd_tindex = {
            tid: [c.get(tid, 0) for c in self._bnd_counts]
            for tid in self._pcs}
        self._prepared = True

    def _merge(self) -> None:
        """Replicates :func:`~repro.slicing.global_trace._merge_columnar`
        over the scaffold's pc streams — identical emission order, so
        every gpos here equals the materialized pipeline's gpos."""
        pcs = self._pcs
        incoming: Dict[Instance, list] = {}
        for edge in self.pinball.mem_order:
            from_tid, from_tindex, to_tid, to_tindex = (
                edge[0], edge[1], edge[2], edge[3])
            incoming.setdefault((to_tid, to_tindex), []).append(
                (from_tid, from_tindex))
        tids = sorted(pcs)
        cursor = {tid: 0 for tid in tids}
        lengths = {tid: len(pcs[tid]) for tid in tids}
        total = sum(lengths.values())
        # 32-bit columns: positions/tindexes are bounded by the region's
        # step count, which sits far under 2**31 for anything the ddg
        # engine could materialize either.
        order_tids = array("h")
        order_tindexes = array("i")
        gpos = {tid: array("i", bytes(4 * lengths[tid])) for tid in tids}
        current = 0
        stalled = 0
        while len(order_tids) < total:
            tid = tids[current]
            emitted_here = 0
            length = lengths[tid]
            col = gpos[tid]
            while cursor[tid] < length:
                position = cursor[tid]
                if incoming:
                    deps = incoming.get((tid, position))
                    if deps is not None and any(
                            cursor[from_tid] <= from_tindex
                            for from_tid, from_tindex in deps):
                        break
                col[position] = len(order_tids)
                order_tids.append(tid)
                order_tindexes.append(position)
                cursor[tid] = position + 1
                emitted_here += 1
            if emitted_here:
                stalled = 0
            else:
                stalled += 1
                if stalled >= len(tids):
                    raise GlobalTraceError(
                        "access-order edges form a cycle; remaining "
                        "cursors: %r" % cursor)
            current = (current + 1) % len(tids)
        self._order_tids = order_tids
        self._order_tindexes = order_tindexes
        self._gpos = gpos

    def _offline_pass(self) -> None:
        """One pass per thread over the pc stream: replicate
        :class:`~repro.slicing.control_dep.ControlDepTracker` (frame ids
        simulated from the captured initial state, branch region ends
        consumed positionally) and build the per-(tid, register)
        ascending-tindex definition lists."""
        sink = self._sink
        plans = self._plans
        cds: Dict[int, array] = {}
        reg_defs: Dict[int, Dict[str, array]] = {}
        for tid, col in self._pcs.items():
            ends = sink.br_end[tid]
            flags = sink.sys_flag[tid]
            frames_init, next_id = self._init_frames.get(tid, ((0,), 1))
            frames = list(frames_init)
            stack: List[list] = []   # [frame_id, inst_tindex, end_addr]
            cd = array("i")
            defs: Dict[str, array] = {}
            bi = 0
            si = 0
            for tindex, pc in enumerate(col):
                _line, _func, rdefs, _ruses, klass = plans[pc]
                frame = frames[-1] if frames else -1
                while (stack and stack[-1][0] == frame
                       and stack[-1][2] == pc):
                    stack.pop()
                cd.append(stack[-1][1] if stack else -1)
                if klass == _PLAIN:
                    pass
                elif klass == _BRANCH:
                    end = ends[bi]
                    bi += 1
                    if end != _END_NO_TARGETS:
                        if (stack and stack[-1][0] == frame
                                and stack[-1][2] == end):
                            stack[-1] = [frame, tindex, end]
                        else:
                            stack.append([frame, tindex, end])
                elif klass == _CALL:
                    callee = next_id
                    next_id += 1
                    frames.append(callee)
                    stack.append([callee, tindex, _END_NONE])
                elif klass == _RET:
                    while stack and stack[-1][0] == frame:
                        stack.pop()
                    if frames:
                        frames.pop()
                else:   # _SYS: r0 def present iff a result was written
                    if flags[si]:
                        d = defs.get("r0")
                        if d is None:
                            d = defs["r0"] = array("i")
                        d.append(tindex)
                    si += 1
                    continue
                for name in rdefs:
                    d = defs.get(name)
                    if d is None:
                        d = defs[name] = array("i")
                    d.append(tindex)
            cds[tid] = cd
            reg_defs[tid] = defs
        self._cd = cds
        self._reg_defs = reg_defs

    # -- window scans ------------------------------------------------------

    def _window_of(self, tid: int, tindex: int) -> int:
        return bisect_right(self._bnd_tindex[tid], tindex) - 1

    def _ensure_scanned(self, lo: int, hi: int) -> None:
        """Scan unscanned windows in ``[lo, hi)``, grouping consecutive
        ones into single resume passes."""
        windows = self._windows
        w = lo
        while w < hi:
            if windows[w].scanned:
                w += 1
                continue
            run_end = w + 1
            while run_end < hi and not windows[run_end].scanned:
                run_end += 1
            self._scan_range(w, run_end)
            w = run_end

    def _scan_range(self, wa: int, wb: int) -> None:
        """One resume pass replaying windows ``[wa, wb)`` with the mem
        selective table armed, then distribute rows to their windows."""
        steps = self._bounds[wb] - self._bounds[wa]
        with OBS.span("reexec.pass"):
            machine = self._resume(wa)
            machine.set_selective(self._mem_table)
            remaining = steps
            while remaining > 0:
                result = machine.run(max_steps=remaining)
                if result.steps == 0:
                    break
                remaining -= result.steps
            machine.set_selective(None)
        replayed = steps - max(0, remaining)
        rows = self._mem_sink.rows
        self._mem_sink.rows = []
        self.passes += 1
        self.window_steps += replayed
        self.watch_hits += len(rows)
        if OBS.enabled:
            OBS.add("reexec.passes", 1)
            OBS.add("reexec.window_steps", replayed)
            OBS.add("reexec.watch_hits", len(rows))

        windows = self._windows
        bnd = self._bnd_tindex
        gpos = self._gpos
        for tid, tindex, mdefs, muses in rows:
            window = windows[bisect_right(bnd[tid], tindex) - 1]
            if muses:
                # Only the use lists are consulted per instance later
                # (defs go into the per-address columns right here), and
                # a missing entry already reads as "no uses".
                window.rows[(tid, tindex)] = muses
            if mdefs:
                g = gpos[tid][tindex]
                defs = window.defs
                for addr in mdefs:
                    lst = defs.get(addr)
                    if lst is None:
                        defs[addr] = array("i", (g,))
                    else:
                        lst.append(g)
        for w in range(wa, wb):
            windows[w].scanned = True

    # -- dependence resolution ---------------------------------------------

    def _chase_reg(self, tid: int, name: str, dp: list, producer_t: int,
                   hi_index: int) -> int:
        """Tindex-space twin of :meth:`DependenceIndex._chase` — for a
        fixed thread the per-register def list ascends in both tindex
        and gpos, so the bisect chain lands on the same definition."""
        key = (tid, name, producer_t)
        cached = self._bypass_memo.get(key)
        if cached is not None:
            return cached
        self.bypassed_edges += 1
        rmap = self._redirect[tid]
        i = hi_index
        while True:
            save_t = rmap[producer_t]
            i = bisect_left(dp, save_t, 0, i) - 1
            if i < 0:
                result = -1
                break
            producer_t = dp[i]
            if producer_t not in rmap:
                result = producer_t
                break
        self._bypass_memo[key] = result
        return result

    def _resolve_reg(self, tid: int, name: str, before_tindex: int) -> int:
        """Latest def of ``(tid, name)`` strictly below ``before_tindex``
        (bypassing verified restores); -1 when unresolved."""
        defs = self._reg_defs.get(tid)
        if defs is None:
            return -1
        dp = defs.get(name)
        if not dp:
            return -1
        i = bisect_left(dp, before_tindex) - 1
        if i < 0:
            return -1
        producer_t = dp[i]
        if self._prune:
            rmap = self._redirect.get(tid)
            if rmap and producer_t in rmap:
                return self._chase_reg(tid, name, dp, producer_t, i)
        return producer_t

    def _resolve_mem_use(self, addr: int, use_gpos: int, window: int)\
            -> int:
        """Latest def of ``addr`` strictly below ``use_gpos``, for a use
        *in* ``window`` (already scanned).  Per-address accesses are
        totally ordered consistently in time and gpos (program order
        within a thread, recorded access-order edges across threads), so
        the nearest earlier window containing any def of ``addr`` holds
        the latest one.

        The scaffold's per-window written-address sets say which window
        that is without re-replaying anything: the walk is pure set
        membership, and only the window that actually holds the producer
        gets scanned.  An address in no set resolves to "unresolved"
        immediately — the producer predates the region.  Without the
        directory, a read of far-away state (setup-phase writes, or
        pre-region values) forced a re-replay of every window in
        between just to locate — or rule out — the def."""
        lst = self._windows[window].defs.get(addr)
        if lst:
            j = bisect_left(lst, use_gpos) - 1
            if j >= 0:
                return lst[j]
        window_written = self._window_written
        for wi in range(window - 1, -1, -1):
            if addr in window_written[wi]:
                self._ensure_scanned(wi, wi + 1)
                lst = self._windows[wi].defs.get(addr)
                if lst:
                    return lst[-1]
        return -1

    def _resolve_mem_at(self, addr: int, before_gpos: int) -> int:
        """Latest def of ``addr`` strictly below gpos ``before_gpos``
        with no window hint (location queries): walk from the *last*
        window backwards — per-address defs ascend across windows, so
        the first window whose earliest def sits below the bound holds
        the answer.  The written-address directory restricts the walk
        (and the scans) to windows that actually wrote ``addr``."""
        windows = self._windows
        window_written = self._window_written
        for wi in range(len(windows) - 1, -1, -1):
            if addr not in window_written[wi]:
                continue
            self._ensure_scanned(wi, wi + 1)
            lst = windows[wi].defs.get(addr)
            if lst and lst[0] < before_gpos:
                j = bisect_left(lst, before_gpos) - 1
                if j >= 0:
                    return lst[j]
        return -1

    def _resolve(self, loc: Location, before: int) -> int:
        """Gpos-space location resolution, matching
        :meth:`DependenceIndex._resolve` result-for-result."""
        if loc[0] == "r":
            _kind, tid, name = loc
            arr = self._gpos.get(tid)
            if arr is None:
                return -1
            producer_t = self._resolve_reg(
                tid, name, bisect_left(arr, before))
            if producer_t < 0:
                return -1
            return arr[producer_t]
        return self._resolve_mem_at(loc[1], before)

    # -- partial DDG nodes -------------------------------------------------

    def _node_detail(self, g: int) -> tuple:
        detail = self._details.get(g)
        if detail is not None:
            return detail
        tid = self._order_tids[g]
        tindex = self._order_tindexes[g]
        inst = (tid, tindex)
        pc = self._pcs[tid][tindex]
        line, func, _rdefs, ruses, _klass = self._plans[pc]
        node = SliceNode(tid, tindex, pc, line, func, None)
        gpos = self._gpos
        # Edges are stored columnar — predecessor gpos plus the dependence
        # location (None marks the control edge) — and expanded into the
        # ddg-shaped row tuples only for nodes that land in a materialized
        # slice (see _slice).  Storing the expanded rows per node tripled
        # the partial DDG's footprint for nothing: the pred gpos already
        # names the producer instance.
        locs: List[Optional[tuple]] = []
        preds: List[int] = []
        missing: List[tuple] = []
        intern = self._loc_intern.setdefault
        for name in ruses:
            producer_t = self._resolve_reg(tid, name, tindex)
            loc = ("r", tid, name)
            loc = intern(loc, loc)
            if producer_t < 0:
                missing.append(loc)
                continue
            locs.append(loc)
            preds.append(gpos[tid][producer_t])
        if self._memop[pc]:
            window = self._window_of(tid, tindex)
            self._ensure_scanned(window, window + 1)
            muses = self._windows[window].rows.get(inst, _NO_PAIRS)
            for addr in muses:
                p = self._resolve_mem_use(addr, g, window)
                loc = ("m", addr)
                loc = intern(loc, loc)
                if p < 0:
                    missing.append(loc)
                    continue
                locs.append(loc)
                preds.append(p)
        cd_t = self._cd[tid][tindex]
        if cd_t >= 0:
            locs.append(None)
            preds.append(gpos[tid][cd_t])
        mlocs = tuple(missing) if missing else None
        detail = self._details[g] = (inst, node, tuple(locs), mlocs,
                                     array("i", preds))
        self.node_count += 1
        self.edge_count += len(preds)
        if OBS.enabled:
            OBS.add("reexec.partial_nodes", 1)
            OBS.add("reexec.partial_edges", len(preds))
        return detail

    def _closure(self, start: int) -> frozenset:
        """Reachable gpos set from ``start``, growing the partial DDG as
        it walks; memo behavior replicates the ddg engine's."""
        memo = self._closure_memo
        cached = memo.get(start)
        if cached is not None:
            memo.move_to_end(start)
            self.memo_hits += 1
            return frozenset(cached)
        self.memo_misses += 1
        node_detail = self._node_detail
        visited = set()
        add = visited.add
        stack = [start]
        pop = stack.pop
        extend = stack.extend
        while stack:
            g = pop()
            if g in visited:
                continue
            if g != start:
                fragment = memo.get(g)
                if fragment is not None:
                    memo.move_to_end(g)
                    self.memo_hits += 1
                    visited.update(fragment)
                    continue
            add(g)
            extend(node_detail(g)[4])
        result = frozenset(visited)
        size = self.options.closure_memo_size
        if size:
            # Memoized fragments live as sorted 32-bit arrays — the memo
            # can hold region-scale closures, and a frozenset of boxed
            # ints costs ~10x the bytes of the packed column.
            memo[start] = array("i", sorted(visited))
            if len(memo) > size:
                memo.popitem(last=False)
        return result

    # -- queries -----------------------------------------------------------

    def gpos_of(self, instance: Instance) -> int:
        """Global position; same error contract as the columnar store
        (KeyError for unknown tids, IndexError for bad tindexes)."""
        self.prepare()
        arr = self._gpos[instance[0]]
        tindex = instance[1]
        if not 0 <= tindex < len(arr):
            raise IndexError(tindex)
        return arr[tindex]

    def slice(self, criterion: Instance,
              locations: Optional[Sequence[Location]] = None)\
            -> DynamicSlice:
        """Backward slice from ``criterion`` — same contract and, stats
        aside, same bytes as :meth:`DependenceIndex.slice`."""
        self.prepare()
        criterion = (criterion[0], criterion[1])
        loc_key = (None if locations is None
                   else tuple(tuple(loc) for loc in locations))
        key = (criterion, loc_key)
        cache_size = self.options.slice_cache_size
        if cache_size:
            cached = self._slice_cache.get(key)
            if cached is not None:
                self._slice_cache.move_to_end(key)
                self.cache_hits += 1
                OBS.add("slicing.slice_cache_hits", 1)
                return cached
        self.cache_misses += 1

        crit_gpos = self.gpos_of(criterion)
        hits_before = self.memo_hits
        misses_before = self.memo_misses
        members = set(self._closure(crit_gpos))

        extra_edges: List[Tuple[int, Location]] = []
        unresolved_locs = set()
        if locations is not None:
            for loc in locations:
                loc = tuple(loc)
                producer = self._resolve(loc, crit_gpos + 1)
                if producer < 0:
                    unresolved_locs.add(loc)
                else:
                    extra_edges.append((producer, loc))
                    if producer not in members:
                        members |= self._closure(producer)

        nodes: Dict[Instance, SliceNode] = {}
        edges: List[tuple] = []
        node_detail = self._node_detail
        expanded = self._expanded
        order_tids = self._order_tids
        order_tindexes = self._order_tindexes
        for g in sorted(members):
            inst, node, locs, mlocs, preds = node_detail(g)
            nodes[inst] = node
            rows = expanded.get(g)
            if rows is None:
                # Predecessors are members too (a closure is closed), so
                # their detail insts already exist — reuse them instead
                # of allocating a fresh tuple per edge, and release this
                # node's loc column now that the rows carry the locs.
                rows = expanded[g] = [
                    (inst, node_detail(p)[0],
                     "data" if loc is not None else "control", loc)
                    for loc, p in zip(locs, preds)]
                self._details[g] = (inst, node, None, mlocs, preds)
            edges.extend(rows)
            if mlocs:
                unresolved_locs.update(mlocs)
        crit_inst = (order_tids[crit_gpos], order_tindexes[crit_gpos])
        for producer, loc in extra_edges:
            edges.append((crit_inst,
                          (order_tids[producer], order_tindexes[producer]),
                          "data", loc))

        stats = {
            "engine": "reexec",
            "nodes": len(nodes),
            "edges": len(edges),
            "unresolved_locations": len(unresolved_locs),
            "closure_memo_hits": self.memo_hits - hits_before,
        }
        if OBS.enabled:
            OBS.add("slicing.bfs_visited_nodes", len(members))
            OBS.add("slicing.memo_hits", self.memo_hits - hits_before)
            OBS.add("slicing.memo_misses",
                    self.memo_misses - misses_before)
            OBS.add("slicing.edges_walked", len(edges))
        result = DynamicSlice(crit_inst, nodes, edges, stats)
        if cache_size:
            self._slice_cache[key] = result
            if len(self._slice_cache) > cache_size:
                self._slice_cache.popitem(last=False)
        return result

    # -- criterion helpers (SlicingSession delegation) ---------------------

    def last_instance_at_line(self, line: int,
                              tid: Optional[int] = None) -> Instance:
        self.prepare()
        line_best, line_tid_best = self._line_indexes()
        best = (line_best.get(line) if tid is None
                else line_tid_best.get((line, tid)))
        if best is None:
            raise ValueError("line %d was never executed%s" % (
                line, "" if tid is None else " by tid %d" % tid))
        return best[1]

    def _line_indexes(self) -> tuple:
        if self._crit_lines is None:
            line_best: Dict[int, tuple] = {}
            line_tid_best: Dict[tuple, tuple] = {}
            lines = self._line_by_pc
            for tid in sorted(self._pcs):
                col = self._pcs[tid]
                gcol = self._gpos[tid]
                for tindex, pc in enumerate(col):
                    line = lines[pc]
                    if line is None:
                        continue
                    g = gcol[tindex]
                    current = line_best.get(line)
                    if current is None or g > current[0]:
                        line_best[line] = (g, (tid, tindex))
                    key = (line, tid)
                    current = line_tid_best.get(key)
                    if current is None or g > current[0]:
                        line_tid_best[key] = (g, (tid, tindex))
            self._crit_lines = (line_best, line_tid_best)
        return self._crit_lines

    def last_write_to_global(self, name: str,
                             tid: Optional[int] = None) -> Instance:
        var = self.program.globals.get(name)
        if var is None:
            raise ValueError("unknown global %r" % name)
        self.prepare()
        addrs = [a for a in range(var.addr, var.addr + max(1, var.size))
                 if a in self._written]
        if not addrs:
            raise ValueError("global %r was never written" % name)
        windows = self._windows
        order_tids = self._order_tids
        best_g = -1
        # Different addresses are not mutually gpos-ordered across
        # windows, so every window *writing the variable* is consulted
        # (each at most once per session — scans persist); the directory
        # skips the rest.
        window_written = self._window_written
        for wi in range(len(windows) - 1, -1, -1):
            wset = window_written[wi]
            if not any(a in wset for a in addrs):
                continue
            self._ensure_scanned(wi, wi + 1)
            defs = windows[wi].defs
            for addr in addrs:
                lst = defs.get(addr)
                if not lst:
                    continue
                if tid is None:
                    g = lst[-1]
                    if g > best_g:
                        best_g = g
                else:
                    for g in reversed(lst):
                        if order_tids[g] == tid:
                            if g > best_g:
                                best_g = g
                            break
        if best_g < 0:
            raise ValueError("global %r was never written" % name)
        return (order_tids[best_g], self._order_tindexes[best_g])

    def last_reads(self, count: int) -> List[Instance]:
        """The last ``count`` memory-reading instances, newest first —
        derived from the scaffold alone (only LD/POP/RET ever read
        memory, a static property of the pc)."""
        self.prepare()
        if count <= 0:
            return []
        reads_mem = self._reads_mem
        pcs = self._pcs
        order_tids = self._order_tids
        order_tindexes = self._order_tindexes
        out: List[Instance] = []
        for g in range(len(order_tids) - 1, -1, -1):
            tid = order_tids[g]
            tindex = order_tindexes[g]
            if reads_mem[pcs[tid][tindex]]:
                out.append((tid, tindex))
                if len(out) >= count:
                    break
        return out

    # -- reporting ---------------------------------------------------------

    @property
    def ddg(self) -> "ReexecIndex":
        """Facade parity with :class:`BackwardSlicer`: the partial DDG
        *is* this index (grown per query instead of compiled up front)."""
        return self

    @property
    def trace_records(self) -> int:
        """Scaffold-counted retires (what a full trace would hold)."""
        return sum(len(col) for col in self._pcs.values())

    def threads(self) -> List[int]:
        return sorted(self._pcs)

    def index_stats(self) -> dict:
        """Same key shape as :meth:`BackwardSlicer.index_stats`, plus the
        re-execution counters."""
        return {
            "slice_index": "reexec",
            "ddg_build_time_sec": self.build_time,
            "edge_count": self.edge_count,
            "memo_hits": self.memo_hits + self.cache_hits,
            "memo_misses": self.memo_misses + self.cache_misses,
            "slice_cache_hits": self.cache_hits,
            "closure_memo_hits": self.memo_hits,
            "bypassed_edges": self.bypassed_edges,
            "reexec_passes": self.passes,
            "reexec_window_steps": self.window_steps,
            "reexec_watch_hits": self.watch_hits,
            "reexec_windows": len(self._windows),
            "reexec_windows_scanned": sum(
                1 for w in self._windows if w.scanned),
            "partial_nodes": self.node_count,
            "partial_edges": self.edge_count,
        }
