"""Region-sharded parallel tracing (ISSUE 5's tentpole).

Trace collection is the expensive phase of a slicing session: the whole
recorded region is re-executed with the slicing pintool attached, one
Python-level event per retired instruction.  Deterministic replay makes
that phase *partitionable*: any step of the recorded schedule is a valid
cut point, and the machine state at the cut — captured exactly the way
:mod:`repro.debugger.checkpoints` captures checkpoints — is a valid
pinball snapshot.  This module exploits that:

1. **Scout** — one *untraced* replay of the region pinball (the
   predecoded engine's fast path, no events, several times faster than
   traced replay) that stops at ``K - 1`` planned step boundaries and
   captures, per boundary: the architectural snapshot, the syscall-log
   consumption cursors, the step clock (``global_seq``) and each
   thread's retired-instruction count.
2. **Window pinballs** — each contiguous window ``[b_i, b_{i+1})`` of
   the schedule becomes a self-contained pinball (``meta.kind ==
   "region_shard"``): boundary snapshot, RLE schedule slice, per-thread
   syscall-log suffix.  Window 0 needs no scouting (its start state *is*
   the region pinball's) and is dispatched before the scout even runs;
   every later window is dispatched the moment its boundary is captured,
   so tracing overlaps the scout.
3. **Parallel trace** — a :class:`~repro.serve.workers.WorkerPool` of
   ``min(shards, cpus)`` processes replays the windows concurrently.
   Two worker modes exist, picked per program:

   * **Columns mode** (the fast path, ``plan.mode == "columns"``): each
     worker runs a *full* seam-aware :class:`TraceCollector` over its
     window and ships finished columnar shards (statics pool + row
     indices + dynamic tuples, ``marshal``-encoded) with global thread
     indices — the boundary metadata seeds ``global_seq`` and each
     thread's retired-instruction count, and frame ids restore from the
     snapshot, so worker-local analyses already speak the serial
     numbering.  The only thing a worker *cannot* know is state opened
     before its window: control regions still on the stack and
     save/restore frames still open at the seam.  Whenever a worker
     analysis would have consulted that pre-window state it records a
     compact *seam event* instead; the parent replays those events
     against the live def maps it carries across seams — the open
     control-region frontier (patching the few rows whose
     control-dependence parent lives in an earlier window) and the open
     save map (verifying save/restore pairs that straddle a seam) —
     then appends the worker's final open state as the carry into the
     next window.
   * **Stitch mode** (``plan.mode == "stitch"``): with CFG refinement
     enabled *and* indirect jumps present, control-dependence regions
     depend on the refinement order across the whole run — worker-local
     analysis would see an unrefined CFG.  Workers then fall back to
     recording portable :class:`WindowTracer` rows and the parent
     drives a real collector through them serially (analysis is not
     parallelized, but the traced replay still is).
4. **Stitch/absorb** — the parent drains the windows *in order*
   (window ``i`` is processed while windows ``i+1..`` are still being
   traced), extending its columnar store and carrying the seam state —
   open control regions, open save/restore frames — across window
   boundaries.

The result is **byte-identical** to the serial build: same per-thread
columns, same control-dependence parents, same verified save/restore
pairs, same CFG refinements — hence the same global trace, the same DDG
and the same slices (``tests/slicing/test_shard_differential.py``).
Sharding changes *when* work happens, never the result.

Fallback gates (:func:`trace_sharded` returns ``None`` and the session
runs the serial pipeline): ``shards <= 1``, row-store layout
(``columnar=False``), ``record_values=False`` (the stitch rebuilds
save/restore events from recorded values), slice pinballs with
exclusions, regions too small to be worth the process overhead, daemonic
parents (a serve worker spawned with ``daemon=True`` cannot fork
children), and any worker-pool failure mid-flight.
"""

from __future__ import annotations

import marshal
import os
from array import array
from bisect import bisect_right
from itertools import accumulate
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing as mp

from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.obs.registry import OBS
from repro.pinplay.format_v2 import capture_state
from repro.pinplay.pinball import Pinball
from repro.pinplay.replayer import (SyscallInjector, best_checkpoint,
                                    replay_machine, resume_machine)
from repro.slicing.control_dep import ControlDepTracker, _Region
from repro.slicing.options import SliceOptions
from repro.slicing.save_restore import SaveRestoreDetector
from repro.slicing.tracer import TraceCollector
from repro.vm.hooks import InstrEvent, Tool
from repro.vm.machine import Machine, MachineSnapshot, RunResult
from repro.vm.scheduler import RecordedScheduler

__all__ = [
    "MIN_WINDOW_STEPS",
    "ShardPlan",
    "WindowTracer",
    "plan_boundaries",
    "schedule_window",
    "trace_sharded",
]

#: Smallest window worth a worker process; below ``shards * MIN_WINDOW_STEPS``
#: total steps the session silently runs the serial pipeline instead.
MIN_WINDOW_STEPS = 8

_SYS_R0_DEF = ("r0",)
_NO_REGS = ()


# -- schedule slicing ---------------------------------------------------------

def schedule_window(schedule: Sequence[Tuple[int, int]],
                    start: int, count: int,
                    prefix: Optional[Sequence[int]] = None
                    ) -> List[Tuple[int, int]]:
    """The RLE sub-schedule covering steps ``[start, start + count)``.

    ``prefix`` is the cumulative step count per RLE run (precomputed by
    the caller when slicing many windows of one schedule); the resume
    run is found by binary search, the same prefix-sum idiom
    :class:`~repro.debugger.checkpoints.CheckpointManager` uses for
    rewinds.
    """
    if count <= 0:
        return []
    if prefix is None:
        prefix = list(accumulate(c for _tid, c in schedule))
    index = bisect_right(prefix, start)
    if index >= len(schedule):
        return []
    consumed_before = prefix[index - 1] if index else 0
    offset = start - consumed_before
    out: List[Tuple[int, int]] = []
    remaining = count
    while index < len(schedule) and remaining > 0:
        tid, run = schedule[index]
        available = run - offset
        take = available if available < remaining else remaining
        if take > 0:
            out.append((tid, take))
            remaining -= take
        offset = 0
        index += 1
    return out


def plan_boundaries(total_steps: int, shards: int) -> List[int]:
    """Evenly spaced interior cut points for ``shards`` windows."""
    bounds = []
    for i in range(1, shards):
        b = total_steps * i // shards
        if 0 < b < total_steps and (not bounds or b > bounds[-1]):
            bounds.append(b)
    return bounds


class ShardPlan:
    """Diagnostics of one sharded build (exposed as session stats)."""

    __slots__ = ("shards", "boundaries", "windows", "rows", "fallback",
                 "mode")

    def __init__(self, shards: int, boundaries: List[int]) -> None:
        self.shards = shards
        self.boundaries = list(boundaries)
        self.windows: List[dict] = []
        self.rows = 0
        self.fallback: Optional[str] = None
        #: "columns" (workers run the full seam-aware collector) or
        #: "stitch" (portable rows, serial parent-side analysis — the
        #: refinement-sensitive fallback).  None until decided.
        self.mode: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "shards": self.shards,
            "boundaries": list(self.boundaries),
            "windows": list(self.windows),
            "rows": self.rows,
            "fallback": self.fallback,
            "mode": self.mode,
        }


# -- worker side --------------------------------------------------------------

class WindowTracer(Tool):
    """Per-window row recorder (the shard worker's pintool).

    Records one flat row per retired instruction, in event-arrival
    order::

        (tid, addr, rdefs, ruses, mdefs, muses, values, frame_id, extra)

    ``rdefs``/``ruses`` are the deduped, ``sp``-filtered register
    def/use tuples exactly as :meth:`TraceCollector._append_columnar`
    would intern them (cached per pc; the SYS ``r0`` def picked per
    event); ``values`` is the written-values map; ``extra`` carries the
    one execution-time fact the stitch cannot recompute statically —
    the observed target for ``ijmp``, the callee frame id for
    ``call``/``icall``, the loaded value for ``pop`` (save/restore
    verification needs it).  Tuples are interned per window so the
    pickled payload stays compact and the stitch can canonicalize via
    an identity memo.
    """

    wants_instr_events = True
    retains_instr_events = False   # rows copy what they need

    def __init__(self, options: SliceOptions) -> None:
        self._track_sp = options.track_stack_pointer
        self._record_values = options.record_values
        self.rows: list = []
        self._machine = None
        #: pc -> (rdefs | None-for-SYS, ruses)
        self._reg_cache: Dict[int, tuple] = {}
        self._intern: dict = {}

    def on_start(self, machine) -> None:
        self._machine = machine

    def on_instr(self, event: InstrEvent) -> None:
        instr = event.instr
        op = instr.op
        addr = event.addr
        interner = self._intern

        cached = self._reg_cache.get(addr)
        if cached is None:
            track_sp = self._track_sp
            ruses = tuple(dict.fromkeys(
                name for name, _ in event.reg_reads
                if track_sp or name != "sp"))
            ruses = interner.setdefault(ruses, ruses)
            if op == Opcode.SYS:
                cached = (None, ruses)
            else:
                rdefs = tuple(dict.fromkeys(
                    name for name, _ in event.reg_writes
                    if track_sp or name != "sp"))
                rdefs = interner.setdefault(rdefs, rdefs)
                cached = (rdefs, ruses)
            self._reg_cache[addr] = cached
        rdefs, ruses = cached
        if rdefs is None:   # SYS: r0 def present iff a result was written
            rdefs = _SYS_R0_DEF if event.reg_writes else _NO_REGS

        mem_writes = event.mem_writes
        if not mem_writes:
            mdefs = _NO_REGS
        elif len(mem_writes) == 1:
            mdefs = (mem_writes[0][0],)
            mdefs = interner.setdefault(mdefs, mdefs)
        else:
            mdefs = tuple(dict.fromkeys(a for a, _ in mem_writes))
            mdefs = interner.setdefault(mdefs, mdefs)
        mem_reads = event.mem_reads
        if not mem_reads:
            muses = _NO_REGS
        elif len(mem_reads) == 1:
            muses = (mem_reads[0][0],)
            muses = interner.setdefault(muses, muses)
        else:
            muses = tuple(dict.fromkeys(a for a, _ in mem_reads))
            muses = interner.setdefault(muses, muses)

        values = None
        if self._record_values:
            values = {}
            for name, value in event.reg_writes:
                values[name] = value
            for addr_w, value in mem_writes:
                values[addr_w] = value

        extra = None
        if op == Opcode.IJMP:
            extra = int(event.reg_reads[0][1])
        elif op == Opcode.CALL or op == Opcode.ICALL:
            frames = self._machine.threads[event.tid].frames
            extra = frames[-1].frame_id if frames else None
        elif op == Opcode.POP and mem_reads:
            extra = mem_reads[0][1]

        self.rows.append((event.tid, addr, rdefs, ruses, mdefs, muses,
                          values, event.frame_id, extra))


def _trace_window(raw: bytes, program: Program, options: SliceOptions,
                  engine: Optional[str]) -> dict:
    """Replay one window pinball with a :class:`WindowTracer` attached."""
    pinball = Pinball.from_bytes(raw, source="<region_shard>")
    tracer = WindowTracer(options)
    machine = replay_machine(pinball, program, tools=[tracer], engine=engine)
    meta = pinball.meta
    # Two counters live outside the architectural snapshot and must be
    # seeded so window-relative replay looks exactly like the serial
    # replay passing through: the step clock (sleep deadlines are
    # absolute in global_seq, and sleeper fast-forwards can push it past
    # the step count) and each thread's retired-instruction count.
    machine.global_seq = int(meta.get("global_seq", 0))
    for tid_text, count in (meta.get("base_instr_counts") or {}).items():
        thread = machine.threads.get(int(tid_text))
        if thread is not None:
            thread.instr_count = int(count)
    result = machine.run(max_steps=pinball.total_steps)
    return {
        "window": int(meta.get("window", 0)),
        "rows": tracer.rows,
        "steps": result.steps,
        "retired": result.retired,
        "reason": result.reason,
    }


# -- worker side, columns mode ------------------------------------------------
#
# The worker runs a full TraceCollector with *seam-aware* analyses: the
# trackers behave exactly like the serial ones over in-window state and
# record a seam event whenever the serial run would have consulted
# pre-window state (which only the parent has).  Event vocabulary:
#
# control events, per tid and in retirement order
#   ``(tindex, addr, frame_id, kind, arg, patch)`` with ``kind`` one of
#   0=plain, 1=branch (arg = region end addr), 2=call, 3=ret.
#   ``patch=True``: the worker-local stack was empty when this row's
#   control parent was computed, so the true parent (if any) is the top
#   of the parent's carried stack — after continuing the close-loop into
#   it — and the row's ``cd`` must be patched.  ``patch=False`` (only
#   for ``ret``): the parent was local and correct, but the pop-loop
#   emptied the local stack, so the carried stack may still hold regions
#   of the returning (pre-window) frame to pop.
#
# save/restore events, per tid and in retirement order
#   ``("pop", tindex, frame_id, reg, stack_addr, value)`` — a candidate
#   restore whose save is not open locally; the parent matches it
#   against the carried open-save map.
#   ``("ret", frame_id)`` — a pre-window frame exited; the parent drops
#   its carried open saves.
#
# Frames created in-window can have no carried state, so events touching
# only such frames are filtered out worker-side via the per-thread frame
# id watermark captured at window start.


class _SeamControlTracker(ControlDepTracker):
    """Xin-Zhang tracker that logs what it would ask the carried stack."""

    def __init__(self, registry) -> None:
        super().__init__(registry)
        #: tid -> [(tindex, addr, frame_id, kind, arg, patch)]
        self.events: Dict[int, list] = {}
        self.base_frame_ids: Dict[int, int] = {}

    def on_event(self, event: InstrEvent,
                 callee_frame_id: Optional[int]) -> Optional[tuple]:
        tid = event.tid
        frame = event.frame_id
        addr = event.addr
        stack = self._stacks.setdefault(tid, [])

        while (stack and stack[-1].frame_id == frame
               and stack[-1].end_addr == addr):
            stack.pop()
        seam = not stack
        cd = stack[-1].inst if stack else None

        op = event.instr.op
        if op == Opcode.IJMP and not self._ijmp_has_targets(addr):
            op = None
        kind = 0
        arg = None
        if op in (Opcode.BR, Opcode.BRZ, Opcode.IJMP):
            end_addr = self.registry.region_end_addr(addr)
            region = _Region(frame, (tid, event.tindex), end_addr)
            if (stack and stack[-1].frame_id == frame
                    and stack[-1].end_addr == end_addr):
                stack[-1] = region
            else:
                stack.append(region)
            kind = 1
            arg = end_addr
        elif op in (Opcode.CALL, Opcode.ICALL):
            stack.append(_Region(
                callee_frame_id if callee_frame_id is not None else frame,
                (tid, event.tindex), None))
            kind = 2
        elif op == Opcode.RET:
            while stack and stack[-1].frame_id == frame:
                stack.pop()
            kind = 3

        if seam:
            self.events.setdefault(tid, []).append(
                (event.tindex, addr, frame, kind, arg, True))
        elif (kind == 3 and not stack
              and frame < self.base_frame_ids.get(tid, 0)):
            # The RET emptied the local stack mid-pop-loop: the serial
            # loop would keep popping this frame's regions off the
            # carried stack (possible only for pre-window frames).
            self.events.setdefault(tid, []).append(
                (event.tindex, addr, frame, 3, None, False))
        return cd


class _SeamSaveRestore(SaveRestoreDetector):
    """Save/restore detector that defers cross-seam pairs to the parent."""

    def __init__(self, program: Program, max_save: int) -> None:
        super().__init__(program, max_save)
        #: tid -> [("pop", ...) | ("ret", frame_id)]
        self.events: Dict[int, list] = {}
        self.base_frame_ids: Dict[int, int] = {}

    def on_event(self, event: InstrEvent) -> None:
        if not self.max_save:
            return
        addr = event.addr
        op = event.instr.op
        if addr in self.save_addrs and op == Opcode.PUSH:
            super().on_event(event)      # saves always open locally
        elif addr in self.restore_addrs and op == Opcode.POP:
            if not event.mem_reads:
                return
            reg = event.instr.operands[0].name
            frame_saves = self._open.get((event.tid, event.frame_id))
            if frame_saves and reg in frame_saves:
                super().on_event(event)  # the latest save is in-window
            elif event.frame_id < self.base_frame_ids.get(event.tid, 0):
                stack_addr, value = event.mem_reads[0]
                self.events.setdefault(event.tid, []).append(
                    ("pop", event.tindex, event.frame_id, reg,
                     stack_addr, value))
        elif op == Opcode.RET:
            self._open.pop((event.tid, event.frame_id), None)
            if event.frame_id < self.base_frame_ids.get(event.tid, 0):
                self.events.setdefault(event.tid, []).append(
                    ("ret", event.frame_id))


class _WindowCollector(TraceCollector):
    """A full trace collector with the seam-aware analyses plugged in."""

    def __init__(self, program: Program, options: SliceOptions) -> None:
        super().__init__(program, options)
        self.control = _SeamControlTracker(self.registry)
        if self.save_restore.max_save > 0:
            self.save_restore = _SeamSaveRestore(
                program, self.save_restore.max_save)

    def on_start(self, machine) -> None:
        super().on_start(machine)
        # Frame ids below the watermark belong to pre-window frames; the
        # counters restore from the boundary snapshot, so the numbering
        # is globally consistent with the serial run.
        base = {tid: thread._next_frame_id
                for tid, thread in machine.threads.items()}
        self.control.base_frame_ids = base
        if isinstance(self.save_restore, _SeamSaveRestore):
            self.save_restore.base_frame_ids = base


def _encode_columns(store) -> dict:
    """{tid: (statics pool, row indices as bytes, dyns list)}.

    Statics are interned per worker store, so the pool (unique tuples)
    plus an ``array('I')`` of row indices round-trips them through
    ``marshal`` — which does not preserve object sharing — without
    exploding the payload.
    """
    out = {}
    for tid, cols in store._columns.items():
        pool: list = []
        index_of: Dict[int, int] = {}
        idx = array("I")
        idx_append = idx.append
        for static in cols.statics:
            key = id(static)
            i = index_of.get(key)
            if i is None:
                i = index_of[key] = len(pool)
                pool.append(static)
            idx_append(i)
        out[tid] = (pool, idx.tobytes(), cols.dyns)
    return out


def _trace_window_columns(raw: bytes, program: Program,
                          options: SliceOptions,
                          engine: Optional[str]) -> dict:
    """Replay one window with a full seam-aware collector attached."""
    pinball = Pinball.from_bytes(raw, source="<region_shard>")
    collector = _WindowCollector(program, options)
    machine = replay_machine(pinball, program, tools=[collector],
                             engine=engine)
    meta = pinball.meta
    machine.global_seq = int(meta.get("global_seq", 0))
    for tid_text, count in (meta.get("base_instr_counts") or {}).items():
        thread = machine.threads.get(int(tid_text))
        if thread is not None:
            thread.instr_count = int(count)
    result = machine.run(max_steps=pinball.total_steps)

    control = collector.control
    detector = collector.save_restore
    payload = {
        "columns": _encode_columns(collector.store),
        "control_events": control.events,
        "control_final": {
            tid: [(r.frame_id, r.inst, r.end_addr) for r in stack]
            for tid, stack in control._stacks.items() if stack},
        "sr_events": getattr(detector, "events", {}),
        "sr_open": {key: dict(saves)
                    for key, saves in detector._open.items() if saves},
        "sr_verified": dict(detector.verified),
        "sr_pairs": detector.pair_count,
    }
    return {
        "window": int(meta.get("window", 0)),
        "blob": marshal.dumps(payload),
        "rows": collector.store.total_records(),
        "steps": result.steps,
        "retired": result.retired,
        "reason": result.reason,
    }


def _shard_worker_main(worker_id: int, task_q, result_q,
                       store_root: Optional[str], config: dict) -> None:
    """Worker loop with the :class:`WorkerPool` wire protocol.

    Same ``(worker_id, task_q, result_q, store_root, config)`` signature
    as the debug service's ``_worker_main``; the pool mechanics (bounded
    queue, deadlines, crash respawn) are reused unchanged.
    """
    if config.get("obs"):
        OBS.enable()
    program = config["program"]
    options = config["slice_options"] or SliceOptions()
    engine = config.get("engine")
    while True:
        item = task_q.get()
        if item is None:
            break
        req_id, op, params = item
        try:
            if op == "ping":
                result = {"pong": True, "pid": os.getpid()}
            elif op == "trace_window":
                with OBS.span("shard.window"):
                    result = _trace_window(params["pinball_raw"], program,
                                           options, engine)
            elif op == "trace_window_columns":
                with OBS.span("shard.window"):
                    result = _trace_window_columns(
                        params["pinball_raw"], program, options, engine)
            else:
                raise ValueError("unknown shard worker op %r" % op)
        except BaseException as exc:   # noqa: BLE001 — wire it back
            result_q.put((req_id, worker_id, "error",
                          {"op": op, "type": type(exc).__name__,
                           "message": str(exc)}))
            continue
        result_q.put((req_id, worker_id, "ok", result))


# -- scout --------------------------------------------------------------------

class _Boundary:
    """State captured at one scout stop (cf. ``Checkpoint``)."""

    __slots__ = ("step", "snapshot", "consumed", "global_seq", "instr_counts")

    def __init__(self, step: int, snapshot: dict, consumed: Dict[int, int],
                 global_seq: int, instr_counts: Dict[int, int]) -> None:
        self.step = step
        self.snapshot = snapshot
        self.consumed = consumed
        self.global_seq = global_seq
        self.instr_counts = instr_counts


def _scout_machine(pinball: Pinball, program: Program,
                   engine: Optional[str]
                   ) -> Tuple[Machine, SyscallInjector]:
    """An untraced replay machine with its injector exposed.

    :func:`repro.pinplay.replayer.replay_machine` hides the injector
    behind a closure; the scout needs ``injector.consumed()`` at every
    boundary, so it wires the same parts together itself.
    """
    scheduler = RecordedScheduler(pinball.schedule)
    injector = SyscallInjector(pinball.syscalls)
    machine = Machine.from_snapshot(
        program, MachineSnapshot.from_dict(pinball.snapshot),
        scheduler=scheduler, syscall_injector=injector.inject, engine=engine)
    return machine, injector


def _window_pinball(pinball: Pinball, index: int, start: int, count: int,
                    boundary: Optional[_Boundary],
                    schedule_prefix: Sequence[int]) -> Pinball:
    """Materialize window ``index`` (``[start, start + count)``) as a
    self-contained ``region_shard`` pinball."""
    if boundary is None:                 # window 0: the region's own start
        snapshot = pinball.snapshot
        global_seq = 0
        instr_counts: Dict[int, int] = {}
        syscalls = {tid: list(log) for tid, log in pinball.syscalls.items()}
    else:
        snapshot = boundary.snapshot
        global_seq = boundary.global_seq
        instr_counts = boundary.instr_counts
        syscalls = {tid: list(log[boundary.consumed.get(tid, 0):])
                    for tid, log in pinball.syscalls.items()}
    return Pinball(
        program_name=pinball.program_name,
        snapshot=snapshot,
        schedule=schedule_window(pinball.schedule, start, count,
                                 prefix=schedule_prefix),
        syscalls=syscalls,
        mem_order=(),
        exclusions=(),
        meta={
            "kind": "region_shard",
            "window": index,
            "start_step": start,
            "num_steps": count,
            "global_seq": global_seq,
            "base_instr_counts": {str(tid): int(count_)
                                  for tid, count_ in instr_counts.items()},
        },
        trusted=True,
    )


# -- stitch -------------------------------------------------------------------

def _stitch_window(collector: TraceCollector, program: Program,
                   options: SliceOptions, rows: list,
                   tindex_of: Dict[int, int], columns: Dict[int, tuple],
                   static_cache: dict, stub: InstrEvent) -> None:
    """Drive the collector's analyses/store through one window's rows.

    This reproduces :meth:`TraceCollector.on_instr` exactly, in the
    serial event order — (1) CFG refinement from the observed
    indirect-jump target, (2) control-dependence tracking with the
    callee frame id, (3) the columnar append, (4) save/restore
    verification — with the def/use dedup work already done by the
    worker.  Tuples arrive interned per window; an identity memo maps
    them onto the stitched store's canonical instances.
    """
    store = collector.store
    registry = collector.registry
    detector = collector.save_restore
    instructions = program.instructions
    refine = options.refine_cfg
    observe = registry.observe_indirect_jump
    on_event = collector.control.on_event
    sr_event = detector.on_event
    sr_on = detector.max_save > 0
    save_addrs = detector.save_addrs
    restore_addrs = detector.restore_addrs
    intern = store.intern
    IJMP, CALL, ICALL = Opcode.IJMP, Opcode.CALL, Opcode.ICALL
    RET, PUSH, POP = Opcode.RET, Opcode.PUSH, Opcode.POP
    memo: dict = {}
    memo_get = memo.get

    for tid, addr, rdefs, ruses, mdefs, muses, values, frame_id, extra \
            in rows:
        instr = instructions[addr]
        op = instr.op

        callee_frame_id = None
        if extra is not None:
            if op == IJMP:
                if refine:
                    observe(addr, extra)
            elif op == CALL or op == ICALL:
                callee_frame_id = extra

        tindex = tindex_of.get(tid, 0)
        tindex_of[tid] = tindex + 1
        stub.tid = tid
        stub.tindex = tindex
        stub.addr = addr
        stub.instr = instr
        stub.frame_id = frame_id
        cd = on_event(stub, callee_frame_id)

        # Canonicalize the worker-interned tuples into the stitched
        # store's interner (identity memo: within one pickled window
        # payload, equal tuples are the *same* object).
        key = id(rdefs)
        canon = memo_get(key)
        if canon is None:
            canon = memo[key] = intern(rdefs)
        rdefs = canon
        key = id(ruses)
        canon = memo_get(key)
        if canon is None:
            canon = memo[key] = intern(ruses)
        ruses = canon
        if mdefs:
            key = id(mdefs)
            canon = memo_get(key)
            if canon is None:
                canon = memo[key] = intern(mdefs)
            mdefs = canon
        if muses:
            key = id(muses)
            canon = memo_get(key)
            if canon is None:
                canon = memo[key] = intern(muses)
            muses = canon

        skey = (addr, rdefs)
        static = static_cache.get(skey)
        if static is None:
            static = static_cache[skey] = intern(
                (addr, instr.line, instr.func, rdefs, ruses))

        cols = columns.get(tid)
        if cols is None:
            cframe = store.columns_for(tid)
            cols = columns[tid] = (cframe.statics, cframe.dyns,
                                   cframe.gpos, cframe.cache)
        cols[0].append(static)
        cols[1].append((mdefs, muses, cd, values))
        cols[2].append(-1)
        cols[3].append(None)

        if sr_on and (op == RET
                      or (op == PUSH and addr in save_addrs)
                      or (op == POP and addr in restore_addrs)):
            if op == PUSH:
                stub.mem_writes = (((mdefs[0], values[mdefs[0]]),)
                                   if mdefs else ())
                stub.mem_reads = ()
            elif op == POP:
                stub.mem_reads = ((muses[0], extra),) if muses else ()
                stub.mem_writes = ()
            else:
                stub.mem_writes = ()
                stub.mem_reads = ()
            sr_event(stub)


def _absorb_window(collector: TraceCollector, blob: bytes,
                   carried_stacks: Dict[int, list]) -> int:
    """Fold one columns-mode worker payload into the parent collector.

    1. Extend the columnar store with the shipped per-thread columns
       (statics canonicalized through the parent interner, so a pc
       traced in two windows still shares one tuple).
    2. Replay the control seam events against the carried open-region
       stacks — continuing close-loops across the seam, patching the
       ``cd`` of rows whose controlling instance retired in an earlier
       window, honoring merge-with-top and frame-exit pops — then push
       the worker's final open regions as the carry into the next seam.
    3. Replay the save/restore seam events against the carried open-save
       map (verifying cross-seam pairs exactly like the serial
       detector), merge the worker's locally verified pairs, and carry
       its still-open saves forward.

    Returns the number of rows absorbed.
    """
    store = collector.store
    intern = store.intern
    data = marshal.loads(blob)
    rows = 0

    for tid, (pool, idx_bytes, dyns) in data["columns"].items():
        cols = store.columns_for(tid)
        canon = [intern(static) for static in pool]
        idx = array("I")
        idx.frombytes(idx_bytes)
        cols.statics.extend(map(canon.__getitem__, idx))
        cols.dyns.extend(dyns)
        count = len(dyns)
        cols.gpos.extend([-1] * count)
        cols.cache.extend([None] * count)
        rows += count

    columns = store._columns
    for tid, events in data["control_events"].items():
        stack = carried_stacks.get(tid)
        if not stack:
            # The carried stack only shrinks while replaying events, so
            # an empty carry makes every event for this tid a no-op.
            continue
        dyns_col = columns[tid].dyns
        for tindex, addr, frame, kind, arg, patch in events:
            if patch:
                while (stack and stack[-1][0] == frame
                       and stack[-1][2] == addr):
                    stack.pop()
                if stack:
                    row = dyns_col[tindex]
                    dyns_col[tindex] = (row[0], row[1], stack[-1][1],
                                        row[3])
                if kind == 1:
                    # Merge-with-top across the seam: the worker's fresh
                    # region supersedes a carried region ending at the
                    # same address in the same frame.
                    if (stack and stack[-1][0] == frame
                            and stack[-1][2] == arg):
                        stack.pop()
                elif kind == 3:
                    while stack and stack[-1][0] == frame:
                        stack.pop()
            else:   # RET continuation: finish the frame's pop-loop.
                while stack and stack[-1][0] == frame:
                    stack.pop()
            if not stack:
                break
    for tid, regions in data["control_final"].items():
        carried_stacks.setdefault(tid, []).extend(regions)

    detector = collector.save_restore
    open_map = detector._open
    verified = detector.verified
    for tid, events in data["sr_events"].items():
        for event in events:
            if event[0] == "pop":
                _tag, tindex, frame, reg, stack_addr, value = event
                frame_saves = open_map.get((tid, frame))
                if not frame_saves:
                    continue
                saved = frame_saves.get(reg)
                if saved is None:
                    continue
                save_tindex, save_stack_addr, save_value = saved
                if save_stack_addr == stack_addr and save_value == value:
                    verified[(tid, tindex)] = (tid, save_tindex)
                    detector.pair_count += 1
                    del frame_saves[reg]
            else:   # ("ret", frame_id)
                open_map.pop((tid, event[1]), None)
    verified.update(data["sr_verified"])
    detector.pair_count += data["sr_pairs"]
    for key, saves in data["sr_open"].items():
        open_map.setdefault(key, {}).update(saves)
    return rows


def _has_indirect_jumps(program: Program) -> bool:
    return any(instr.op == Opcode.IJMP for instr in program.instructions)


def _seam_diagnostics(collector: TraceCollector) -> Tuple[int, int]:
    """(open control regions, open save frames) carried across a seam."""
    open_regions = sum(len(stack) for stack
                       in collector.control._stacks.values())
    open_saves = sum(len(saves) for saves
                     in collector.save_restore._open.values())
    return open_regions, open_saves


# -- orchestration ------------------------------------------------------------

def _fallback(plan: ShardPlan, reason: str) -> None:
    plan.fallback = reason
    if OBS.enabled:
        OBS.inc("slicing.shard/fallbacks")


def trace_sharded(pinball: Pinball, program: Program,
                  options: SliceOptions,
                  engine: Optional[str] = None,
                  boundaries: Optional[Sequence[int]] = None,
                  plan_out: Optional[ShardPlan] = None
                  ) -> Optional[Tuple[TraceCollector, Machine, RunResult]]:
    """Build the traced collector for ``pinball`` with region sharding.

    Returns ``(collector, machine, replay_result)`` — drop-in for the
    serial ``TraceCollector`` + :func:`repro.pinplay.replayer.replay`
    pair in :class:`~repro.slicing.api.SlicingSession` — or ``None``
    when a fallback gate fires and the caller should run the serial
    pipeline instead.

    ``boundaries`` overrides the evenly spaced cut points (the
    differential tests use it to park a seam in the middle of a
    save/restore pair or a critical section).  ``plan_out`` receives
    per-window diagnostics.
    """
    plan = plan_out if plan_out is not None else ShardPlan(
        options.shards, [])
    shards = options.shards
    total_steps = pinball.total_steps

    if shards <= 1 and boundaries is None:
        _fallback(plan, "shards<=1")
        return None
    if not options.columnar:
        _fallback(plan, "row-store layout")
        return None
    if not options.record_values:
        _fallback(plan, "record_values=False")
        return None
    if pinball.exclusions:
        _fallback(plan, "slice pinball (exclusions)")
        return None
    if mp.current_process().daemon:
        # A daemonic parent (a serve worker spawned with daemon=True)
        # cannot fork children; the serial pipeline still works.
        _fallback(plan, "daemonic parent process")
        return None
    if boundaries is None:
        if total_steps < shards * MIN_WINDOW_STEPS:
            _fallback(plan, "region too small (%d steps)" % total_steps)
            return None
        bounds = plan_boundaries(total_steps, shards)
    else:
        bounds = sorted({int(b) for b in boundaries
                         if 0 < int(b) < total_steps})
    if not bounds:
        _fallback(plan, "no interior boundaries")
        return None
    plan.boundaries = list(bounds)

    from repro.serve.workers import PoolError, WorkerPool

    # Columns mode parallelizes the analyses too, but worker-local CFG
    # refinement would diverge from the serial refinement order when
    # indirect jumps are present; those programs use stitch mode (the
    # traced replay is still parallel, the analyses run in the parent).
    if options.refine_cfg and _has_indirect_jumps(program):
        plan.mode = "stitch"
        trace_op = "trace_window"
    else:
        plan.mode = "columns"
        trace_op = "trace_window_columns"

    edges = list(bounds) + [total_steps]
    schedule_prefix = list(accumulate(c for _tid, c in pinball.schedule))
    workers = min(len(edges), max(1, os.cpu_count() or 1))
    pool = WorkerPool(
        store_root=None,
        workers=workers,
        queue_limit=len(edges) + 8,
        default_timeout=600.0,
        obs=OBS.enabled,
        slice_options=options,
        worker_target=_shard_worker_main,
        worker_config={"program": program, "engine": engine},
        name="shard",
    )

    try:
        pool.start()
    except (OSError, PoolError) as exc:
        _fallback(plan, "pool start failed: %s" % exc)
        return None

    try:
        futures = []

        def dispatch(index: int, start: int, count: int,
                     boundary: Optional[_Boundary]) -> None:
            window = _window_pinball(pinball, index, start, count,
                                     boundary, schedule_prefix)
            futures.append(pool.submit(
                trace_op,
                {"pinball_raw": window.to_bytes(compress=False)},
                worker=index % pool.workers))

        # Window 0 starts from the region's own initial state: dispatch
        # it before the scout runs so its trace overlaps the scouting.
        dispatch(0, 0, edges[0], None)

        # Scout: untraced replay, stopping at each boundary to capture
        # the window-start state; each later window is dispatched the
        # moment its boundary is captured.
        with OBS.span("shard.scout"):
            # Window 0 replays from the region snapshot regardless, so the
            # scout only needs to *reach* the first seam: a v2 pinball's
            # embedded checkpoints let it skip straight to the latest one
            # at or before bounds[0] instead of replaying the prefix.
            checkpoint = best_checkpoint(pinball, bounds[0])
            if checkpoint is not None and checkpoint.steps_done > 0:
                machine, injector = resume_machine(
                    pinball, program, checkpoint, engine=engine)
                done = checkpoint.steps_done
                retired = sum(checkpoint.body()["instr_counts"].values())
                OBS.add("slicing.scout_checkpoint_resumes", 1)
            else:
                machine, injector = _scout_machine(pinball, program, engine)
                done = retired = 0
            steps = done
            reason = "limit"
            for i, bound in enumerate(bounds):
                result = machine.run(max_steps=bound - done)
                steps += result.steps
                retired += result.retired
                done += result.steps
                reason = result.reason
                if result.reason != "limit":
                    break               # region ended before this seam
                state = capture_state(machine, injector.consumed(), ())
                boundary = _Boundary(
                    step=done,
                    snapshot=state["snapshot"],
                    consumed=state["consumed"],
                    global_seq=state["global_seq"],
                    instr_counts=state["instr_counts"],
                )
                dispatch(i + 1, done, edges[i + 1] - done, boundary)
            else:
                result = machine.run(max_steps=total_steps - done)
                steps += result.steps
                retired += result.retired
                reason = result.reason
        replay_result = RunResult(reason=reason, steps=steps,
                                  retired=retired, failure=machine.failure)

        # Absorb windows in order while later windows are still tracing.
        collector = TraceCollector(program, options)
        stitching = plan.mode == "stitch"
        tindex_of: Dict[int, int] = {}
        columns: Dict[int, tuple] = {}
        static_cache: dict = {}
        carried_stacks: Dict[int, list] = {}
        stub = InstrEvent(0, 0, 0, 0, None, (), (), (), (), -1)
        obs_on = OBS.enabled
        last = len(futures) - 1
        with OBS.span("shard.stitch"):
            for index, future in enumerate(futures):
                payload = future.result(pool.default_timeout)
                if stitching:
                    rows = payload["rows"]
                    _stitch_window(collector, program, options, rows,
                                   tindex_of, columns, static_cache, stub)
                    row_count = len(rows)
                else:
                    row_count = _absorb_window(collector, payload["blob"],
                                               carried_stacks)
                plan.rows += row_count
                plan.windows.append({
                    "window": index,
                    "rows": row_count,
                    "steps": payload.get("steps"),
                })
                if index != last:
                    if stitching:
                        open_regions, open_saves = \
                            _seam_diagnostics(collector)
                    else:
                        open_regions = sum(
                            len(stack)
                            for stack in carried_stacks.values())
                        open_saves = sum(
                            len(saves) for saves
                            in collector.save_restore._open.values())
                    if obs_on:
                        OBS.add("slicing.shard/seam_open_regions",
                                open_regions)
                        OBS.add("slicing.shard/seam_open_saves", open_saves)
    except PoolError as exc:
        _fallback(plan, "pool failure: %s" % exc)
        return None
    finally:
        pool.close()

    if obs_on:
        OBS.add("slicing.shard/builds", 1)
        OBS.add("slicing.shard/windows", len(futures))
        OBS.add("slicing.shard/rows", plan.rows)
    return collector, machine, replay_result
