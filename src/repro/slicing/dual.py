"""Dual slicing: contrast a failing run's slice with a passing run's.

The paper's related work cites Weeratunge et al. (ISSTA'10), who analyze
concurrency bugs "by leveraging both passing and failing runs".  On our
substrate the idea is direct: record both runs as pinballs, slice the same
criterion in each, and diff at the *statement* level (dynamic instances
are not comparable across runs, statements are).  Statements that feed the
value only in the failing run are the bug candidates; statements only in
the passing run show the computation the failure bypassed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.slicing.slice import DynamicSlice

Statement = Tuple[Optional[str], Optional[int]]   # (function, line)


@dataclass(frozen=True)
class DualSliceResult:
    """Statement-level comparison of two slices of the same criterion."""

    failing_only: FrozenSet[Statement]
    passing_only: FrozenSet[Statement]
    common: FrozenSet[Statement]

    @property
    def suspicious(self) -> FrozenSet[Statement]:
        """The primary output: statements implicated only in the failure."""
        return self.failing_only

    def describe(self) -> str:
        def block(title, statements):
            lines = ["%s:" % title]
            for func, line in sorted(
                    statements, key=lambda fl: (fl[0] or "", fl[1] or 0)):
                lines.append("  %s:%s" % (func, line))
            if len(lines) == 1:
                lines.append("  (none)")
            return "\n".join(lines)

        return "\n".join([
            block("only in the FAILING slice (bug candidates)",
                  self.failing_only),
            block("only in the passing slice (bypassed computation)",
                  self.passing_only),
            block("common to both", self.common),
        ])


def _statements(dslice: DynamicSlice) -> FrozenSet[Statement]:
    return frozenset(
        (func, line) for func, line in dslice.source_statements()
        if func is not None and line is not None)


def dual_slice(failing: DynamicSlice, passing: DynamicSlice
               ) -> DualSliceResult:
    """Diff two slices of corresponding criteria from two runs."""
    failing_statements = _statements(failing)
    passing_statements = _statements(passing)
    return DualSliceResult(
        failing_only=failing_statements - passing_statements,
        passing_only=passing_statements - failing_statements,
        common=failing_statements & passing_statements,
    )
