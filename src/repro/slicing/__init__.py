"""Dynamic slicing for multi-threaded programs (paper Sections 3 and 5).

The pipeline, mirroring the paper's three steps plus the two precision
improvements:

1. **Per-thread local traces** — :class:`~repro.slicing.tracer.TraceCollector`
   attaches to a pinball replay and records, per retired instruction, the
   registers and memory addresses defined/used, the dynamic control-
   dependence parent (Xin-Zhang online algorithm over refined-CFG
   post-dominators), indirect-jump target observations (CFG refinement,
   Section 5.1), and dynamically verified save/restore pairs
   (Section 5.2).
2. **Combined global trace** — :func:`~repro.slicing.global_trace.merge_traces`
   topologically merges the per-thread traces honoring the shared-memory
   access-order edges stored in the pinball, clustering per-thread runs
   for LP locality exactly as the paper describes.
3. **Backward traversal** — :class:`~repro.slicing.slicer.BackwardSlicer`
   recovers the dynamic data and control dependences reachable from the
   criterion, skipping irrelevant trace blocks with the Limited
   Preprocessing (LP) summaries of Zhang et al., optionally bypassing
   save/restore pairs.

By default step 3 is served by the build-once CSR dependence index of
:mod:`repro.slicing.ddg` (``SliceOptions(index="ddg")``): one pass
compiles every dependence edge, then interactive queries are memoized
graph traversals — the backward scans remain available as the
``"columnar"`` and ``"rows"`` baselines.

High-level entry point: :class:`~repro.slicing.api.SlicingSession`.
"""

from repro.slicing.options import SliceOptions
from repro.slicing.trace import TraceRecord, TraceStore
from repro.slicing.slice import DynamicSlice
from repro.slicing.global_trace import GlobalTrace, merge_traces
from repro.slicing.ddg import DependenceIndex
from repro.slicing.slicer import BackwardSlicer
from repro.slicing.tracer import TraceCollector
from repro.slicing.api import SlicingSession
from repro.slicing.dual import DualSliceResult, dual_slice

__all__ = [
    "BackwardSlicer",
    "DependenceIndex",
    "DualSliceResult",
    "DynamicSlice",
    "GlobalTrace",
    "SliceOptions",
    "SlicingSession",
    "TraceCollector",
    "TraceRecord",
    "TraceStore",
    "dual_slice",
    "merge_traces",
]
