"""The dynamic slice data structure: nodes, dependence edges, navigation.

A :class:`DynamicSlice` is self-contained (it copies the per-node debug
info out of the trace records), so it can be saved, reloaded in a later
debug session — slices stay valid across sessions thanks to PinPlay's
repeatability guarantee — browsed backwards along dependence edges (the
KDbg-style navigation), and converted into the keep-sets the relogger
needs to build a slice pinball.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Set, Tuple

Instance = Tuple[int, int]


class SliceNode:
    """One instruction instance included in the slice."""

    __slots__ = ("tid", "tindex", "addr", "line", "func", "values")

    def __init__(self, tid: int, tindex: int, addr: int,
                 line: Optional[int], func: Optional[str],
                 values: Optional[dict] = None) -> None:
        self.tid = tid
        self.tindex = tindex
        self.addr = addr
        self.line = line
        self.func = func
        self.values = values

    @property
    def instance(self) -> Instance:
        return (self.tid, self.tindex)

    def __repr__(self) -> str:
        return "<SliceNode %d:%d %s:%s pc=%d>" % (
            self.tid, self.tindex, self.func, self.line, self.addr)


class DynamicSlice:
    """A computed backward dynamic slice."""

    def __init__(self, criterion: Instance,
                 nodes: Dict[Instance, SliceNode],
                 edges: List[Tuple[Instance, Instance, str, Optional[tuple]]],
                 stats: Optional[dict] = None) -> None:
        self.criterion = criterion
        self.nodes = nodes
        #: ``(consumer, producer, kind, location)`` — consumer *depends on*
        #: producer via a data ("data") or control ("control") dependence.
        self.edges = edges
        self.stats = dict(stats or {})
        self._deps: Optional[Dict[Instance, List]] = None

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, instance: Instance) -> bool:
        return tuple(instance) in self.nodes

    def instances(self) -> List[Instance]:
        return sorted(self.nodes)

    def node(self, instance: Instance) -> SliceNode:
        return self.nodes[tuple(instance)]

    def deps_of(self, instance: Instance) -> List[Tuple[Instance, str, Optional[tuple]]]:
        """Producers this instance directly depends on (backward edges)."""
        if self._deps is None:
            self._deps = {}
            for consumer, producer, kind, loc in self.edges:
                self._deps.setdefault(consumer, []).append(
                    (producer, kind, loc))
        return self._deps.get(tuple(instance), [])

    def source_statements(self) -> Set[Tuple[Optional[str], Optional[int]]]:
        """The (function, line) statements the slice touches."""
        return {(node.func, node.line) for node in self.nodes.values()}

    def lines(self) -> Set[int]:
        return {node.line for node in self.nodes.values()
                if node.line is not None}

    def threads(self) -> Set[int]:
        return {tid for tid, _ in self.nodes}

    def to_keep(self) -> Dict[int, Set[int]]:
        """Keep-sets for the relogger: tid -> instruction indices kept."""
        keep: Dict[int, Set[int]] = {}
        for tid, tindex in self.nodes:
            keep.setdefault(tid, set()).add(tindex)
        return keep

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "criterion": list(self.criterion),
            "nodes": [
                [node.tid, node.tindex, node.addr, node.line, node.func]
                for node in self.nodes.values()
            ],
            "edges": [
                [list(consumer), list(producer), kind,
                 list(loc) if loc is not None else None]
                for consumer, producer, kind, loc in self.edges
            ],
            "stats": self.stats,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DynamicSlice":
        nodes = {}
        for tid, tindex, addr, line, func in payload["nodes"]:
            node = SliceNode(tid, tindex, addr, line, func)
            nodes[node.instance] = node
        edges = [
            (tuple(consumer), tuple(producer), kind,
             tuple(loc) if loc is not None else None)
            for consumer, producer, kind, loc in payload["edges"]
        ]
        return cls(tuple(payload["criterion"]), nodes, edges,
                   payload.get("stats"))

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle)

    @classmethod
    def load(cls, path: str) -> "DynamicSlice":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))
