"""Trace collection during pinball replay (the slicing "pintool").

Attached to a replay, this tool builds the per-thread local traces while
running the two online analyses that determine slice precision:

* CFG refinement from observed indirect-jump targets (Section 5.1) feeding
  the Xin-Zhang control-dependence tracker;
* dynamic save/restore pair verification (Section 5.2).

With ``discover_jump_tables`` the tracer instead primes every CFG from the
switch jump tables before execution — the precision upper bound that real
x86 static analysis cannot reach (useful for ablations).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analysis.registry import CfgRegistry
from repro.isa.instructions import Imm, Opcode
from repro.isa.program import Program
from repro.slicing.control_dep import ControlDepTracker
from repro.slicing.options import SliceOptions
from repro.slicing.save_restore import SaveRestoreDetector
from repro.slicing.trace import ColumnarTraceStore, TraceRecord, TraceStore
from repro.vm.hooks import InstrEvent, Tool

_SYS_R0_DEF = ("r0",)
_NO_REGS = ()


def prime_jump_tables(registry: CfgRegistry, program: Program) -> int:
    """Statically read switch jump tables into the CFGs; returns edge count.

    Recognizes the code generator's dispatch idiom: an ``ijmp`` whose
    target register was loaded from a table whose base came from
    ``lea rX, <table>`` within the preceding few instructions.
    """
    image = program.initial_data_image()
    table_ranges = [(d.addr, d.addr + len(d.values)) for d in
                    program.data_defs.values()]
    added = 0
    for function in program.functions.values():
        for addr in range(function.entry, function.end):
            if program.instructions[addr].op != Opcode.IJMP:
                continue
            base = None
            for back in range(addr - 1, max(function.entry, addr - 6) - 1, -1):
                instr = program.instructions[back]
                if (instr.op == Opcode.LEA
                        and isinstance(instr.operands[1], Imm)):
                    base = int(instr.operands[1].value)
                    break
            if base is None:
                continue
            for start, end in table_ranges:
                if start <= base < end:
                    cfg = registry.cfg(function.name)
                    for slot in range(start, end):
                        target = int(image.get(slot, 0))
                        if cfg.add_indirect_target(addr, target):
                            added += 1
                    break
    return added


class TraceCollector(Tool):
    """Collects per-thread traces plus precision metadata during replay.

    By default the trace goes into a :class:`ColumnarTraceStore` (the
    predecoded engine's interned hot path).  ``SliceOptions(columnar=
    False)`` selects the seed layout — one eagerly built
    :class:`TraceRecord` per instruction in a :class:`TraceStore` — which
    the perf benchmark uses as its measured baseline and the differential
    tests compare against the columnar views record-for-record.
    """

    wants_instr_events = True
    retains_instr_events = False   # events are consumed synchronously

    def __init__(self, program: Program,
                 options: Optional[SliceOptions] = None) -> None:
        self.program = program
        self.options = options or SliceOptions()
        self.registry = CfgRegistry(program, refine=self.options.refine_cfg)
        if self.options.discover_jump_tables:
            prime_jump_tables(self.registry, program)
        self.control = ControlDepTracker(self.registry)
        self.save_restore = SaveRestoreDetector(
            program, self.options.max_save
            if self.options.prune_save_restore else 0)
        self._columnar = self.options.columnar
        self.store = (ColumnarTraceStore() if self._columnar
                      else TraceStore())
        self._machine = None
        #: Per-pc cache of the interned static row part
        #: ``(addr, line, func, rdefs, ruses)``.  Register def/use sets
        #: are a pure function of the static instruction for every opcode
        #: except SYS, whose r0 def depends on whether the handler
        #: returned a result — SYS entries carry both variants and pick
        #: per event.  Entry: ``(static, sys_static_r0, sys_static_none)``
        #: with ``static=None`` for SYS.
        self._row_cache: Dict[int, tuple] = {}

    def on_start(self, machine) -> None:
        self._machine = machine

    def on_instr(self, event: InstrEvent) -> None:
        instr = event.instr
        op = instr.op

        # Refine the CFG with the observed indirect-jump target *before*
        # the control tracker asks for this jump's region end.
        if op == Opcode.IJMP and self.options.refine_cfg:
            target = int(event.reg_reads[0][1])
            self.registry.observe_indirect_jump(event.addr, target)

        callee_frame_id = None
        if op in (Opcode.CALL, Opcode.ICALL):
            frames = self._machine.threads[event.tid].frames
            callee_frame_id = frames[-1].frame_id if frames else None
        cd = self.control.on_event(event, callee_frame_id)

        if self._columnar:
            self._append_columnar(event, instr, op, cd)
        else:
            self._append_record(event, instr, cd)

        self.save_restore.on_event(event)

    # -- columnar append (hot path) ----------------------------------------

    def _append_columnar(self, event, instr, op, cd) -> None:
        store = self.store
        addr = event.addr
        cached = self._row_cache.get(addr)
        if cached is None:
            track_sp = self.options.track_stack_pointer
            ruses = store.intern(_dedupe(
                name for name, _ in event.reg_reads
                if track_sp or name != "sp"))
            if op == Opcode.SYS:
                cached = (
                    None,
                    store.intern((addr, instr.line, instr.func,
                                  _SYS_R0_DEF, ruses)),
                    store.intern((addr, instr.line, instr.func,
                                  _NO_REGS, ruses)),
                )
            else:
                rdefs = store.intern(_dedupe(
                    name for name, _ in event.reg_writes
                    if track_sp or name != "sp"))
                cached = (
                    store.intern((addr, instr.line, instr.func,
                                  rdefs, ruses)),
                    None, None,
                )
            self._row_cache[addr] = cached
        static = cached[0]
        if static is None:   # SYS: r0 def present iff a result was written
            static = cached[1] if event.reg_writes else cached[2]

        mem_writes = event.mem_writes
        if not mem_writes:
            mdefs = _NO_REGS
        elif len(mem_writes) == 1:
            mdefs = store.intern((mem_writes[0][0],))
        else:
            mdefs = store.intern(_dedupe(a for a, _ in mem_writes))
        mem_reads = event.mem_reads
        if not mem_reads:
            muses = _NO_REGS
        elif len(mem_reads) == 1:
            muses = store.intern((mem_reads[0][0],))
        else:
            muses = store.intern(_dedupe(a for a, _ in mem_reads))

        values = None
        if self.options.record_values:
            values = {}
            for name, value in event.reg_writes:
                values[name] = value
            for addr_w, value in mem_writes:
                values[addr_w] = value

        store.append_row(store.columns_for(event.tid), static,
                         mdefs, muses, cd, values)

    # -- eager record append (seed layout, benchmark baseline) -------------

    def _append_record(self, event, instr, cd) -> None:
        track_sp = self.options.track_stack_pointer
        rdefs = _dedupe(name for name, _ in event.reg_writes
                        if track_sp or name != "sp")
        ruses = _dedupe(name for name, _ in event.reg_reads
                        if track_sp or name != "sp")
        mdefs = _dedupe(addr for addr, _ in event.mem_writes)
        muses = _dedupe(addr for addr, _ in event.mem_reads)

        values = None
        if self.options.record_values:
            values = {}
            for name, value in event.reg_writes:
                values[name] = value
            for addr, value in event.mem_writes:
                values[addr] = value

        self.store.append(TraceRecord(
            tid=event.tid, tindex=event.tindex, addr=event.addr,
            line=instr.line, func=instr.func,
            rdefs=rdefs, ruses=ruses, mdefs=mdefs, muses=muses,
            cd=cd, values=values))


def _dedupe(items) -> Tuple:
    return tuple(dict.fromkeys(items))
