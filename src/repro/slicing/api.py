"""High-level slicing sessions: replay a pinball once, slice many times.

This is the workflow of paper Figure 4: replay the region pinball with the
slicing pintool attached (collecting traces — the expensive part, done
once), then answer interactive slice queries, and finally turn a chosen
slice into a slice pinball via the relogger.

With ``SliceOptions(index="reexec")`` the session skips the full traced
replay entirely: a :class:`~repro.slicing.reexec.ReexecIndex` scaffold
pass (selective tracing, near-untraced speed) seeds the session, and each
query re-replays only the checkpoint-bounded windows it needs — peak
memory proportional to the slice, not the region.  Configurations the
reexec engine does not cover (sharded builds, exclusion pinballs, the
legacy engine, programs the selective decoder rejects) fall back to the
materialized pipeline transparently, answering with identical bytes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import config
from repro.isa.program import Program
from repro.obs.registry import OBS
from repro.pinplay.pinball import Pinball
from repro.pinplay.relogger import relog
from repro.pinplay.replayer import replay
from repro.slicing.ddg_serde import FrozenIndex
from repro.slicing.global_trace import GlobalTrace, merge_traces
from repro.slicing.options import SliceOptions
from repro.slicing.reexec import ReexecIndex
from repro.slicing.slice import DynamicSlice
from repro.slicing.slicer import BackwardSlicer
from repro.slicing.trace import Instance, Location
from repro.slicing.tracer import TraceCollector


class FrozenSlicer:
    """:class:`BackwardSlicer`-shaped facade over a deserialized
    :class:`~repro.slicing.ddg_serde.FrozenIndex` — same ``slice`` /
    ``index_stats`` / ``ddg`` surface, but the index arrived from the
    persistent cache instead of a build pass, so there is no trace (and
    no lazy build) behind it."""

    def __init__(self, frozen: FrozenIndex) -> None:
        self.index = "ddg"
        self._ddg = frozen

    @property
    def ddg(self) -> FrozenIndex:
        return self._ddg

    def slice(self, criterion: Instance,
              locations: Optional[Sequence[Location]] = None
              ) -> DynamicSlice:
        return self._ddg.slice(criterion, locations)

    def index_stats(self) -> dict:
        ddg = self._ddg
        return {
            "slice_index": self.index,
            "ddg_build_time_sec": ddg.build_time,
            "edge_count": ddg.edge_count,
            "memo_hits": ddg.memo_hits + ddg.cache_hits,
            "memo_misses": ddg.memo_misses + ddg.cache_misses,
            "slice_cache_hits": ddg.cache_hits,
            "closure_memo_hits": ddg.memo_hits,
            "bypassed_edges": ddg.bypassed_edges,
        }


class SlicingSession:
    """Owns the traced replay of one region pinball and serves slices."""

    def __init__(self, pinball: Pinball, program: Program,
                 options: Optional[SliceOptions] = None,
                 engine: Optional[str] = None,
                 shard_boundaries: Optional[Sequence[int]] = None) -> None:
        self.pinball = pinball
        self.program = program
        self.options = options or SliceOptions()
        self.engine = engine
        if self.options.obs:
            OBS.enable()
        #: Diagnostics of the region-sharded build (None while serial).
        self.shard_plan = None
        #: The materialized pipeline's state (collector + merged trace).
        #: For reexec sessions these stay None until a consumer actually
        #: needs the full trace (the :attr:`collector` / :attr:`gtrace`
        #: properties materialize on demand — the escape hatch).
        self._collector: Optional[TraceCollector] = None
        self._gtrace: Optional[GlobalTrace] = None
        self._reexec: Optional[ReexecIndex] = None
        #: A cache-loaded index (warm start) — set only by
        #: :meth:`from_frozen_index`; the criterion helpers and stats
        #: branch on it so no trace is ever materialized.
        self._frozen: Optional[FrozenIndex] = None

        reexec_wanted = (
            self.options.index == "reexec"
            and self.options.shards == 1
            and shard_boundaries is None
            and not pinball.exclusions
            and config.engine(explicit=engine) == "predecoded")
        # The phase timers live in the observability registry
        # (``slicing.trace`` / ``slicing.preprocess`` spans); a Span
        # measures whether or not the registry is enabled, so the public
        # ``trace_time``/``preprocess_time`` attributes survive unchanged.
        if reexec_wanted:
            with OBS.span("slicing.trace") as trace_span:
                try:
                    self._reexec = ReexecIndex(pinball, program,
                                               options=self.options,
                                               engine=engine)
                except ValueError:
                    self._reexec = None
            self.trace_time = trace_span.elapsed
        if self._reexec is not None:
            self.machine = self._reexec.final_machine
            self.replay_result = self._reexec.final_result
            with OBS.span("slicing.preprocess") as prep_span:
                self._reexec.prepare()
            self.preprocess_time = prep_span.elapsed
            self.slicer = self._reexec
        else:
            with OBS.span("slicing.trace") as trace_span:
                sharded = None
                if self.options.shards > 1 or shard_boundaries is not None:
                    from repro.slicing.shard import ShardPlan, trace_sharded
                    self.shard_plan = ShardPlan(self.options.shards, [])
                    sharded = trace_sharded(
                        pinball, program, self.options, engine=engine,
                        boundaries=shard_boundaries, plan_out=self.shard_plan)
                if sharded is not None:
                    self._collector, self.machine, self.replay_result = \
                        sharded
                else:
                    self._collector = TraceCollector(program, self.options)
                    self.machine, self.replay_result = replay(
                        pinball, program, tools=[self._collector],
                        verify=False, engine=engine)
            self.trace_time = trace_span.elapsed

            with OBS.span("slicing.preprocess") as prep_span:
                self._gtrace = merge_traces(
                    self._collector.store, pinball.mem_order)
                self.slicer = BackwardSlicer(
                    self._gtrace,
                    verified_restores=self._collector.save_restore.verified,
                    options=self.options)
            self.preprocess_time = prep_span.elapsed
        self.last_slice_time = 0.0
        if OBS.enabled:
            OBS.add("slicing.sessions", 1)
            OBS.add("slicing.trace_records", self.trace_record_count())
        #: Lazily built reverse indexes serving the criterion helpers
        #: (line -> latest instance, written addr -> latest writer, read
        #: positions).  One pass over the trace columns on first use —
        #: interactive sessions resolve criteria repeatedly, and the seed
        #: implementation re-scanned the whole trace per call.
        self._criterion_index: Optional[tuple] = None

    @classmethod
    def from_frozen_index(cls, pinball: Pinball, program: Program,
                          frozen: FrozenIndex,
                          options: Optional[SliceOptions] = None,
                          engine: Optional[str] = None) -> "SlicingSession":
        """Warm-start a session from a cache-loaded dependence index.

        Skips replay, tracing and the index build entirely: slice
        queries, the criterion helpers and ``make_slice_pinball`` (the
        relogger consumes only the pinball + the keep-set) all answer
        from the frozen index, byte-identical to a cold build.  The
        materialized-trace escape hatches (:attr:`collector` /
        :attr:`gtrace`) still work — touching them runs the full traced
        replay the warm start avoided.
        """
        session = cls.__new__(cls)
        session.pinball = pinball
        session.program = program
        session.options = options or SliceOptions()
        session.engine = engine
        if session.options.obs:
            OBS.enable()
        session.shard_plan = None
        session._collector = None
        session._gtrace = None
        session._reexec = None
        session._frozen = frozen
        session.machine = None
        session.replay_result = None
        session.trace_time = 0.0
        session.preprocess_time = 0.0
        session.slicer = FrozenSlicer(frozen)
        session.last_slice_time = 0.0
        session._criterion_index = None
        if OBS.enabled:
            OBS.add("slicing.sessions", 1)
            OBS.add("slicing.warm_sessions", 1)
        return session

    # -- materialized-trace access (lazy for reexec sessions) ----------------

    @property
    def collector(self) -> TraceCollector:
        """The trace collector — for reexec sessions, accessing this runs
        the full traced replay the engine was avoiding (once)."""
        if self._collector is None:
            self._materialize()
        return self._collector

    @property
    def gtrace(self) -> GlobalTrace:
        """The merged global trace (materialized on demand, see
        :attr:`collector`)."""
        if self._gtrace is None:
            self._materialize()
        return self._gtrace

    def _materialize(self) -> None:
        with OBS.span("slicing.trace"):
            collector = TraceCollector(self.program, self.options)
            self.machine, self.replay_result = replay(
                self.pinball, self.program, tools=[collector],
                verify=False, engine=self.engine)
        with OBS.span("slicing.preprocess"):
            self._gtrace = merge_traces(
                collector.store, self.pinball.mem_order)
        self._collector = collector

    def trace_record_count(self) -> int:
        """Retired-instruction count of the region — what a full trace
        would hold.  Reexec sessions answer from the scaffold's pc
        streams without materializing any trace."""
        if self._frozen is not None:
            return self._frozen.node_count
        if self._reexec is not None:
            return self._reexec.trace_records
        return self.collector.store.total_records()

    # -- criterion resolution ----------------------------------------------------

    def failure_criterion(self) -> Instance:
        """The instance of the recorded failure symptom (assert)."""
        failure = self.pinball.meta.get("failure")
        if not failure:
            raise ValueError("pinball records no failure")
        return (int(failure["tid"]), int(failure["tindex"]))

    def _indexes(self) -> tuple:
        """(line_best, line_tid_best, write_best, write_tid_best, reads)
        reverse indexes, built once per session directly from the trace
        columns (or records, for the row store)."""
        if self._criterion_index is not None:
            return self._criterion_index
        line_best: Dict[int, Tuple[int, Instance]] = {}
        line_tid_best: Dict[Tuple[int, int], Tuple[int, Instance]] = {}
        write_best: Dict[int, Tuple[int, Instance]] = {}
        write_tid_best: Dict[Tuple[int, int], Tuple[int, Instance]] = {}
        reads: List[Tuple[int, Instance]] = []
        store = self.collector.store
        columns = getattr(store, "_columns", None)
        if columns is not None:
            rows_of = ((tid, cols.statics, cols.dyns, cols.gpos)
                       for tid, cols in columns.items())
            for tid, statics, dyns, gpos_col in rows_of:
                for tindex in range(len(statics)):
                    gpos = gpos_col[tindex]
                    inst = (tid, tindex)
                    line = statics[tindex][1]
                    mdefs, muses = dyns[tindex][0], dyns[tindex][1]
                    self._index_row(line_best, line_tid_best, write_best,
                                    write_tid_best, reads, tid, inst, gpos,
                                    line, mdefs, muses)
        else:
            for tid, records in store.by_thread.items():
                for record in records:
                    self._index_row(line_best, line_tid_best, write_best,
                                    write_tid_best, reads, tid,
                                    record.instance, record.gpos,
                                    record.line, record.mdefs, record.muses)
        reads.sort()
        self._criterion_index = (line_best, line_tid_best, write_best,
                                 write_tid_best, reads)
        return self._criterion_index

    @staticmethod
    def _index_row(line_best, line_tid_best, write_best, write_tid_best,
                   reads, tid, inst, gpos, line, mdefs, muses) -> None:
        if line is not None:
            current = line_best.get(line)
            if current is None or gpos > current[0]:
                line_best[line] = (gpos, inst)
            key = (line, tid)
            current = line_tid_best.get(key)
            if current is None or gpos > current[0]:
                line_tid_best[key] = (gpos, inst)
        for addr in mdefs:
            current = write_best.get(addr)
            if current is None or gpos > current[0]:
                write_best[addr] = (gpos, inst)
            key = (addr, tid)
            current = write_tid_best.get(key)
            if current is None or gpos > current[0]:
                write_tid_best[key] = (gpos, inst)
        if muses:
            reads.append((gpos, inst))

    def last_instance_at_line(self, line: int,
                              tid: Optional[int] = None) -> Instance:
        """The latest executed instance attributed to source ``line``."""
        if self._frozen is not None:
            return self._frozen.last_instance_at_line(line, tid)
        if self._reexec is not None:
            return self._reexec.last_instance_at_line(line, tid)
        line_best, line_tid_best, _writes, _tid_writes, _reads = \
            self._indexes()
        best = (line_best.get(line) if tid is None
                else line_tid_best.get((line, tid)))
        if best is None:
            raise ValueError("line %d was never executed%s" % (
                line, "" if tid is None else " by tid %d" % tid))
        return best[1]

    def last_write_to_global(self, name: str,
                             tid: Optional[int] = None) -> Instance:
        """The latest instance that wrote global variable ``name``."""
        if self._frozen is not None:
            var = self.program.globals.get(name)
            if var is None:
                raise ValueError("unknown global %r" % name)
            best = self._frozen.last_write_to_addr_range(
                var.addr, var.addr + max(1, var.size), tid)
            if best is None:
                raise ValueError("global %r was never written" % name)
            return best
        if self._reexec is not None:
            return self._reexec.last_write_to_global(name, tid)
        var = self.program.globals.get(name)
        if var is None:
            raise ValueError("unknown global %r" % name)
        _lines, _tid_lines, write_best, write_tid_best, _reads = \
            self._indexes()
        best: Optional[Tuple[int, Instance]] = None
        for addr in range(var.addr, var.addr + max(1, var.size)):
            candidate = (write_best.get(addr) if tid is None
                         else write_tid_best.get((addr, tid)))
            if candidate is not None and (best is None
                                          or candidate[0] > best[0]):
                best = candidate
        if best is None:
            raise ValueError("global %r was never written" % name)
        return best[1]

    def global_location(self, name: str) -> Location:
        var = self.program.globals.get(name)
        if var is None:
            raise ValueError("unknown global %r" % name)
        return ("m", var.addr)

    def last_reads(self, count: int) -> List[Instance]:
        """The last ``count`` memory-reading instances across all threads.

        This mirrors the paper's slicing-overhead experiment, which slices
        "the last 10 read instructions (spread across five threads)".
        """
        if self._frozen is not None:
            return self._frozen.last_reads(count)
        if self._reexec is not None:
            return self._reexec.last_reads(count)
        reads = self._indexes()[4]
        return [inst for _gpos, inst in reads[:-count - 1:-1]]

    # -- slicing --------------------------------------------------------------------

    def slice_for(self, criterion: Instance,
                  locations: Optional[Sequence[Location]] = None
                  ) -> DynamicSlice:
        with OBS.span("slicing.query") as span:
            result = self.slicer.slice(criterion, locations)
        self.last_slice_time = span.elapsed
        if OBS.enabled:
            OBS.add("slicing.queries", 1)
            OBS.observe("slicing.slice_nodes", len(result.nodes))
        return result

    def slice_for_global(self, global_name: Optional[str] = None,
                         instance: Optional[Instance] = None,
                         tid: Optional[int] = None, *,
                         name: Optional[str] = None,
                         criterion: Optional[Instance] = None
                         ) -> DynamicSlice:
        """Slice for the value of global ``global_name`` as of
        ``instance`` (default: the last write to it, optionally
        restricted to thread ``tid``).

        Uses the unified entry-point vocabulary (``global_name=``,
        ``instance=``, ``tid=``) shared with
        :meth:`~repro.debugger.session.DrDebugSession.slice_for_variable`
        and the serve ``slice`` verb; the pre-unification spellings
        ``name=`` / ``criterion=`` still work but warn.
        """
        from repro.deprecation import deprecated_kwarg
        global_name = deprecated_kwarg("name", name,
                                       "global_name", global_name)
        instance = deprecated_kwarg("criterion", criterion,
                                    "instance", instance)
        if global_name is None:
            raise TypeError("slice_for_global() missing the 'global_name' "
                            "argument")
        if instance is None:
            instance = self.last_write_to_global(global_name, tid)
        return self.slice_for(instance, [self.global_location(global_name)])

    # -- slice pinball -----------------------------------------------------------------

    def make_slice_pinball(self, dslice: DynamicSlice) -> Pinball:
        """Run the relogger to produce the slice pinball for ``dslice``."""
        return relog(self.pinball, self.program, dslice.to_keep(),
                     engine=self.engine)

    # -- reporting ----------------------------------------------------------------------

    def stats(self) -> dict:
        """Session statistics.

        Timing values come from the observability spans (``trace_time`` /
        ``preprocess_time`` are their ``elapsed`` readings); the
        index-amortization counters come from the slicer.  With the
        registry enabled (``--obs`` / ``REPRO_OBS=1``), the same numbers
        — plus pipeline-wide counters from every other layer — are
        available via ``repro.obs.OBS.snapshot()``.
        """
        if self._frozen is not None:
            out = {
                "obs_enabled": OBS.enabled,
                "warm_start": True,
                "trace_records": self._frozen.node_count,
                "trace_time_sec": self.trace_time,
                "preprocess_time_sec": self.preprocess_time,
                "mem_order_edges": len(self.pinball.mem_order),
                "threads": len(self._frozen._columns),
                "shards": self.options.shards,
            }
            out.update(self.slicer.index_stats())
            return out
        if self._reexec is not None:
            out = {
                "obs_enabled": OBS.enabled,
                "trace_records": self.trace_record_count(),
                "trace_time_sec": self.trace_time,
                "preprocess_time_sec": self.preprocess_time,
                "mem_order_edges": len(self.pinball.mem_order),
                "cfg_refinements": self._reexec.registry.refinements,
                "verified_save_restore_pairs":
                    self._reexec.save_restore.pair_count,
                "threads": self._reexec.threads(),
                "shards": self.options.shards,
            }
            out.update(self._reexec.index_stats())
            return out
        out = {
            "obs_enabled": OBS.enabled,
            "trace_records": self.collector.store.total_records(),
            "trace_time_sec": self.trace_time,
            "preprocess_time_sec": self.preprocess_time,
            "mem_order_edges": len(self.pinball.mem_order),
            "cfg_refinements": self.collector.registry.refinements,
            "verified_save_restore_pairs":
                self.collector.save_restore.pair_count,
            "threads": self.collector.store.threads(),
            "shards": self.options.shards,
        }
        if self.shard_plan is not None:
            out["shard_plan"] = self.shard_plan.to_dict()
        # Amortization counters for the build-once DDG engine (zeros for
        # the scan engines, and until the first DDG query builds it).
        out.update(self.slicer.index_stats())
        return out
