"""High-level slicing sessions: replay a pinball once, slice many times.

This is the workflow of paper Figure 4: replay the region pinball with the
slicing pintool attached (collecting traces — the expensive part, done
once), then answer interactive slice queries, and finally turn a chosen
slice into a slice pinball via the relogger.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.program import Program
from repro.pinplay.pinball import Pinball
from repro.pinplay.relogger import relog
from repro.pinplay.replayer import replay
from repro.slicing.global_trace import GlobalTrace, merge_traces
from repro.slicing.options import SliceOptions
from repro.slicing.slice import DynamicSlice
from repro.slicing.slicer import BackwardSlicer
from repro.slicing.trace import Instance, Location
from repro.slicing.tracer import TraceCollector


class SlicingSession:
    """Owns the traced replay of one region pinball and serves slices."""

    def __init__(self, pinball: Pinball, program: Program,
                 options: Optional[SliceOptions] = None,
                 engine: Optional[str] = None) -> None:
        self.pinball = pinball
        self.program = program
        self.options = options or SliceOptions()
        self.engine = engine
        started = time.perf_counter()
        self.collector = TraceCollector(program, self.options)
        self.machine, self.replay_result = replay(
            pinball, program, tools=[self.collector], verify=False,
            engine=engine)
        self.trace_time = time.perf_counter() - started

        started = time.perf_counter()
        self.gtrace: GlobalTrace = merge_traces(
            self.collector.store, pinball.mem_order)
        self.slicer = BackwardSlicer(
            self.gtrace,
            verified_restores=self.collector.save_restore.verified,
            options=self.options)
        self.preprocess_time = time.perf_counter() - started
        self.last_slice_time = 0.0

    # -- criterion resolution ----------------------------------------------------

    def failure_criterion(self) -> Instance:
        """The instance of the recorded failure symptom (assert)."""
        failure = self.pinball.meta.get("failure")
        if not failure:
            raise ValueError("pinball records no failure")
        return (int(failure["tid"]), int(failure["tindex"]))

    def last_instance_at_line(self, line: int,
                              tid: Optional[int] = None) -> Instance:
        """The latest executed instance attributed to source ``line``."""
        best: Optional[Instance] = None
        best_gpos = -1
        for thread_id, records in self.collector.store.by_thread.items():
            if tid is not None and thread_id != tid:
                continue
            for record in records:
                if record.line == line and record.gpos > best_gpos:
                    best_gpos = record.gpos
                    best = record.instance
        if best is None:
            raise ValueError("line %d was never executed%s" % (
                line, "" if tid is None else " by tid %d" % tid))
        return best

    def last_write_to_global(self, name: str,
                             tid: Optional[int] = None) -> Instance:
        """The latest instance that wrote global variable ``name``."""
        var = self.program.globals.get(name)
        if var is None:
            raise ValueError("unknown global %r" % name)
        addrs = set(range(var.addr, var.addr + max(1, var.size)))
        best: Optional[Instance] = None
        best_gpos = -1
        for thread_id, records in self.collector.store.by_thread.items():
            if tid is not None and thread_id != tid:
                continue
            for record in records:
                if record.gpos > best_gpos and any(
                        a in addrs for a in record.mdefs):
                    best_gpos = record.gpos
                    best = record.instance
        if best is None:
            raise ValueError("global %r was never written" % name)
        return best

    def global_location(self, name: str) -> Location:
        var = self.program.globals.get(name)
        if var is None:
            raise ValueError("unknown global %r" % name)
        return ("m", var.addr)

    def last_reads(self, count: int) -> List[Instance]:
        """The last ``count`` memory-reading instances across all threads.

        This mirrors the paper's slicing-overhead experiment, which slices
        "the last 10 read instructions (spread across five threads)".
        """
        result: List[Instance] = []
        for record in reversed(self.gtrace.order):
            if record.muses:
                result.append(record.instance)
                if len(result) >= count:
                    break
        return result

    # -- slicing --------------------------------------------------------------------

    def slice_for(self, criterion: Instance,
                  locations: Optional[Sequence[Location]] = None
                  ) -> DynamicSlice:
        started = time.perf_counter()
        result = self.slicer.slice(criterion, locations)
        self.last_slice_time = time.perf_counter() - started
        return result

    def slice_for_global(self, name: str,
                         criterion: Optional[Instance] = None) -> DynamicSlice:
        """Slice for the value of global ``name`` as of ``criterion``
        (default: the last write to it)."""
        if criterion is None:
            criterion = self.last_write_to_global(name)
        return self.slice_for(criterion, [self.global_location(name)])

    # -- slice pinball -----------------------------------------------------------------

    def make_slice_pinball(self, dslice: DynamicSlice) -> Pinball:
        """Run the relogger to produce the slice pinball for ``dslice``."""
        return relog(self.pinball, self.program, dslice.to_keep(),
                     engine=self.engine)

    # -- reporting ----------------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "trace_records": self.collector.store.total_records(),
            "trace_time_sec": self.trace_time,
            "preprocess_time_sec": self.preprocess_time,
            "mem_order_edges": len(self.pinball.mem_order),
            "cfg_refinements": self.collector.registry.refinements,
            "verified_save_restore_pairs":
                self.collector.save_restore.pair_count,
            "threads": self.collector.store.threads(),
        }
