"""Slicing configuration knobs, including the paper's precision features.

Every ablation benchmark flips one of these:

* ``refine_cfg`` — dynamic CFG refinement with observed indirect-jump
  targets (Section 5.1).  Off = the imprecise baseline of Figure 7.
* ``discover_jump_tables`` — an extra, oracle-ish mode our substrate makes
  possible: statically read switch jump tables so the CFG is complete from
  the start (real x86 static analysis cannot do this in general, which is
  the whole point of Section 5.1; useful as the precision upper bound).
* ``prune_save_restore`` / ``max_save`` — save/restore pair detection and
  spurious-dependence bypassing (Section 5.2); ``max_save`` is the paper's
  MaxSave tunable (10 in their Figure 13 experiments).
* ``block_size`` — the LP trace-block granularity of Zhang et al.
* ``track_stack_pointer`` — whether ``sp`` participates in register
  def/use chains.  Off by default: stack-slot dependences are already
  tracked precisely through memory addresses, and threading every push/pop
  through ``sp`` would chain all stack operations together (the same
  engineering choice practical binary slicers make).
* ``columnar`` — trace storage layout.  On (default): the interned
  columnar store with lazy record views (the predecoded engine's hot
  path).  Off: the seed record-per-row layout, kept as the perf
  benchmark's measured baseline and the differential tests' reference.
* ``index`` — the slice-query engine:

  - ``"ddg"`` (default): one pass over the trace compiles every
    data/control/save-restore dependence into a CSR dynamic dependence
    graph (:mod:`repro.slicing.ddg`); each query is then an int-array
    graph traversal with memoized reachability fragments and an LRU of
    complete slices — the build-once/query-many engine for cyclic
    debugging.
  - ``"columnar"``: the per-query backward scan over the interned
    columns with LP block skipping (falls back to the record scan when
    the trace store is row-based).
  - ``"rows"``: the seed record-at-a-time backward scan, kept as the
    differential tests' reference and the benchmark baseline.
  - ``"reexec"``: on-demand re-execution slicing — no full trace is
    collected at all.  One *selective-mode* scaffold replay (a fourth
    micro-op table: near-untraced speed, recording only per-thread pc
    streams plus the few execution-time facts static analysis cannot
    recover — branch region ends, syscall result presence, verified
    save/restore pairs) seeds the session; each query then resolves
    its dependences offline, re-replaying checkpoint-bounded windows
    of the pinball on demand to recover memory-access addresses,
    memoized into a sparse partial DDG that warms up across a
    session's queries.  Slices are byte-identical to ``"ddg"``
    (``tests/slicing/test_reexec_differential.py``); peak memory stays
    proportional to the windows a query actually touches, not the
    region.  Query cost scales with the pinball's checkpoint interval
    (each window pass replays at most one interval of steps).

  The environment variable ``REPRO_SLICE_INDEX`` overrides the default
  (used by CI to run the tier-1 suite against every engine); resolution
  goes through :mod:`repro.config` (explicit arg > CLI > env > default).
* ``shards`` — region-sharded parallel tracing (ISSUE 5): split the
  recorded execution into this many contiguous windows at snapshot
  boundaries, trace the windows concurrently in worker processes, and
  stitch the per-window columns back into one global trace + DDG that
  is byte-identical to the serial build.  ``1`` (the default) is the
  serial pipeline and the differential reference; ``REPRO_SLICE_SHARDS``
  overrides the default.  Sharding changes *when* work happens, never
  the result (``tests/slicing/test_shard_differential.py``).
* ``slice_cache_size`` / ``closure_memo_size`` — the DDG engine's result
  LRU (complete ``DynamicSlice`` objects keyed by criterion+locations)
  and reachable-set fragment memo; 0 disables either cache.
* ``obs`` — enable the process-wide observability registry
  (:data:`repro.obs.OBS`) for this session: per-phase spans and counters
  across the whole pipeline (vm, pinplay, slicing, debugger, maple).
  Defaults to the ``REPRO_OBS`` environment variable; the CLI's
  ``--obs`` flag and ``repro obs report`` set it too.  Purely
  observational — enabling it never changes replay or slice results
  (``tests/obs/test_obs_differential.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import config

#: The recognised slice-query engines (see the module docstring).
SLICE_INDEXES = ("ddg", "columnar", "rows", "reexec")


def _default_index() -> str:
    """Default engine via :func:`repro.config.slice_index`."""
    return config.slice_index()


def _default_obs() -> bool:
    """Default observability via :func:`repro.config.obs_enabled`."""
    return config.obs_enabled()


def _default_shards() -> int:
    """Default shard count via :func:`repro.config.slice_shards`."""
    return config.slice_shards()


@dataclass(frozen=True)
class SliceOptions:
    refine_cfg: bool = True
    discover_jump_tables: bool = False
    prune_save_restore: bool = True
    max_save: int = 10
    block_size: int = 1024
    track_stack_pointer: bool = False
    record_values: bool = True
    columnar: bool = True
    index: str = field(default_factory=_default_index)
    shards: int = field(default_factory=_default_shards)
    slice_cache_size: int = 128
    closure_memo_size: int = 256
    obs: bool = field(default_factory=_default_obs)

    def __post_init__(self) -> None:
        if self.max_save < 0:
            raise ValueError("max_save must be >= 0")
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")
        if self.index not in SLICE_INDEXES:
            raise ValueError("index must be one of %r, got %r"
                             % (SLICE_INDEXES, self.index))
        if self.shards < 1:
            raise ValueError("shards must be >= 1, got %r" % (self.shards,))
        if self.slice_cache_size < 0:
            raise ValueError("slice_cache_size must be >= 0")
        if self.closure_memo_size < 0:
            raise ValueError("closure_memo_size must be >= 0")
