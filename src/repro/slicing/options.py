"""Slicing configuration knobs, including the paper's precision features.

Every ablation benchmark flips one of these:

* ``refine_cfg`` — dynamic CFG refinement with observed indirect-jump
  targets (Section 5.1).  Off = the imprecise baseline of Figure 7.
* ``discover_jump_tables`` — an extra, oracle-ish mode our substrate makes
  possible: statically read switch jump tables so the CFG is complete from
  the start (real x86 static analysis cannot do this in general, which is
  the whole point of Section 5.1; useful as the precision upper bound).
* ``prune_save_restore`` / ``max_save`` — save/restore pair detection and
  spurious-dependence bypassing (Section 5.2); ``max_save`` is the paper's
  MaxSave tunable (10 in their Figure 13 experiments).
* ``block_size`` — the LP trace-block granularity of Zhang et al.
* ``track_stack_pointer`` — whether ``sp`` participates in register
  def/use chains.  Off by default: stack-slot dependences are already
  tracked precisely through memory addresses, and threading every push/pop
  through ``sp`` would chain all stack operations together (the same
  engineering choice practical binary slicers make).
* ``columnar`` — trace storage layout.  On (default): the interned
  columnar store with lazy record views (the predecoded engine's hot
  path).  Off: the seed record-per-row layout, kept as the perf
  benchmark's measured baseline and the differential tests' reference.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SliceOptions:
    refine_cfg: bool = True
    discover_jump_tables: bool = False
    prune_save_restore: bool = True
    max_save: int = 10
    block_size: int = 1024
    track_stack_pointer: bool = False
    record_values: bool = True
    columnar: bool = True

    def __post_init__(self) -> None:
        if self.max_save < 0:
            raise ValueError("max_save must be >= 0")
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")
