"""Command-line interface: the DrDebug toolchain as a terminal tool.

Subcommands mirror the workflow::

    python -m repro run prog.mc                      # plain execution
    python -m repro record prog.mc -o bug.pinball    # log (opt: expose)
    python -m repro convert bug.pinball -o bug.v2    # migrate v1 <-> v2
    python -m repro replay prog.mc bug.pinball       # deterministic replay
    python -m repro slice prog.mc bug.pinball --failure
    python -m repro races prog.mc bug.pinball        # HB race detection
    python -m repro debug prog.mc bug.pinball -x "break main" -x run
    python -m repro disasm prog.mc
    python -m repro serve --store ./pinballs        # resident debug service
    python -m repro client record prog.mc --expose 64
    python -m repro client slice <key> --var x

Programs are MiniC source files; pinballs are the files produced by
``record`` — zlib-compressed JSON (format v1, the default) or streamed
framed containers with embedded checkpoints (format v2, via ``--format
v2`` or ``REPRO_PINBALL_FORMAT=v2``; readers auto-detect either).  The
program name stored in a pinball is the source file's stem, so replaying
requires the matching source.  The
``serve`` / ``client`` pair runs the same workflow as a long-lived TCP
service over a content-addressed pinball store (see :mod:`repro.serve`).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro import config
from repro.debugger import DrDebugCLI, DrDebugSession
from repro.detect import detect_races
from repro.isa import disassemble
from repro.lang import CompileError, compile_source
from repro.maple import expose_and_record
from repro.obs import OBS, format_report, layer_totals, run_demo_cycle
from repro.pinplay import (Pinball, RegionSpec, generate_checkpoints,
                           record_region, replay)
from repro.serve import DebugClient, DebugServer, RpcRemoteError, run_server
from repro.serve.server import DEFAULT_HOST, DEFAULT_PORT
from repro.slicing import SliceOptions, SlicingSession
from repro.vm import Machine, RandomScheduler, RoundRobinScheduler


def _load_program(path: str):
    with open(path) as handle:
        source = handle.read()
    name = os.path.splitext(os.path.basename(path))[0]
    return compile_source(source, name=name), source


def _parse_inputs(text: Optional[str]) -> List[int]:
    if not text:
        return []
    return [int(token) for token in text.split(",") if token.strip()]


def _scheduler(args):
    if args.seed is None:
        return RoundRobinScheduler()
    return RandomScheduler(seed=args.seed, switch_prob=args.switch_prob)


def cmd_run(args) -> int:
    program, _source = _load_program(args.program)
    machine = Machine(program, scheduler=_scheduler(args),
                      inputs=_parse_inputs(args.inputs),
                      rand_seed=args.rand_seed)
    result = machine.run(max_steps=args.max_steps)
    for value in machine.output:
        print(value)
    if machine.failure is not None:
        print("ASSERTION FAILURE: code %s in thread %d"
              % (machine.failure["code"], machine.failure["tid"]),
              file=sys.stderr)
        return 1
    print("[%s: %d instructions retired]" % (result.reason, result.retired),
          file=sys.stderr)
    return machine.exit_code or 0


def _bad_checkpoint_interval(args) -> bool:
    """Reject a non-positive ``--checkpoint-interval`` before any work.

    Validated up front (before config resolution or loading anything):
    the knob's resolver would reject it too, but only after the program
    compile / pinball load, and with a traceback instead of a usage
    message.
    """
    interval = getattr(args, "checkpoint_interval", None)
    if interval is not None and interval <= 0:
        print("repro: --checkpoint-interval must be a positive step "
              "count (got %d)" % interval, file=sys.stderr)
        return True
    return False


def cmd_record(args) -> int:
    if _bad_checkpoint_interval(args):
        return 64
    program, _source = _load_program(args.program)
    region = RegionSpec(skip=args.skip, length=args.length)
    inputs = _parse_inputs(args.inputs)
    fmt = config.pinball_format(cli=args.format)

    if args.expose:
        if args.maple:
            result = expose_and_record(program, inputs=inputs,
                                       profile_seeds=range(4),
                                       max_active_runs=args.expose,
                                       region=region)
            if not result.exposed:
                print("no failure exposed (profiling + %d active runs)"
                      % result.active_runs, file=sys.stderr)
                return 1
            pinball = result.pinball
            print("exposed by %s%s" % (
                result.exposed_by,
                "" if result.iroot is None
                else " forcing %s" % result.iroot.describe(program)),
                file=sys.stderr)
        else:
            pinball = None
            for seed in range(args.expose):
                candidate = record_region(
                    program,
                    RandomScheduler(seed=seed,
                                    switch_prob=args.switch_prob),
                    region, inputs=inputs, rand_seed=args.rand_seed,
                    pinball_format=fmt,
                    checkpoint_interval=args.checkpoint_interval)
                if candidate.meta.get("failure"):
                    pinball = candidate
                    print("failure exposed with seed %d" % seed,
                          file=sys.stderr)
                    break
            if pinball is None:
                print("no failure in %d seeds" % args.expose,
                      file=sys.stderr)
                return 1
    else:
        # v2 on the fast record path streams frames straight to the
        # output file (flat peak memory); otherwise record in memory and
        # save in the requested format below.
        stream = fmt == "v2" and config.engine() == "predecoded"
        pinball = record_region(
            program, _scheduler(args), region,
            inputs=inputs, rand_seed=args.rand_seed,
            stream_path=args.output if stream else None,
            pinball_format=fmt,
            checkpoint_interval=args.checkpoint_interval)
        if stream:
            size = os.path.getsize(args.output)
            print("wrote %s: %d instructions, %d bytes, failure=%r"
                  % (args.output, pinball.total_instructions, size,
                     (pinball.meta.get("failure") or {}).get("code")))
            return 0

    size = pinball.save(args.output, format=fmt)
    print("wrote %s: %d instructions, %d bytes, failure=%r"
          % (args.output, pinball.total_instructions, size,
             (pinball.meta.get("failure") or {}).get("code")))
    return 0


def cmd_replay(args) -> int:
    program, _source = _load_program(args.program)
    pinball = Pinball.load(args.pinball)
    machine, result = replay(pinball, program, verify=not args.no_verify)
    for value in machine.output:
        print(value)
    print("[replayed %d steps, reason=%s, failure=%r]"
          % (pinball.total_steps, result.reason,
             (result.failure or {}).get("code")), file=sys.stderr)
    return 0 if result.failure is None else 1


def cmd_convert(args) -> int:
    """``repro convert``: migrate a pinball between formats v1 and v2."""
    if _bad_checkpoint_interval(args):
        return 64
    pinball = Pinball.load(args.input)
    source_fmt = pinball.format
    target = args.format or ("v1" if source_fmt == "v2" else "v2")
    if (target == "v2" and args.program
            and not getattr(pinball, "checkpoints", None)
            and not pinball.exclusions):
        # One replay pass makes the v2 file seekable: without embedded
        # checkpoints it is still valid, just O(region) to rewind.
        program, _source = _load_program(args.program)
        interval = config.checkpoint_interval(
            explicit=args.checkpoint_interval)
        pinball.checkpoints = generate_checkpoints(pinball, program,
                                                   interval)
    size = pinball.save(args.output, format=target)
    checkpoints = len(getattr(pinball, "checkpoints", ()) or ())
    print("wrote %s: %s -> %s, %d bytes, %d embedded checkpoint(s)"
          % (args.output, source_fmt, target, size,
             checkpoints if target == "v2" else 0))
    return 0


def cmd_slice(args) -> int:
    program, _source = _load_program(args.program)
    pinball = Pinball.load(args.pinball)
    option_kwargs = dict(prune_save_restore=not args.no_prune,
                         refine_cfg=not args.no_refine)
    if args.index:
        option_kwargs["index"] = config.slice_index(cli=args.index)
    if args.shards is not None:
        option_kwargs["shards"] = config.slice_shards(cli=args.shards)
    session = SlicingSession(pinball, program, SliceOptions(**option_kwargs))
    if args.var:
        dslice = session.slice_for_global(args.var)
    else:
        dslice = session.slice_for(session.failure_criterion())
    stats = session.stats()
    if args.json:
        # The canonical wire rendering — identical field names to the
        # serve `slice` verb (repro.serve.sessions.slice_payload).
        from repro.serve.sessions import slice_payload
        print(json.dumps(slice_payload(session, dslice), indent=2,
                         sort_keys=True))
    else:
        print("slice: %d instances, %d threads" % (
            len(dslice), len(dslice.threads())))
    print("[index=%s shards=%d trace=%.3fs build=%.3fs query=%.3fs "
          "edges=%d memo=%d/%d]"
          % (stats["slice_index"], stats["shards"], stats["trace_time_sec"],
             stats["ddg_build_time_sec"], session.last_slice_time,
             stats["edge_count"], stats["memo_hits"], stats["memo_misses"]),
          file=sys.stderr)
    if not args.json:
        for func, line in sorted(dslice.source_statements(),
                                 key=lambda fl: (fl[0] or "", fl[1] or 0)):
            if func is not None:
                print("  %s:%s" % (func, line))
    if args.output:
        dslice.save(args.output)
        print("slice saved to %s" % args.output)
    if args.slice_pinball:
        slice_pb = session.make_slice_pinball(dslice)
        size = slice_pb.save(args.slice_pinball)
        print("slice pinball: kept %d of %d instructions, %d bytes -> %s"
              % (slice_pb.meta["kept_instructions"],
                 slice_pb.meta["region_instructions"], size,
                 args.slice_pinball))
    return 0


def cmd_dual(args) -> int:
    program, _source = _load_program(args.program)
    failing = Pinball.load(args.failing)
    passing = Pinball.load(args.passing)
    from repro.slicing import dual_slice
    failing_session = SlicingSession(failing, program)
    passing_session = SlicingSession(passing, program)
    if args.var:
        failing_slice = failing_session.slice_for_global(args.var)
        passing_slice = passing_session.slice_for_global(args.var)
    else:
        failing_slice = failing_session.slice_for(
            failing_session.failure_criterion())
        criterion = failing_session.collector.store.get(
            failing_session.failure_criterion())
        passing_slice = passing_session.slice_for(
            passing_session.last_instance_at_line(criterion.line))
    print(dual_slice(failing_slice, passing_slice).describe())
    return 0


def cmd_races(args) -> int:
    program, _source = _load_program(args.program)
    pinball = Pinball.load(args.pinball)
    races = detect_races(pinball, program,
                         globals_only=not args.all_memory)
    if args.json:
        # The unified analysis-report envelope — identical field names
        # across library, CLI and the serve `races` verb.
        from repro.analysis.report import races_report_payload
        print(json.dumps(races_report_payload(races, program), indent=2,
                         sort_keys=True))
    else:
        for race in races:
            print(race.describe(program))
    print("[%d unique racy site pairs]" % len(races), file=sys.stderr)
    return 0 if not races else 2


def cmd_hunt(args) -> int:
    """``repro hunt``: the in-process bug firehose over one recording."""
    from repro.analysis.hunt import hunt
    program, _source = _load_program(args.program)
    pinball = Pinball.load(args.pinball)
    result = hunt(pinball, program,
                  budget=args.budget,
                  profile_seeds=args.profile_seeds,
                  minimize_budget=args.minimize_budget)
    payload = result.payload()
    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        paths = {}
        for cid, minimized in sorted(result.minimized.items()):
            path = os.path.join(args.out_dir,
                                "minimized-%s.pinball" % cid)
            minimized.save(path)
            paths[cid] = path
        for row in payload["findings"]:
            if row["candidate"] in paths:
                row["minimized_path"] = paths[row["candidate"]]
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            print(finding.description)
            if finding.slice_report is not None:
                print("  slice: %d instances over lines %s" % (
                    finding.slice_report.instance_count,
                    ",".join(str(l) for l in
                             sorted(finding.slice_report.lines)[:12])))
    print("[hunt: %d candidates, %d benign, %d confirmed finding(s), "
          "%d race(s)]" % (result.candidates_tried, result.benign,
                           len(result.findings), len(result.races)),
          file=sys.stderr)
    return 2 if result.findings else 0


def cmd_debug(args) -> int:
    program, source = _load_program(args.program)
    pinball = Pinball.load(args.pinball)
    option_kwargs = {}
    if args.slice_index:
        option_kwargs["index"] = config.slice_index(cli=args.slice_index)
    if args.shards is not None:
        option_kwargs["shards"] = config.slice_shards(cli=args.shards)
    slice_options = SliceOptions(**option_kwargs) if option_kwargs else None
    session = DrDebugSession(pinball, program, source=source,
                             slice_options=slice_options)
    if args.reverse:
        session.enable_reverse_debugging(args.checkpoint_interval)
    cli = DrDebugCLI(session)
    for command in args.execute or []:
        print("(drdebug) %s" % command)
        print(cli.execute(command))
        if cli.done:
            return 0
    if args.execute and not args.interactive:
        return 0
    # Interactive REPL.
    while not cli.done:
        try:
            line = input("(drdebug) ")
        except EOFError:
            break
        output = cli.execute(line)
        if output:
            print(output)
    return 0


def cmd_disasm(args) -> int:
    program, _source = _load_program(args.program)
    print(disassemble(program, args.function))
    return 0


def cmd_obs(args) -> int:
    """``repro obs report``: demo cycle + counter summary / JSON export."""
    if args.action != "report":
        print("unknown obs action %r (expected: report)" % args.action,
              file=sys.stderr)
        return 2
    if args.no_demo:
        snapshot = OBS.snapshot()
    else:
        # One full cyclic-debugging loop (Maple exposure -> record ->
        # replay -> slice -> slice pinball -> reverse debugging) so the
        # report shows live counters from every instrumented layer.
        snapshot = run_demo_cycle()
    print(format_report(snapshot), end="")
    totals = layer_totals(snapshot)
    print("layer totals: "
          + "  ".join("%s=%d" % (layer, total)
                      for layer, total in totals.items()),
          file=sys.stderr)
    if args.json:
        OBS.save(args.json)
        print("wrote %s" % args.json, file=sys.stderr)
    return 0


def cmd_serve(args) -> int:
    """``repro serve``: run the resident debug service until shutdown."""
    slice_options = None
    if args.shards is not None:
        slice_options = SliceOptions(
            shards=config.slice_shards(cli=args.shards))
    server = DebugServer(
        args.store, host=args.host, port=args.port, workers=args.workers,
        queue_limit=args.queue_limit, request_timeout=args.timeout,
        lru_entries=args.lru_entries, lru_bytes=args.lru_bytes,
        max_request_bytes=args.max_request_bytes,
        slice_options=slice_options)

    def announce(host: str, port: int) -> None:
        print("repro debug service on %s:%d (store: %s, workers: %d)"
              % (host, port, server.store.root, server.pool.workers),
              file=sys.stderr)

    run_server(server, port_file=args.port_file, announce=announce)
    print("server stopped", file=sys.stderr)
    return 0


def cmd_router(args) -> int:
    """``repro router``: key-affinity front end over N serve nodes."""
    from repro.serve.router import Router, parse_nodes, run_router
    spec = args.nodes if args.nodes else config.router_nodes()
    nodes = parse_nodes(spec)
    if not nodes:
        raise ValueError(
            "no serve nodes: pass --nodes host:port,... or set "
            "REPRO_ROUTER_NODES")
    router = Router(nodes, host=args.host, port=args.port,
                    health_interval=args.health_interval)

    def announce(host: str, port: int) -> None:
        print("repro router on %s:%d (%d nodes: %s)"
              % (host, port, len(nodes),
                 ",".join("%s:%d" % pair for pair in nodes)),
              file=sys.stderr)

    run_router(router, port_file=args.port_file, announce=announce)
    print("router stopped", file=sys.stderr)
    return 0


def _parse_mix(spec: str) -> dict:
    """``"slice=6,last_reads=3"`` → verb-weight dict (ValueError on junk)."""
    mix = {}
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        verb, _, weight = chunk.partition("=")
        if not _ or not verb:
            raise ValueError("bad mix entry %r (want verb=weight)" % chunk)
        mix[verb.strip()] = int(weight)
    if not mix:
        raise ValueError("empty mix %r" % spec)
    return mix


def cmd_client_bench(args) -> int:
    """``repro client bench``: closed-loop load generation."""
    from repro.serve.loadgen import run_bench
    with _client_connect(args) as client:
        listing = client.list(kind="pinball", tag=args.tag)
    keys = [entry["sha"] for entry in listing.get("entries", [])]
    mix = _parse_mix(args.mix) if args.mix else None
    record_source = None
    if args.record_program:
        with open(args.record_program) as handle:
            record_source = handle.read()
    report = run_bench(args.host, args.port, keys, ops=args.ops,
                       clients=args.clients, mix=mix, zipf_s=args.zipf,
                       seed=args.seed, record_source=record_source)
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


def _client_connect(args) -> DebugClient:
    return DebugClient(host=args.host, port=args.port, timeout=args.timeout)


def cmd_client(args) -> int:
    """``repro client``: one scripted RPC against a running service."""
    verb = args.verb
    if verb == "bench":
        # The load generator opens its own asyncio connections; only the
        # key listing goes through the one-shot client path below.
        return cmd_client_bench(args)
    if verb == "call" and args.params:
        # Validate local input before dialing out: bad JSON is a usage
        # error (65), not a network problem.
        try:
            json.loads(args.params)
        except ValueError as exc:
            raise ValueError("params is not valid JSON: %s" % exc)
    with _client_connect(args) as client:
        if verb == "ping":
            result = client.ping()
        elif verb == "stats":
            result = client.stats()
        elif verb == "list":
            result = client.list(kind=args.kind, tag=args.tag)
        elif verb == "gc":
            result = client.gc()
        elif verb == "shutdown":
            result = client.shutdown()
        elif verb == "put":
            with open(args.program) as handle:
                source = handle.read()
            with open(args.pinball, "rb") as handle:
                blob = handle.read()
            name = os.path.splitext(os.path.basename(args.program))[0]
            result = client.put_recording(source, blob, program_name=name,
                                          tags=args.tag or ())
        elif verb == "record":
            with open(args.program) as handle:
                source = handle.read()
            name = os.path.splitext(os.path.basename(args.program))[0]
            options = {"tags": args.tag or []}
            if args.expose:
                options["expose"] = args.expose
            if args.seed is not None:
                options["seed"] = args.seed
            options["switch_prob"] = args.switch_prob
            options["inputs"] = _parse_inputs(args.inputs)
            options["rand_seed"] = args.rand_seed
            if args.skip:
                options["skip"] = args.skip
            if args.length is not None:
                options["length"] = args.length
            result = client.record(source, name, **options)
        elif verb == "replay":
            result = client.replay(args.key)
        elif verb == "slice":
            options = {}
            if args.var:
                # Canonical wire vocabulary (legacy "var" still accepted
                # server-side by resolve_criterion).
                options["global_name"] = args.var
            if args.line is not None:
                options["line"] = args.line
            if args.tid is not None:
                options["tid"] = args.tid
            if args.slice_pinball:
                options["slice_pinball"] = True
            if args.index:
                options["index"] = config.slice_index(cli=args.index)
            if args.shards is not None:
                options["shards"] = config.slice_shards(cli=args.shards)
            result = client.slice(args.key, **options)
        elif verb == "last-reads":
            result = client.last_reads(args.key, count=args.count)
        elif verb == "races":
            result = client.races(args.key, all_memory=args.all_memory)
        elif verb == "hunt":
            options = {"minimize_budget": args.minimize_budget,
                       "profile_seeds": args.profile_seeds}
            if args.budget is not None:
                options["budget"] = args.budget
            if args.workers is not None:
                options["workers"] = args.workers
            result = client.hunt(args.key, **options)
        elif verb == "get":
            blob = client.get_blob(args.key)
            with open(args.output, "wb") as handle:
                handle.write(blob)
            result = {"sha": args.key, "bytes": len(blob),
                      "path": args.output}
        elif verb == "call":
            params = json.loads(args.params) if args.params else {}
            result = client.call(args.method, params)
        else:   # pragma: no cover - argparse enforces the choices
            print("unknown client verb %r" % verb, file=sys.stderr)
            return 2
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        _print_client_result(verb, result)
    if verb in ("races", "hunt"):
        # Same exit-code contract as the local `repro races`/`repro
        # hunt` commands: 2 when the analysis found something.
        return 2 if result.get("finding_count",
                               result.get("race_count", 0)) else 0
    return 0


def _print_client_result(verb: str, result) -> None:
    """Human-oriented rendering of one RPC result."""
    if verb == "list":
        for entry in result.get("entries", []):
            print("%s  %-8s %8dB  tags=%s  %s" % (
                entry["sha"][:16], entry["kind"], entry["size"],
                ",".join(entry["tags"]) or "-",
                entry.get("meta", {}).get("program_name", "")))
        print("[%d entries]" % len(result.get("entries", [])),
              file=sys.stderr)
        return
    if verb == "slice":
        print("slice: %d instances, %d threads"
              % (result["node_count"], result["thread_count"]))
        for func, line in result.get("source_statements", []):
            if func is not None:
                print("  %s:%s" % (func, line))
        if result.get("slice_pinball_key"):
            print("slice pinball stored as %s"
                  % result["slice_pinball_key"])
        return
    if verb == "races":
        for race in result.get("findings", result.get("races", [])):
            print(race["description"])
        print("[%d unique racy site pairs]"
              % result.get("finding_count", result.get("race_count", 0)),
              file=sys.stderr)
        return
    if verb == "hunt":
        for finding in result.get("findings", []):
            print(finding["description"])
            if finding.get("minimized_key"):
                print("  minimized pinball stored as %s"
                      % finding["minimized_key"])
        print("[hunt: %d candidates, %d benign, %d confirmed finding(s), "
              "%d race(s)]" % (result.get("candidates_tried", 0),
                               result.get("benign", 0),
                               result.get("finding_count", 0),
                               len(result.get("race_findings", []))),
              file=sys.stderr)
        return
    if verb == "replay":
        for value in result.get("output", []):
            print(value)
        print("[replayed %d steps, reason=%s, failure=%r]"
              % (result["steps"], result["reason"],
                 (result.get("failure") or {}).get("code")),
              file=sys.stderr)
        return
    print(json.dumps(result, indent=2, sort_keys=True))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DrDebug: deterministic replay based cyclic debugging "
                    "with dynamic slicing")
    parser.add_argument("--obs", action="store_true",
                        help="enable the observability registry "
                             "(counters/spans across all layers; also "
                             "enabled by REPRO_OBS=1)")
    parser.add_argument("--obs-json", metavar="PATH", default=None,
                        help="with --obs: export the registry snapshot "
                             "as JSON after the command")
    sub = parser.add_subparsers(dest="command", required=True)

    def common_run_args(p):
        p.add_argument("program", help="MiniC source file")
        p.add_argument("--seed", type=int, default=None,
                       help="random-scheduler seed (default: round-robin)")
        p.add_argument("--switch-prob", type=float, default=0.2)
        p.add_argument("--inputs", help="comma-separated input() values")
        p.add_argument("--rand-seed", type=int, default=0)

    run = sub.add_parser("run", help="execute a program")
    common_run_args(run)
    run.add_argument("--max-steps", type=int, default=10_000_000)
    run.set_defaults(func=cmd_run)

    record = sub.add_parser("record", help="log an execution into a pinball")
    common_run_args(record)
    record.add_argument("-o", "--output", required=True)
    record.add_argument("--skip", type=int, default=0,
                        help="main-thread instructions to fast-forward")
    record.add_argument("--length", type=int, default=None,
                        help="main-thread region length")
    record.add_argument("--expose", type=int, default=0, metavar="N",
                        help="search up to N seeds for a failing schedule")
    record.add_argument("--maple", action="store_true",
                        help="with --expose: use Maple active scheduling")
    record.add_argument("--format", choices=("v1", "v2"), default=None,
                        help="pinball format (default: "
                             "$REPRO_PINBALL_FORMAT or v1); v2 streams "
                             "frames to disk and embeds checkpoints")
    record.add_argument("--checkpoint-interval", type=int, default=None,
                        metavar="N",
                        help="steps between embedded checkpoints "
                             "(default: $REPRO_CHECKPOINT_INTERVAL or "
                             "500); smaller N means bigger v2 files but "
                             "cheaper --index reexec queries (each "
                             "re-replay window is at most N steps)")
    record.set_defaults(func=cmd_record)

    convert = sub.add_parser(
        "convert", help="migrate a pinball between formats v1 and v2")
    convert.add_argument("input", help="pinball file (either format)")
    convert.add_argument("-o", "--output", required=True)
    convert.add_argument("--format", choices=("v1", "v2"), default=None,
                         help="target format (default: the other one)")
    convert.add_argument("--program", default=None,
                         help="MiniC source; with v2 output, replay once "
                              "to embed checkpoints (O(chunk) rewind)")
    convert.add_argument("--checkpoint-interval", type=int, default=None,
                         metavar="N",
                         help="steps between embedded checkpoints "
                              "(default: $REPRO_CHECKPOINT_INTERVAL or "
                              "500); smaller N means bigger v2 files but "
                              "cheaper --index reexec queries (each "
                              "re-replay window is at most N steps)")
    convert.set_defaults(func=cmd_convert)

    rep = sub.add_parser("replay", help="deterministically replay a pinball")
    rep.add_argument("program")
    rep.add_argument("pinball")
    rep.add_argument("--no-verify", action="store_true")
    rep.set_defaults(func=cmd_replay)

    sl = sub.add_parser("slice", help="compute a dynamic slice")
    sl.add_argument("program")
    sl.add_argument("pinball")
    sl.add_argument("--var", help="slice for a global variable "
                                  "(default: the recorded failure)")
    sl.add_argument("-o", "--output", help="save the slice as JSON")
    sl.add_argument("--slice-pinball", help="relog into a slice pinball")
    sl.add_argument("--no-prune", action="store_true",
                    help="disable save/restore pruning")
    sl.add_argument("--no-refine", action="store_true",
                    help="disable indirect-jump CFG refinement")
    sl.add_argument("--index", choices=("ddg", "columnar", "rows", "reexec"),
                    default=None,
                    help="slice-query engine (default: the build-once DDG "
                         "index, or $REPRO_SLICE_INDEX)")
    sl.add_argument("--shards", type=int, default=None, metavar="K",
                    help="trace the recording as K parallel region shards "
                         "(default: 1 = serial, or $REPRO_SLICE_SHARDS; "
                         "results are identical either way)")
    sl.add_argument("--json", action="store_true",
                    help="print the canonical slice payload (same field "
                         "names as the serve `slice` verb)")
    sl.set_defaults(func=cmd_slice)

    dual = sub.add_parser(
        "dual", help="diff a failing run's slice against a passing run's")
    dual.add_argument("program")
    dual.add_argument("failing", help="pinball of the failing run")
    dual.add_argument("passing", help="pinball of a passing run")
    dual.add_argument("--var", help="slice this global in both runs "
                                    "(default: the failing run's failure "
                                    "and the same line in the passing run)")
    dual.set_defaults(func=cmd_dual)

    races = sub.add_parser("races", help="happens-before race detection")
    races.add_argument("program")
    races.add_argument("pinball")
    races.add_argument("--all-memory", action="store_true",
                       help="watch heap and stacks too, not just globals")
    races.add_argument("--json", action="store_true",
                       help="print the canonical race payload (same field "
                            "names as the serve `races` verb)")
    races.set_defaults(func=cmd_races)

    hunt_p = sub.add_parser(
        "hunt", help="in-situ bug hunt: detect races online, permute "
                     "schedules, minimize confirmed failures")
    hunt_p.add_argument("program")
    hunt_p.add_argument("pinball")
    hunt_p.add_argument("--budget", type=int, default=None,
                        help="max candidate schedules "
                             "(default: REPRO_HUNT_BUDGET)")
    hunt_p.add_argument("--profile-seeds", type=int, default=4,
                        help="maple profiling runs feeding iRoot "
                             "candidates")
    hunt_p.add_argument("--minimize-budget", type=int, default=64,
                        help="max re-executions per finding during "
                             "schedule minimization")
    hunt_p.add_argument("--out-dir", default=None, metavar="DIR",
                        help="save each finding's minimized pinball here")
    hunt_p.add_argument("--json", action="store_true",
                        help="print the unified analysis-report payload")
    hunt_p.set_defaults(func=cmd_hunt)

    debug = sub.add_parser("debug", help="gdb-style replay debugger")
    debug.add_argument("program")
    debug.add_argument("pinball")
    debug.add_argument("-x", "--execute", action="append", metavar="CMD",
                       help="run a debugger command (repeatable)")
    debug.add_argument("-i", "--interactive", action="store_true",
                       help="drop into the REPL after -x commands")
    debug.add_argument("--reverse", action="store_true",
                       help="enable checkpoint-based reverse debugging")
    debug.add_argument("--checkpoint-interval", type=int, default=None,
                       help="steps between reverse-debug checkpoints "
                            "(default: $REPRO_CHECKPOINT_INTERVAL or 500)")
    debug.add_argument("--slice-index", choices=("ddg", "columnar", "rows", "reexec"),
                       default=None,
                       help="slice-query engine for slicing commands")
    debug.add_argument("--shards", type=int, default=None, metavar="K",
                       help="region-sharded trace width for slicing "
                            "commands (default: serial)")
    debug.set_defaults(func=cmd_debug)

    dis = sub.add_parser("disasm", help="disassemble a compiled program")
    dis.add_argument("program")
    dis.add_argument("--function", default=None)
    dis.set_defaults(func=cmd_disasm)

    obs = sub.add_parser(
        "obs", help="observability: summarize pipeline counters")
    obs.add_argument("action", nargs="?", default="report",
                     help="report (default): run a demo cyclic-debugging "
                          "loop and print per-layer counters")
    obs.add_argument("--json", metavar="PATH", default=None,
                     help="also export the registry snapshot as JSON")
    obs.add_argument("--no-demo", action="store_true",
                     help="report whatever is already in the registry "
                          "instead of running the demo cycle")
    obs.set_defaults(func=cmd_obs)

    serve = sub.add_parser(
        "serve", help="run the resident debug service (JSON-RPC over TCP)")
    serve.add_argument("--store", default=".repro-store", metavar="DIR",
                       help="pinball repository root (default: "
                            ".repro-store)")
    serve.add_argument("--host", default=DEFAULT_HOST)
    serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help="TCP port (0 = pick a free port; see "
                            "--port-file)")
    serve.add_argument("--workers", type=int, default=None,
                       help="slice-worker processes (default: "
                            "$REPRO_SERVE_WORKERS or 2)")
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="max in-flight requests before backpressure "
                            "rejection")
    serve.add_argument("--timeout", type=float, default=120.0,
                       help="per-request timeout in seconds")
    serve.add_argument("--lru-entries", type=int, default=4,
                       help="resident sessions per worker")
    serve.add_argument("--lru-bytes", type=int, default=512 * 1024 * 1024,
                       help="approximate session-cache bytes per worker")
    serve.add_argument("--max-request-bytes", type=int,
                       default=8 * 1024 * 1024,
                       help="per-connection request-line size cap")
    serve.add_argument("--port-file", default=None, metavar="PATH",
                       help="write the bound port here once listening "
                            "(for scripts using --port 0)")
    serve.add_argument("--shards", type=int, default=None, metavar="K",
                       help="build resident sessions as K parallel region "
                            "shards (spawns non-daemonic workers so they "
                            "can fork the shard tracers)")
    serve.set_defaults(func=cmd_serve)

    router = sub.add_parser(
        "router", help="key-affinity front end over N running serve nodes")
    router.add_argument("--nodes", default=None, metavar="HOST:PORT,...",
                        help="comma-separated serve nodes (default: "
                             "$REPRO_ROUTER_NODES)")
    router.add_argument("--host", default=DEFAULT_HOST)
    router.add_argument("--port", type=int, default=0,
                        help="TCP port (default 0 = pick a free port; "
                             "see --port-file)")
    router.add_argument("--port-file", default=None, metavar="PATH",
                        help="write the bound port here once listening")
    router.add_argument("--health-interval", type=float, default=2.0,
                        help="seconds between node health probes")
    router.set_defaults(func=cmd_router)

    client = sub.add_parser(
        "client", help="talk to a running debug service")
    client.add_argument("--host", default=DEFAULT_HOST)
    client.add_argument("--port", type=int, default=DEFAULT_PORT)
    client.add_argument("--timeout", type=float, default=120.0)
    client.add_argument("--json", action="store_true",
                        help="print the raw JSON result")
    cverbs = client.add_subparsers(dest="verb", required=True)
    cverbs.add_parser("ping", help="liveness check")
    cverbs.add_parser("stats", help="server/pool/store/obs statistics")
    cverbs.add_parser("gc", help="drop untagged store entries")
    cverbs.add_parser("shutdown", help="stop the server")
    clist = cverbs.add_parser("list", help="list stored blobs")
    clist.add_argument("--kind", default=None)
    clist.add_argument("--tag", default=None)
    cput = cverbs.add_parser(
        "put", help="upload a program + pinball as one recording")
    cput.add_argument("program", help="MiniC source file")
    cput.add_argument("pinball", help="pinball file from `repro record`")
    cput.add_argument("--tag", action="append", metavar="TAG")
    crec = cverbs.add_parser(
        "record", help="record server-side from source")
    crec.add_argument("program", help="MiniC source file")
    crec.add_argument("--seed", type=int, default=None)
    crec.add_argument("--switch-prob", type=float, default=0.2)
    crec.add_argument("--inputs", help="comma-separated input() values")
    crec.add_argument("--rand-seed", type=int, default=0)
    crec.add_argument("--skip", type=int, default=0)
    crec.add_argument("--length", type=int, default=None)
    crec.add_argument("--expose", type=int, default=0, metavar="N")
    crec.add_argument("--tag", action="append", metavar="TAG")
    crep = cverbs.add_parser("replay", help="replay a stored recording")
    crep.add_argument("key")
    csl = cverbs.add_parser("slice", help="slice a stored recording")
    csl.add_argument("key")
    csl.add_argument("--var", help="slice for a global variable (sent as "
                                   "the canonical 'global_name' field)")
    csl.add_argument("--line", type=int, default=None)
    csl.add_argument("--tid", type=int, default=None,
                     help="restrict --var/--line resolution to one thread")
    csl.add_argument("--slice-pinball", action="store_true",
                     help="store the relogged slice pinball too")
    csl.add_argument("--index", choices=("ddg", "columnar", "rows", "reexec"),
                     default=None)
    csl.add_argument("--shards", type=int, default=None, metavar="K",
                     help="build the session region-sharded (needs a "
                          "shard-capable server, see `repro serve "
                          "--shards`)")
    clr = cverbs.add_parser("last-reads",
                            help="latest memory-reading instances")
    clr.add_argument("key")
    clr.add_argument("--count", type=int, default=10)
    crc = cverbs.add_parser("races", help="race-detect a stored recording")
    crc.add_argument("key")
    crc.add_argument("--all-memory", action="store_true")
    chunt = cverbs.add_parser(
        "hunt", help="run the bug firehose on a stored recording "
                     "(sharded over the service's worker pool)")
    chunt.add_argument("key")
    chunt.add_argument("--budget", type=int, default=None)
    chunt.add_argument("--profile-seeds", type=int, default=4)
    chunt.add_argument("--minimize-budget", type=int, default=64)
    chunt.add_argument("--workers", type=int, default=None,
                       help="evaluation lanes (default: REPRO_HUNT_WORKERS)")
    cget = cverbs.add_parser("get", help="download a stored blob")
    cget.add_argument("key")
    cget.add_argument("-o", "--output", required=True)
    cbench = cverbs.add_parser(
        "bench", help="closed-loop load generator (zipf-popular keys)")
    cbench.add_argument("--clients", type=int, default=8,
                        help="concurrent closed-loop clients")
    cbench.add_argument("--ops", type=int, default=100,
                        help="total requests across all clients")
    cbench.add_argument("--zipf", type=float, default=1.1,
                        help="zipf skew over key popularity (higher = "
                             "hotter head)")
    cbench.add_argument("--seed", type=int, default=0,
                        help="deterministic request-stream seed")
    cbench.add_argument("--tag", default=None,
                        help="bench only stored pinballs with this tag")
    cbench.add_argument("--mix", default=None, metavar="VERB=W,...",
                        help="request mix, e.g. slice=6,last_reads=3,"
                             "replay=1 (the default)")
    cbench.add_argument("--record-program", default=None, metavar="SRC",
                        help="MiniC source for a 'record' mix component")
    ccall = cverbs.add_parser("call", help="raw JSON-RPC method call")
    ccall.add_argument("method")
    ccall.add_argument("params", nargs="?", default=None,
                       help="params as a JSON object")
    client.set_defaults(func=cmd_client)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "obs", False):
        OBS.enable()
    try:
        status = args.func(args)
    except CompileError as exc:
        print("compile error: %s" % exc, file=sys.stderr)
        return 64
    except KeyboardInterrupt:
        # Ctrl-C in `repro serve` / an interactive client is a normal way
        # to stop: exit cleanly (128 + SIGINT), no traceback.
        print("\ninterrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Reader went away (e.g. `repro client list | head`).  Redirect
        # stdout at the fd level so the interpreter's exit-time flush
        # does not raise a secondary error, and exit 128 + SIGPIPE.
        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
        except OSError:
            pass
        return 141
    except ConnectionRefusedError:
        print("error: connection refused — is `repro serve` running "
              "there?", file=sys.stderr)
        return 69
    except (ConnectionError, TimeoutError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 69
    except FileNotFoundError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 66
    except RpcRemoteError as exc:
        print("server error %d: %s" % (exc.code, exc.remote_message),
              file=sys.stderr)
        return 70
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 65
    if getattr(args, "obs", False):
        if args.obs_json:
            OBS.save(args.obs_json)
            print("observability snapshot written to %s" % args.obs_json,
                  file=sys.stderr)
        else:
            print(format_report(OBS.snapshot()), end="", file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main())
