"""Linked program image: code, data, symbols, and debug information.

A :class:`Program` is the unit everything downstream consumes: the VM loads
it, the static analyzer discovers code in it, the compiler produces it, and
pinballs reference it by name.  Code lives in its own address space (an
instruction's address is its index in :attr:`Program.instructions`), data
lives in a flat word-addressed memory whose low addresses hold globals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.isa.instructions import Instr, Label, Opcode

#: Data address where the globals segment starts.
GLOBAL_BASE = 16
#: Reserved low addresses (address 0 acts as a trap/null).
NULL_ADDR = 0


class LinkError(Exception):
    """Raised when symbol resolution fails at link time."""


@dataclass
class GlobalVar:
    """A global variable: ``size`` words at data address ``addr``.

    ``is_array`` distinguishes ``int a[1]`` from ``int a`` — they have the
    same size but different expression semantics (array names decay to
    their address; scalars evaluate to their value).
    """

    name: str
    size: int = 1
    addr: int = -1
    init: Optional[Sequence[Union[int, float]]] = None
    is_array: bool = False


@dataclass
class DataDef:
    """A read-only data blob (e.g. a switch jump table of code labels)."""

    name: str
    values: Sequence[Union[int, float, Label]] = ()
    addr: int = -1


@dataclass
class Function:
    """A function: a contiguous run of instructions plus debug info.

    ``local_offsets`` maps local variable names to fp-relative word offsets
    (negative: locals; positive: arguments), which is how the debugger
    resolves ``print x`` inside a frame.
    """

    name: str
    instrs: List[Instr] = field(default_factory=list)
    entry: int = -1
    params: List[str] = field(default_factory=list)
    local_offsets: Dict[str, int] = field(default_factory=dict)
    #: Locals promoted to callee-saved registers: name -> register name.
    reg_locals: Dict[str, str] = field(default_factory=dict)
    source_file: Optional[str] = None

    @property
    def end(self) -> int:
        """One past the address of this function's last instruction."""
        return self.entry + len(self.instrs)

    def contains(self, addr: int) -> bool:
        return self.entry <= addr < self.end


class Program:
    """A fully linked program.

    Build one by appending :class:`Function` and :class:`GlobalVar` /
    :class:`DataDef` objects and then calling :meth:`link`, which assigns
    code and data addresses and resolves :class:`Label` operands.
    """

    def __init__(self, name: str = "a.out") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVar] = {}
        self.data_defs: Dict[str, DataDef] = {}
        self.instructions: List[Instr] = []
        self.entry_function = "main"
        self.data_size = GLOBAL_BASE
        self._linked = False
        #: label name -> code address, for functions and local code labels.
        self.code_symbols: Dict[str, int] = {}

    # -- construction -------------------------------------------------------

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise LinkError("duplicate function %r" % (function.name,))
        self.functions[function.name] = function
        return function

    def add_global(self, var: GlobalVar) -> GlobalVar:
        if var.name in self.globals or var.name in self.data_defs:
            raise LinkError("duplicate global %r" % (var.name,))
        self.globals[var.name] = var
        return var

    def add_data(self, data: DataDef) -> DataDef:
        if data.name in self.data_defs or data.name in self.globals:
            raise LinkError("duplicate data %r" % (data.name,))
        self.data_defs[data.name] = data
        return data

    # -- linking -------------------------------------------------------------

    def link(self, code_labels: Optional[Dict[str, Dict[str, int]]] = None) -> "Program":
        """Assign addresses and resolve labels.

        ``code_labels`` optionally maps function name -> {label -> local
        instruction index} for labels that are internal to a function body
        (the assembler and compiler both supply this).
        """
        if self._linked:
            raise LinkError("program already linked")
        code_labels = code_labels or {}

        # Lay out code: functions in insertion order.
        self.instructions = []
        for function in self.functions.values():
            function.entry = len(self.instructions)
            self.code_symbols[function.name] = function.entry
            for index, instr in enumerate(function.instrs):
                instr.addr = function.entry + index
                instr.func = function.name
                self.instructions.append(instr)
        for fname, labels in code_labels.items():
            function = self.functions.get(fname)
            if function is None:
                raise LinkError("labels given for unknown function %r" % (fname,))
            for label, local_index in labels.items():
                if not 0 <= local_index <= len(function.instrs):
                    raise LinkError(
                        "label %r out of range in %r" % (label, fname))
                self.code_symbols["%s.%s" % (fname, label)] = (
                    function.entry + local_index)

        # Lay out data: globals then data defs, after the reserved region.
        addr = GLOBAL_BASE
        for var in self.globals.values():
            var.addr = addr
            addr += max(1, var.size)
        for data in self.data_defs.values():
            data.addr = addr
            addr += max(1, len(data.values))
        self.data_size = addr

        # Resolve Label operands in instructions.
        for instr in self.instructions:
            if not instr.operands:
                continue
            resolved = tuple(
                self._resolve_operand(instr, op) for op in instr.operands)
            instr.operands = resolved
        self._linked = True
        return self

    def _resolve_operand(self, instr: Instr, operand):
        from repro.isa.instructions import Imm
        if not isinstance(operand, Label):
            return operand
        addr = self.resolve_symbol(operand.name, scope=instr.func)
        if addr is None:
            raise LinkError(
                "unresolved symbol %r in %s at %d"
                % (operand.name, instr.func, instr.addr))
        # Control transfers keep code addresses as Imm too; the VM treats
        # branch/call targets as plain code addresses.
        return Imm(addr)

    def resolve_symbol(self, name: str, scope: Optional[str] = None) -> Optional[int]:
        """Resolve a symbol to a code or data address.

        Lookup order: function-local code label, function name, global
        variable, data definition.
        """
        if scope is not None:
            local = self.code_symbols.get("%s.%s" % (scope, name))
            if local is not None:
                return local
        if name in self.code_symbols:
            return self.code_symbols[name]
        if name in self.globals:
            return self.globals[name].addr
        if name in self.data_defs:
            return self.data_defs[name].addr
        # Unqualified function-local code label (used by jump-table data
        # in hand-written assembly); resolve if unambiguous.
        suffix = "." + name
        matches = [addr for sym, addr in self.code_symbols.items()
                   if sym.endswith(suffix)]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise LinkError("ambiguous label %r" % name)
        return None

    # -- queries --------------------------------------------------------------

    def instr_at(self, addr: int) -> Instr:
        return self.instructions[addr]

    def function_at(self, addr: int) -> Optional[Function]:
        """The function containing code address ``addr`` (linear scan cached)."""
        for function in self.functions.values():
            if function.contains(addr):
                return function
        return None

    def line_of(self, addr: int) -> Optional[int]:
        """Source line of a code address, if debug info is present."""
        if 0 <= addr < len(self.instructions):
            return self.instructions[addr].line
        return None

    def addresses_of_line(self, line: int, func: Optional[str] = None) -> List[int]:
        """All code addresses attributed to a source line (for breakpoints)."""
        result = []
        for instr in self.instructions:
            if instr.line == line and (func is None or instr.func == func):
                result.append(instr.addr)
        return result

    def initial_data_image(self) -> Dict[int, Union[int, float]]:
        """Initial contents of the data segment (only non-zero words)."""
        image: Dict[int, Union[int, float]] = {}
        for var in self.globals.values():
            if var.init is None:
                continue
            for index, value in enumerate(var.init):
                if value != 0:
                    image[var.addr + index] = value
        for data in self.data_defs.values():
            for index, value in enumerate(data.values):
                if isinstance(value, Label):
                    addr = self.resolve_symbol(value.name)
                    if addr is None:
                        raise LinkError(
                            "unresolved label %r in data %r"
                            % (value.name, data.name))
                    value = addr
                if value != 0:
                    image[data.addr + index] = value
        return image

    def __len__(self) -> int:
        return len(self.instructions)
