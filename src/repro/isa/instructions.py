"""Instruction and operand definitions for the mini-ISA.

The machine is register based with a downward-growing stack:

* eight general purpose registers ``r0`` .. ``r7`` (``r0`` carries return
  values; arguments are pushed on the stack by the caller);
* ``sp`` (stack pointer) and ``fp`` (frame pointer);
* a flat word-addressed data memory, disjoint from code addresses;
* code addresses are indices into the program's flat instruction list.

Every instruction knows which registers it defines and uses; the memory
addresses it touches are only known at execution time and are reported by
the VM in trace records.  This def/use interface is what the dynamic slicer
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union


class Opcode:
    """Namespace of opcode mnemonics (plain strings, compared by identity)."""

    MOV = "mov"        # mov rd, src          rd := src
    LD = "ld"          # ld rd, [rb+off]      rd := M[rb+off]
    ST = "st"          # st [rb+off], src     M[rb+off] := src
    LEA = "lea"        # lea rd, label|imm    rd := address
    BINOP = "binop"    # <op> rd, ra, src     rd := ra <op> src
    UNOP = "unop"      # <op> rd, ra          rd := <op> ra
    JMP = "jmp"        # jmp label            unconditional
    BR = "br"          # br rc, label         if rc != 0 goto label
    BRZ = "brz"        # brz rc, label        if rc == 0 goto label
    IJMP = "ijmp"      # ijmp rt              goto rt (indirect, jump tables)
    CALL = "call"      # call label           push pc+1; goto label
    ICALL = "icall"    # icall rt             push pc+1; goto rt
    RET = "ret"        # ret                  pop return address; goto it
    PUSH = "push"      # push src             sp -= 1; M[sp] := src
    POP = "pop"        # pop rd               rd := M[sp]; sp += 1
    SYS = "sys"        # sys name             syscall, args/results in r0..r3
    HALT = "halt"      # halt                 stop the current thread
    NOP = "nop"

    ALL = (
        MOV, LD, ST, LEA, BINOP, UNOP, JMP, BR, BRZ, IJMP,
        CALL, ICALL, RET, PUSH, POP, SYS, HALT, NOP,
    )


#: Sub-operations usable with ``Opcode.BINOP``.
BINARY_OPS = (
    "add", "sub", "mul", "div", "mod",
    "and", "or", "xor", "shl", "shr",
    "eq", "ne", "lt", "le", "gt", "ge",
)

#: The comparison subset of :data:`BINARY_OPS` (results are 0/1).
COMPARE_OPS = ("eq", "ne", "lt", "le", "gt", "ge")

#: Sub-operations usable with ``Opcode.UNOP``.
UNARY_OPS = ("neg", "not", "int", "float")

GENERAL_REGISTERS = tuple("r%d" % i for i in range(8))
SPECIAL_REGISTERS = ("sp", "fp")
ALL_REGISTERS = GENERAL_REGISTERS + SPECIAL_REGISTERS


@dataclass(frozen=True)
class Reg:
    """A register operand, e.g. ``Reg('r3')``."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in ALL_REGISTERS:
            raise ValueError("unknown register %r" % (self.name,))

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Imm:
    """An immediate constant operand (int or float)."""

    value: Union[int, float]

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Mem:
    """A memory operand ``[base + offset]`` with a register base."""

    base: Reg
    offset: int = 0

    def __str__(self) -> str:
        if self.offset == 0:
            return "[%s]" % (self.base,)
        sign = "+" if self.offset >= 0 else "-"
        return "[%s%s%d]" % (self.base, sign, abs(self.offset))


@dataclass(frozen=True)
class Label:
    """A symbolic code or data label, resolved to an address at link time."""

    name: str

    def __str__(self) -> str:
        return self.name


Operand = Union[Reg, Imm, Mem, Label]


@dataclass
class Instr:
    """One machine instruction.

    ``addr`` is assigned at link time (index into the program's flat
    instruction list).  ``line`` and ``func`` carry source debug
    information used by the debugger and by statement-level slicing.
    ``subop`` selects the arithmetic/compare operation for ``BINOP`` /
    ``UNOP`` and carries the syscall name for ``SYS``.
    """

    op: str
    operands: Tuple[Operand, ...] = ()
    subop: Optional[str] = None
    line: Optional[int] = None
    func: Optional[str] = None
    addr: int = -1
    #: Free-form annotations used by analyses (e.g. ``"save"``/``"restore"``
    #: markers are *not* placed here -- the paper's point is that the binary
    #: carries no such markers; this exists for tests and diagnostics only).
    comment: str = ""

    def __post_init__(self) -> None:
        if self.op not in Opcode.ALL:
            raise ValueError("unknown opcode %r" % (self.op,))
        if self.op == Opcode.BINOP and self.subop not in BINARY_OPS:
            raise ValueError("bad binop subop %r" % (self.subop,))
        if self.op == Opcode.UNOP and self.subop not in UNARY_OPS:
            raise ValueError("bad unop subop %r" % (self.subop,))
        if self.op == Opcode.SYS and not self.subop:
            raise ValueError("sys requires a syscall name in subop")

    # -- static def/use information (registers only; memory is dynamic) ----

    def reg_defs(self) -> Tuple[str, ...]:
        """Registers written by this instruction."""
        op = self.op
        if op in (Opcode.MOV, Opcode.LD, Opcode.LEA):
            return (_reg_name(self.operands[0]),)
        if op in (Opcode.BINOP, Opcode.UNOP):
            return (_reg_name(self.operands[0]),)
        if op == Opcode.PUSH:
            return ("sp",)
        if op == Opcode.POP:
            return (_reg_name(self.operands[0]), "sp")
        if op in (Opcode.CALL, Opcode.ICALL):
            return ("sp",)
        if op == Opcode.RET:
            return ("sp",)
        if op == Opcode.SYS:
            # Syscalls may write results into r0/r1; treated conservatively.
            return ("r0", "r1")
        return ()

    def reg_uses(self) -> Tuple[str, ...]:
        """Registers read by this instruction."""
        op = self.op
        uses = []
        if op == Opcode.MOV:
            _collect_src(self.operands[1], uses)
        elif op == Opcode.LD:
            uses.append(self.operands[1].base.name)
        elif op == Opcode.ST:
            uses.append(self.operands[0].base.name)
            _collect_src(self.operands[1], uses)
        elif op == Opcode.BINOP:
            _collect_src(self.operands[1], uses)
            _collect_src(self.operands[2], uses)
        elif op == Opcode.UNOP:
            _collect_src(self.operands[1], uses)
        elif op in (Opcode.BR, Opcode.BRZ):
            uses.append(_reg_name(self.operands[0]))
        elif op in (Opcode.IJMP, Opcode.ICALL):
            uses.append(_reg_name(self.operands[0]))
        elif op == Opcode.PUSH:
            _collect_src(self.operands[0], uses)
            uses.append("sp")
        elif op == Opcode.POP:
            uses.append("sp")
        elif op in (Opcode.CALL,):
            uses.append("sp")
        elif op == Opcode.RET:
            uses.append("sp")
        elif op == Opcode.SYS:
            uses.extend(("r0", "r1", "r2", "r3"))
        return tuple(dict.fromkeys(uses))

    # -- decode metadata (consumed by the predecode layer) ------------------

    def operand_kinds(self) -> str:
        """Operand shape string, one char per operand: r/i/m/l.

        The predecoder (:mod:`repro.vm.microops`) specializes a handler
        closure on this shape at decode time — e.g. ``mov`` with shape
        ``"ri"`` binds an immediate-store handler, ``"rr"`` a
        register-copy handler — instead of isinstance-testing operands in
        the execution hot path.  Unknown shapes (``"?"``) make the
        decoder fall back to the generic interpreter so malformed
        programs keep their exact legacy error behavior.
        """
        return "".join(_OPERAND_KIND_CODES.get(type(operand), "?")
                       for operand in self.operands)

    def falls_through(self) -> bool:
        """True if the next sequential pc is a possible successor."""
        return self.op not in (Opcode.JMP, Opcode.IJMP, Opcode.RET)

    # -- classification helpers --------------------------------------------

    def is_branch(self) -> bool:
        """True for conditional branches (control-dependence sources)."""
        return self.op in (Opcode.BR, Opcode.BRZ)

    def is_indirect_jump(self) -> bool:
        return self.op == Opcode.IJMP

    def is_control_transfer(self) -> bool:
        return self.op in (
            Opcode.JMP, Opcode.BR, Opcode.BRZ, Opcode.IJMP,
            Opcode.CALL, Opcode.ICALL, Opcode.RET, Opcode.HALT,
        )

    def branch_target(self) -> Optional[str]:
        """Label name of the static target, if any."""
        if self.op in (Opcode.JMP, Opcode.CALL):
            target = self.operands[0]
            return target.name if isinstance(target, Label) else None
        if self.op in (Opcode.BR, Opcode.BRZ):
            target = self.operands[1]
            return target.name if isinstance(target, Label) else None
        return None

    def __str__(self) -> str:
        parts = []
        if self.op in (Opcode.BINOP, Opcode.UNOP):
            parts.append(self.subop)
        elif self.op == Opcode.SYS:
            parts.append("sys %s" % self.subop)
        else:
            parts.append(self.op)
        if self.op != Opcode.SYS and self.operands:
            parts.append(", ".join(str(o) for o in self.operands))
        return " ".join(parts)


#: Operand-kind codes for :meth:`Instr.operand_kinds`.
_OPERAND_KIND_CODES = {Reg: "r", Imm: "i", Mem: "m", Label: "l"}


def _reg_name(operand: Operand) -> str:
    if not isinstance(operand, Reg):
        raise TypeError("expected register operand, got %r" % (operand,))
    return operand.name


def _collect_src(operand: Operand, out: list) -> None:
    """Accumulate register names read by a source operand."""
    if isinstance(operand, Reg):
        out.append(operand.name)
    elif isinstance(operand, Mem):
        out.append(operand.base.name)
