"""Textual assembler for the mini-ISA.

Used by tests and small examples that want precise control over the
instruction stream (e.g. to construct a specific save/restore or
indirect-jump shape).  Syntax, one item per line::

    .global counter 1            ; one word, zero initialised
    .global table 4 = 1 2 3 4    ; with initialiser
    .data jt = case_a case_b     ; jump table of code labels

    func main                    ; or: func max(a, b)
        mov   r0, 10
    loop:
        sub   r0, r0, 1 @7       ; @N attaches source line 7
        br    r0, loop
        halt

Comments start with ``;`` or ``#``.  Arithmetic mnemonics are the subops
themselves (``add r0, r1, 2``), and syscalls are ``sys print``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple, Union

from repro.isa.instructions import (
    ALL_REGISTERS,
    BINARY_OPS,
    Imm,
    Instr,
    Label,
    Mem,
    Opcode,
    Reg,
    UNARY_OPS,
)
from repro.isa.program import DataDef, Function, GlobalVar, Program


class AsmError(Exception):
    """Raised on any assembly syntax or resolution problem."""

    def __init__(self, message: str, lineno: Optional[int] = None) -> None:
        if lineno is not None:
            message = "line %d: %s" % (lineno, message)
        super().__init__(message)
        self.lineno = lineno


_MEM_RE = re.compile(r"^\[\s*(\w+)\s*(?:([+-])\s*(\d+)\s*)?\]$")
_FUNC_RE = re.compile(r"^func\s+(\w+)\s*(?:\(([^)]*)\))?$")
_LINE_TAG_RE = re.compile(r"@(\d+)\s*$")

_NO_OPERAND_OPS = {Opcode.RET, Opcode.HALT, Opcode.NOP}
_PLAIN_OPS = {
    Opcode.MOV, Opcode.LD, Opcode.ST, Opcode.LEA, Opcode.JMP, Opcode.BR,
    Opcode.BRZ, Opcode.IJMP, Opcode.CALL, Opcode.ICALL, Opcode.PUSH,
    Opcode.POP,
}


def assemble(source: str, name: str = "a.out", entry: str = "main") -> Program:
    """Assemble ``source`` into a linked :class:`Program`."""
    program = Program(name=name)
    program.entry_function = entry
    labels_by_function: Dict[str, Dict[str, int]] = {}
    current: Optional[Function] = None

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        if line.startswith(".global"):
            program.add_global(_parse_global(line, lineno))
            continue
        if line.startswith(".data"):
            program.add_data(_parse_data(line, lineno))
            continue
        match = _FUNC_RE.match(line)
        if match:
            fname, params = match.group(1), match.group(2)
            current = Function(name=fname)
            if params:
                current.params = [p.strip() for p in params.split(",") if p.strip()]
            program.add_function(current)
            labels_by_function[fname] = {}
            continue
        if current is None:
            raise AsmError("instruction outside function: %r" % (line,), lineno)
        if line.endswith(":") and " " not in line:
            label = line[:-1]
            if label in labels_by_function[current.name]:
                raise AsmError("duplicate label %r" % (label,), lineno)
            labels_by_function[current.name][label] = len(current.instrs)
            continue
        current.instrs.append(_parse_instr(line, lineno))

    if entry not in program.functions:
        raise AsmError("entry function %r not defined" % (entry,))
    return program.link(labels_by_function)


def _strip_comment(line: str) -> str:
    for marker in (";", "#"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line


def _parse_global(line: str, lineno: int) -> GlobalVar:
    body, init = _split_init(line)
    parts = body.split()
    if len(parts) not in (2, 3):
        raise AsmError("bad .global: %r" % (line,), lineno)
    name = parts[1]
    size = int(parts[2]) if len(parts) == 3 else 1
    values = None
    if init is not None:
        values = [_parse_number(tok, lineno) for tok in init.split()]
        if len(values) > size:
            raise AsmError(".global initialiser longer than size", lineno)
    return GlobalVar(name=name, size=size, init=values)


def _parse_data(line: str, lineno: int) -> DataDef:
    body, init = _split_init(line)
    parts = body.split()
    if len(parts) != 2 or init is None:
        raise AsmError("bad .data (needs '= values'): %r" % (line,), lineno)
    values: List[Union[int, float, Label]] = []
    for token in init.split():
        try:
            values.append(_parse_number(token, lineno))
        except AsmError:
            values.append(Label(token))
    return DataDef(name=parts[1], values=values)


def _split_init(line: str) -> Tuple[str, Optional[str]]:
    if "=" in line:
        body, init = line.split("=", 1)
        return body.strip(), init.strip()
    return line, None


def _parse_number(token: str, lineno: int) -> Union[int, float]:
    try:
        if any(ch in token for ch in ".eE") and not token.lstrip("+-").isdigit():
            return float(token)
        return int(token, 0)
    except ValueError:
        raise AsmError("not a number: %r" % (token,), lineno)


def _parse_operand(token: str, lineno: int):
    token = token.strip()
    if token in ALL_REGISTERS:
        return Reg(token)
    match = _MEM_RE.match(token)
    if match:
        base, sign, offset = match.groups()
        if base not in ALL_REGISTERS:
            raise AsmError("bad memory base %r" % (base,), lineno)
        off = int(offset) if offset else 0
        if sign == "-":
            off = -off
        return Mem(Reg(base), off)
    try:
        return Imm(_parse_number(token, lineno))
    except AsmError:
        pass
    if re.match(r"^\w+$", token):
        return Label(token)
    raise AsmError("bad operand %r" % (token,), lineno)


def _parse_instr(line: str, lineno: int) -> Instr:
    source_line: Optional[int] = None
    tag = _LINE_TAG_RE.search(line)
    if tag:
        source_line = int(tag.group(1))
        line = line[: tag.start()].rstrip()

    parts = line.split(None, 1)
    mnemonic = parts[0]
    operand_text = parts[1] if len(parts) > 1 else ""
    operands = tuple(
        _parse_operand(tok, lineno)
        for tok in operand_text.split(",") if tok.strip()
    ) if operand_text else ()

    if mnemonic in BINARY_OPS:
        if len(operands) != 3:
            raise AsmError("%s needs 3 operands" % mnemonic, lineno)
        return Instr(Opcode.BINOP, operands, subop=mnemonic, line=source_line)
    if mnemonic in UNARY_OPS:
        if len(operands) != 2:
            raise AsmError("%s needs 2 operands" % mnemonic, lineno)
        return Instr(Opcode.UNOP, operands, subop=mnemonic, line=source_line)
    if mnemonic == Opcode.SYS:
        sysname = operand_text.strip()
        if not re.match(r"^\w+$", sysname or ""):
            raise AsmError("sys needs a syscall name", lineno)
        return Instr(Opcode.SYS, (), subop=sysname, line=source_line)
    if mnemonic in _NO_OPERAND_OPS:
        if operands:
            raise AsmError("%s takes no operands" % mnemonic, lineno)
        return Instr(mnemonic, (), line=source_line)
    if mnemonic in _PLAIN_OPS:
        instr = Instr(mnemonic, operands, line=source_line)
        _check_arity(instr, lineno)
        return instr
    raise AsmError("unknown mnemonic %r" % (mnemonic,), lineno)


_ARITY = {
    Opcode.MOV: 2, Opcode.LD: 2, Opcode.ST: 2, Opcode.LEA: 2,
    Opcode.JMP: 1, Opcode.BR: 2, Opcode.BRZ: 2, Opcode.IJMP: 1,
    Opcode.CALL: 1, Opcode.ICALL: 1, Opcode.PUSH: 1, Opcode.POP: 1,
}


def _check_arity(instr: Instr, lineno: int) -> None:
    expected = _ARITY[instr.op]
    if len(instr.operands) != expected:
        raise AsmError(
            "%s expects %d operands, got %d"
            % (instr.op, expected, len(instr.operands)), lineno)
