"""Human-readable listings of linked programs.

Two output modes:

* the default listing has addresses and source-line comments in the margin
  — the debugging aid;
* ``assembleable=True`` produces output in exactly the dialect
  :mod:`repro.isa.assembler` accepts, with jump-table data resolved to
  absolute addresses and line debug info carried as ``@N`` tags, so a
  listing can be reassembled into a behaviourally identical program
  (property-tested in ``tests/properties/test_roundtrip.py``).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.isa.instructions import Instr, Label
from repro.isa.program import Program


def format_instr(instr: Instr, with_addr: bool = True,
                 assembleable: bool = False) -> str:
    """Render one instruction, e.g. ``"  12: add r0, r0, 1   ; line 7"``."""
    text = str(instr)
    if assembleable:
        if instr.line is not None:
            text += " @%d" % instr.line
        return text
    prefix = "%4d: " % instr.addr if with_addr and instr.addr >= 0 else ""
    suffix = ""
    if instr.line is not None:
        suffix = "   ; line %d" % instr.line
    if instr.comment:
        suffix += "  # %s" % instr.comment
    return prefix + text + suffix


def disassemble(program: Program, function: Optional[str] = None,
                assembleable: bool = False) -> str:
    """Render a whole program (or one function) as an assembly listing."""
    lines = []
    for var in program.globals.values():
        init = ""
        if var.init is not None:
            init = " = " + " ".join(str(v) for v in var.init)
        entry = ".global %s %d%s" % (var.name, var.size, init)
        if not assembleable:
            entry += "   ; @%d" % var.addr
        lines.append(entry)
    for data in program.data_defs.values():
        values = []
        for value in data.values:
            if assembleable and isinstance(value, Label):
                resolved = program.resolve_symbol(value.name)
                values.append(str(resolved if resolved is not None else 0))
            else:
                values.append(str(value))
        entry = ".data %s = %s" % (data.name, " ".join(values))
        if not assembleable:
            entry += "   ; @%d" % data.addr
        lines.append(entry)
    if lines:
        lines.append("")

    for func in program.functions.values():
        if function is not None and func.name != function:
            continue
        params = ""
        if func.params:
            params = "(%s)" % ", ".join(func.params)
        header = "func %s%s" % (func.name, params)
        if not assembleable:
            header += "   ; entry %d" % func.entry
        lines.append(header)
        for instr in func.instrs:
            lines.append("    " + format_instr(
                instr, assembleable=assembleable))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
