"""A small register-based instruction set: the reproduction's "x86".

This package defines the machine model every other layer builds on.  It is
deliberately shaped like the subset of x86 that matters to DrDebug:

* instructions define and use both *registers* and *memory*, so dynamic
  slicing must track register-to-memory dependences (Section 5.2 of the
  paper);
* ``switch`` statements compile to jump tables dispatched through an
  *indirect jump*, the source of control-dependence imprecision the paper
  fixes via dynamic CFG refinement (Section 5.1);
* functions save and restore callee-saved registers with ``push``/``pop``
  pairs at entry/exit, the source of spurious data dependences the paper
  prunes (Section 5.2).

The public surface is:

* :class:`~repro.isa.instructions.Instr` and the operand classes
  (:class:`~repro.isa.instructions.Reg`, :class:`~repro.isa.instructions.Imm`,
  :class:`~repro.isa.instructions.Mem`, :class:`~repro.isa.instructions.Label`)
* :class:`~repro.isa.program.Program` / :class:`~repro.isa.program.Function`,
  the linked code image with symbol and line debug information
* :func:`~repro.isa.assembler.assemble` for writing programs in textual
  assembly (used heavily by tests)
* :func:`~repro.isa.disassembler.disassemble` for human-readable listings
"""

from repro.isa.instructions import (
    BINARY_OPS,
    COMPARE_OPS,
    Imm,
    Instr,
    Label,
    Mem,
    Opcode,
    Reg,
    UNARY_OPS,
)
from repro.isa.program import DataDef, Function, GlobalVar, Program
from repro.isa.assembler import AsmError, assemble
from repro.isa.disassembler import disassemble, format_instr

__all__ = [
    "AsmError",
    "BINARY_OPS",
    "COMPARE_OPS",
    "DataDef",
    "Function",
    "GlobalVar",
    "Imm",
    "Instr",
    "Label",
    "Mem",
    "Opcode",
    "Program",
    "Reg",
    "UNARY_OPS",
    "assemble",
    "disassemble",
    "format_instr",
]
