"""``repro.config`` — the one resolver for every configuration knob.

Four PRs of growth scattered configuration across the tree: the slice
engine hid in ``repro.slicing.options``, the observability toggle in
``repro.obs.registry``'s import-time check, the pool width in
``repro.serve.workers``, the interpreter choice in ``repro.vm.machine``
and the benchmark smoke switch in every ``benchmarks/test_perf_*``
module.  Each read ``os.environ`` itself with its own parsing and its
own (sometimes inconsistent) fallback behavior.  This module replaces
all of those with a single table of knobs and one precedence rule.

**Precedence**, strongest first:

1. **explicit argument** — a value passed directly to a constructor or
   function (``SliceOptions(index="rows")``, ``WorkerPool(workers=4)``,
   ``Machine(..., engine="legacy")``);
2. **CLI flag** — the command line (``--shards``, ``--obs``,
   ``--workers``).  The CLI resolves flags through :func:`resolve`
   before constructing anything, so lower layers never see argparse;
3. **environment variable** — the ``REPRO_*`` family (how the CI matrix
   pins riders without touching code);
4. **built-in default**.

The knobs:

========================  =========================  ==========  =======
environment variable      resolver                   type        default
========================  =========================  ==========  =======
``REPRO_ENGINE``          :func:`engine`             choice      ``predecoded``
``REPRO_SLICE_INDEX``     :func:`slice_index`        choice      ``ddg``
``REPRO_SLICE_SHARDS``    :func:`slice_shards`       int >= 1    ``1``
``REPRO_OBS``             :func:`obs_enabled`        bool        ``False``
``REPRO_SERVE_WORKERS``   :func:`serve_workers`      int >= 1    ``2``
``REPRO_PERF_SMOKE``      :func:`perf_smoke`         bool        ``False``
``REPRO_PINBALL_FORMAT``  :func:`pinball_format`     choice      ``v1``
``REPRO_CHECKPOINT_INTERVAL``  :func:`checkpoint_interval`  int >= 1  ``500``
``REPRO_INDEX_CACHE``     :func:`index_cache`        bool        ``True``
``REPRO_ROUTER_NODES``    :func:`router_nodes`       str         ``""``
``REPRO_DETECT_ONLINE``   :func:`detect_online`      bool        ``True``
``REPRO_HUNT_WORKERS``    :func:`hunt_workers`       int >= 1    ``2``
``REPRO_HUNT_BUDGET``     :func:`hunt_budget`        int >= 1    ``24``
========================  =========================  ==========  =======

Semantics, uniform across every knob:

* booleans: unset, empty, or ``"0"`` mean False; anything else True;
* explicit and CLI values are validated strictly — a bad value raises
  :class:`ValueError` naming the knob and the accepted values;
* environment values are validated strictly too *when set*: a typo'd
  ``REPRO_SLICE_INDEX=quantum`` should fail the run loudly rather than
  silently pick the default and invalidate the CI matrix leg that set
  it.  An unset/empty variable simply falls through to the default.

This module deliberately imports nothing from the rest of ``repro`` so
every layer (including :mod:`repro.obs.registry`, which consults it at
import time) can depend on it without cycles.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "KNOBS",
    "Knob",
    "checkpoint_interval",
    "detect_online",
    "engine",
    "hunt_budget",
    "hunt_workers",
    "index_cache",
    "obs_enabled",
    "perf_smoke",
    "pinball_format",
    "precedence_table",
    "resolve",
    "router_nodes",
    "serve_workers",
    "slice_index",
    "slice_shards",
]

#: Recognised interpreter engines (mirrored by ``repro.vm.ENGINES``).
_ENGINES = ("predecoded", "legacy")
#: Recognised slice-query engines (mirrored by ``SLICE_INDEXES``).
_SLICE_INDEXES = ("ddg", "columnar", "rows", "reexec")
#: Recognised pinball serialization formats.
_PINBALL_FORMATS = ("v1", "v2")

_FALSEY = ("", "0")


def _parse_bool(text: str):
    return text not in _FALSEY


def _parse_int(text: str):
    return int(text)


def _positive(value: int) -> Optional[str]:
    if int(value) < 1:
        return "must be >= 1"
    return None


def _choice(choices: Tuple[str, ...]) -> Callable[[str], Optional[str]]:
    def check(value) -> Optional[str]:
        if value not in choices:
            return "must be one of %s" % (", ".join(choices),)
        return None
    return check


@dataclass(frozen=True)
class Knob:
    """One configuration knob: its env name, type, default, validator."""

    name: str                 #: resolver name (``slice_index``, ...)
    env: str                  #: environment variable (``REPRO_*``)
    default: object           #: built-in default (weakest source)
    parse: Callable           #: str -> value, for env/CLI strings
    validate: Optional[Callable] = None   #: value -> error text or None
    doc: str = ""             #: one line for the precedence table

    def coerce(self, value, source: str):
        """Parse (if a string) and validate ``value`` from ``source``."""
        if isinstance(value, str):
            value = value.strip()
            if self.parse is not _identity:
                try:
                    value = self.parse(value)
                except (TypeError, ValueError):
                    raise ValueError(
                        "%s (%s from %s): cannot parse %r"
                        % (self.name, self.env, source, value))
        if self.validate is not None:
            problem = self.validate(value)
            if problem is not None:
                raise ValueError("%s (%s from %s): %s, got %r"
                                 % (self.name, self.env, source, problem,
                                    value))
        return value


def _identity(text: str):
    return text


KNOBS: Dict[str, Knob] = {
    knob.name: knob for knob in (
        Knob("engine", "REPRO_ENGINE", "predecoded", _identity,
             _choice(_ENGINES),
             doc="interpreter engine for new Machines"),
        Knob("slice_index", "REPRO_SLICE_INDEX", "ddg", _identity,
             _choice(_SLICE_INDEXES),
             doc="slice-query engine (DDG, backward scans, or reexec)"),
        Knob("slice_shards", "REPRO_SLICE_SHARDS", 1, _parse_int,
             _positive,
             doc="regions traced in parallel by SlicingSession (1=serial)"),
        Knob("obs", "REPRO_OBS", False, _parse_bool,
             doc="process-wide observability registry on/off"),
        Knob("serve_workers", "REPRO_SERVE_WORKERS", 2, _parse_int,
             _positive,
             doc="debug-service worker-pool width"),
        Knob("perf_smoke", "REPRO_PERF_SMOKE", False, _parse_bool,
             doc="benchmarks: reduced sizes, no perf-ratio assertions"),
        Knob("pinball_format", "REPRO_PINBALL_FORMAT", "v1", _identity,
             _choice(_PINBALL_FORMATS),
             doc="default pinball serialization (v1 JSON, v2 streamed)"),
        Knob("checkpoint_interval", "REPRO_CHECKPOINT_INTERVAL", 500,
             _parse_int, _positive,
             doc="steps between embedded / reverse-debug checkpoints "
                 "(bounds each reexec window pass)"),
        Knob("index_cache", "REPRO_INDEX_CACHE", True, _parse_bool,
             doc="persist built DDG indexes in the store for warm starts"),
        Knob("router_nodes", "REPRO_ROUTER_NODES", "", _identity,
             doc="comma-separated host:port serve nodes for `repro "
                 "router`"),
        Knob("detect_online", "REPRO_DETECT_ONLINE", True, _parse_bool,
             doc="race detection rides the untraced fast path when the "
                 "pinball allows it"),
        Knob("hunt_workers", "REPRO_HUNT_WORKERS", 2, _parse_int,
             _positive,
             doc="parallel candidate-evaluation lanes for served hunts"),
        Knob("hunt_budget", "REPRO_HUNT_BUDGET", 24, _parse_int,
             _positive,
             doc="max candidate schedules a hunt re-executes"),
    )
}


def resolve(name: str, explicit=None, cli=None):
    """Resolve knob ``name``: explicit arg > CLI flag > env > default.

    ``None`` means "not given" at each level (so a CLI flag whose
    argparse default is ``None`` falls through cleanly).  Explicit and
    CLI values are validated; set-but-invalid environment values raise
    :class:`ValueError` rather than silently masking a typo.
    """
    knob = KNOBS[name]
    if explicit is not None:
        return knob.coerce(explicit, "argument")
    if cli is not None:
        return knob.coerce(cli, "cli")
    raw = os.environ.get(knob.env)
    if raw is not None and raw.strip() != "":
        return knob.coerce(raw, "environment")
    return knob.default


# -- typed conveniences (what the rest of the tree calls) ---------------------

def engine(explicit: Optional[str] = None, cli: Optional[str] = None) -> str:
    """Interpreter engine: ``predecoded`` (default) or ``legacy``."""
    return resolve("engine", explicit, cli)


def slice_index(explicit: Optional[str] = None,
                cli: Optional[str] = None) -> str:
    """Slice-query engine: ``ddg`` (default), ``columnar``, ``rows`` or
    ``reexec`` (on-demand re-execution over the pinball)."""
    return resolve("slice_index", explicit, cli)


def slice_shards(explicit: Optional[int] = None,
                 cli: Optional[int] = None) -> int:
    """Trace/DDG shard count for :class:`SlicingSession` (1 = serial)."""
    return resolve("slice_shards", explicit, cli)


def obs_enabled(explicit: Optional[bool] = None,
                cli: Optional[bool] = None) -> bool:
    """Whether the observability registry should be enabled."""
    return resolve("obs", explicit, cli)


def serve_workers(explicit: Optional[int] = None,
                  cli: Optional[int] = None) -> int:
    """Debug-service worker-pool width (default 2)."""
    return resolve("serve_workers", explicit, cli)


def perf_smoke(explicit: Optional[bool] = None,
               cli: Optional[bool] = None) -> bool:
    """Benchmark smoke mode: small sizes, correctness-only assertions."""
    return resolve("perf_smoke", explicit, cli)


def pinball_format(explicit: Optional[str] = None,
                   cli: Optional[str] = None) -> str:
    """Pinball serialization format: ``v1`` (default) or ``v2``."""
    return resolve("pinball_format", explicit, cli)


def checkpoint_interval(explicit: Optional[int] = None,
                        cli: Optional[int] = None) -> int:
    """Steps between embedded (v2) / reverse-debugging checkpoints."""
    return resolve("checkpoint_interval", explicit, cli)


def index_cache(explicit: Optional[bool] = None,
                cli: Optional[bool] = None) -> bool:
    """Whether serve sessions persist/load built DDG indexes through the
    store's index cache (default True)."""
    return resolve("index_cache", explicit, cli)


def router_nodes(explicit: Optional[str] = None,
                 cli: Optional[str] = None) -> str:
    """Comma-separated ``host:port`` list of serve nodes behind
    ``repro router`` (empty = must be given on the command line)."""
    return resolve("router_nodes", explicit, cli)


def detect_online(explicit: Optional[bool] = None,
                  cli: Optional[bool] = None) -> bool:
    """Whether :func:`repro.detect.detect_races` rides the untraced
    fast path (default True; falls back to the traced detector for
    pinballs that cannot, e.g. slice pinballs)."""
    return resolve("detect_online", explicit, cli)


def hunt_workers(explicit: Optional[int] = None,
                 cli: Optional[int] = None) -> int:
    """Parallel candidate-evaluation lanes for served hunts (default 2)."""
    return resolve("hunt_workers", explicit, cli)


def hunt_budget(explicit: Optional[int] = None,
                cli: Optional[int] = None) -> int:
    """Maximum candidate schedules one hunt re-executes (default 24)."""
    return resolve("hunt_budget", explicit, cli)


def precedence_table() -> str:
    """The knob table as aligned text (used by docs and ``--help`` epilogs)."""
    rows = [(knob.env, knob.name, str(knob.default), knob.doc)
            for knob in sorted(KNOBS.values(), key=lambda k: k.env)]
    headers = ("variable", "resolver", "default", "meaning")
    widths = [max(len(row[i]) for row in rows + [headers])
              for i in range(4)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(w)
                               for cell, w in zip(row, widths)).rstrip())
    return "\n".join(lines)
