"""Whole-program CFG registry with lazy construction and refinement.

The dynamic tracer asks, per executed branch, for the address at which the
branch's control-dependence region ends; this registry owns one
:class:`~repro.analysis.cfg.CFG` per function and routes indirect-jump
observations to the right one.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.cfg import CFG
from repro.isa.program import Program


class CfgRegistry:
    """Per-function CFGs for one program, built on first use."""

    def __init__(self, program: Program, refine: bool = True) -> None:
        self.program = program
        self.refine = refine
        self._cfgs: Dict[str, CFG] = {}
        #: Count of CFG edges added by dynamic refinement (for reporting).
        self.refinements = 0

    def cfg_for_addr(self, addr: int) -> CFG:
        function = self.program.function_at(addr)
        if function is None:
            raise KeyError("no function contains address %d" % addr)
        cfg = self._cfgs.get(function.name)
        if cfg is None:
            cfg = CFG(self.program, function)
            self._cfgs[function.name] = cfg
        return cfg

    def cfg(self, function_name: str) -> CFG:
        cfg = self._cfgs.get(function_name)
        if cfg is None:
            cfg = CFG(self.program, self.program.functions[function_name])
            self._cfgs[function_name] = cfg
        return cfg

    def observe_indirect_jump(self, ijmp_addr: int, target: int) -> bool:
        """Refine the owning CFG with an observed ijmp target."""
        if not self.refine:
            return False
        changed = self.cfg_for_addr(ijmp_addr).add_indirect_target(
            ijmp_addr, target)
        if changed:
            self.refinements += 1
        return changed

    def region_end_addr(self, branch_addr: int) -> Optional[int]:
        """Where the control-dependence region of ``branch_addr`` ends."""
        return self.cfg_for_addr(branch_addr).ipostdom_addr(branch_addr)
