"""Control-flow graph construction with indirect-jump refinement.

The static pass discovers leaders and basic blocks from the instruction
stream alone.  Crucially — and deliberately, to reproduce the paper's
Section 5.1 imprecision — it does *not* inspect jump-table data, so an
``ijmp`` initially has **no successors** in the static CFG, exactly like
"the statically constructed CFG will be missing control flow edges" in
Figure 7.  :meth:`CFG.add_indirect_target` adds observed targets at replay
time, splitting blocks when a target lands mid-block, and invalidates the
post-dominator cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.isa.instructions import Imm, Opcode
from repro.isa.program import Function, Program

#: Virtual exit node id (all returning/halting blocks flow here).
EXIT_BLOCK = -1


class BasicBlock:
    """Half-open address range ``[start, end)`` of straight-line code."""

    __slots__ = ("id", "start", "end", "succs", "preds")

    def __init__(self, block_id: int, start: int, end: int) -> None:
        self.id = block_id
        self.start = start
        self.end = end
        self.succs: Set[int] = set()
        self.preds: Set[int] = set()

    def __repr__(self) -> str:
        return "<BB%d [%d,%d) -> %s>" % (
            self.id, self.start, self.end, sorted(self.succs))


class CFG:
    """Per-function CFG over code addresses, with dynamic refinement."""

    def __init__(self, program: Program, function: Function) -> None:
        self.program = program
        self.function = function
        self.blocks: Dict[int, BasicBlock] = {}
        self._block_of_addr: Dict[int, int] = {}
        self.entry_block: int = 0
        #: Indirect-jump targets observed so far: ijmp addr -> set of targets.
        self.indirect_targets: Dict[int, Set[int]] = {}
        self._ipostdom_cache: Optional[Dict[int, Optional[int]]] = None
        self._build()

    # -- construction ---------------------------------------------------------

    def _terminator_kind(self, addr: int) -> Optional[str]:
        instr = self.program.instructions[addr]
        op = instr.op
        if op in (Opcode.JMP,):
            return "jmp"
        if op in (Opcode.BR, Opcode.BRZ):
            return "branch"
        if op == Opcode.IJMP:
            return "ijmp"
        if op in (Opcode.RET, Opcode.HALT):
            return "exit"
        return None

    def _static_target(self, addr: int) -> int:
        instr = self.program.instructions[addr]
        if instr.op == Opcode.JMP:
            return int(instr.operands[0].value)
        return int(instr.operands[1].value)

    def _build(self) -> None:
        function = self.function
        start, end = function.entry, function.end
        leaders: Set[int] = {start}
        for addr in range(start, end):
            kind = self._terminator_kind(addr)
            if kind is None:
                continue
            if addr + 1 < end:
                leaders.add(addr + 1)
            if kind in ("jmp", "branch"):
                target = self._static_target(addr)
                if start <= target < end:
                    leaders.add(target)
        ordered = sorted(leaders)
        for index, block_start in enumerate(ordered):
            block_end = ordered[index + 1] if index + 1 < len(ordered) else end
            block = BasicBlock(len(self.blocks), block_start, block_end)
            self.blocks[block.id] = block
            for addr in range(block_start, block_end):
                self._block_of_addr[addr] = block.id
        self.entry_block = self._block_of_addr[start]
        for block in list(self.blocks.values()):
            self._connect(block)

    def _connect(self, block: BasicBlock) -> None:
        """(Re)compute successors of ``block`` from its last instruction."""
        last = block.end - 1
        kind = self._terminator_kind(last)
        start, end = self.function.entry, self.function.end
        succs: Set[int] = set()
        if kind is None:
            # Falls through (possible after a block split).
            if block.end < end:
                succs.add(self._block_of_addr[block.end])
            else:
                succs.add(EXIT_BLOCK)
        elif kind == "jmp":
            target = self._static_target(last)
            succs.add(self._block_of_addr.get(target, EXIT_BLOCK)
                      if start <= target < end else EXIT_BLOCK)
        elif kind == "branch":
            target = self._static_target(last)
            succs.add(self._block_of_addr.get(target, EXIT_BLOCK)
                      if start <= target < end else EXIT_BLOCK)
            if block.end < end:
                succs.add(self._block_of_addr[block.end])
            else:
                succs.add(EXIT_BLOCK)
        elif kind == "ijmp":
            # Statically unknown; only dynamically observed targets.
            for target in self.indirect_targets.get(last, ()):
                if start <= target < end:
                    succs.add(self._block_of_addr[target])
        elif kind == "exit":
            succs.add(EXIT_BLOCK)
        for old in block.succs - succs:
            if old != EXIT_BLOCK:
                self.blocks[old].preds.discard(block.id)
        block.succs = succs
        for succ in succs:
            if succ != EXIT_BLOCK:
                self.blocks[succ].preds.add(block.id)

    # -- queries -----------------------------------------------------------------

    def block_of(self, addr: int) -> BasicBlock:
        return self.blocks[self._block_of_addr[addr]]

    def block_count(self) -> int:
        return len(self.blocks)

    def edges(self) -> List[Tuple[int, int]]:
        result = []
        for block in self.blocks.values():
            for succ in block.succs:
                result.append((block.id, succ))
        return sorted(result)

    # -- dynamic refinement ----------------------------------------------------------

    def add_indirect_target(self, ijmp_addr: int, target: int) -> bool:
        """Record an observed indirect-jump target; True if the CFG changed."""
        targets = self.indirect_targets.setdefault(ijmp_addr, set())
        if target in targets:
            return False
        targets.add(target)
        if not self.function.contains(target):
            return False
        self._split_at(target)
        source = self.blocks[self._block_of_addr[ijmp_addr]]
        self._connect(source)
        self._ipostdom_cache = None
        return True

    def _split_at(self, addr: int) -> None:
        """Make ``addr`` a block leader, splitting its block if needed."""
        block = self.blocks[self._block_of_addr[addr]]
        if block.start == addr:
            return
        new_block = BasicBlock(len(self.blocks), addr, block.end)
        self.blocks[new_block.id] = new_block
        for a in range(addr, block.end):
            self._block_of_addr[a] = new_block.id
        block.end = addr
        # The new block inherits the old successors; the old block now
        # falls through (its last instruction is no longer a terminator).
        new_block.succs = set(block.succs)
        for succ in new_block.succs:
            if succ != EXIT_BLOCK:
                successor = self.blocks[succ]
                successor.preds.discard(block.id)
                successor.preds.add(new_block.id)
        block.succs = set()
        self._connect(block)
        self._ipostdom_cache = None

    # -- post-dominators ----------------------------------------------------------------

    def ipostdoms(self) -> Dict[int, Optional[int]]:
        """Immediate post-dominator block per block (cached until refined).

        ``None`` means only the virtual exit post-dominates the block.
        """
        if self._ipostdom_cache is None:
            from repro.analysis.dominators import compute_ipostdoms
            self._ipostdom_cache = compute_ipostdoms(self)
        return self._ipostdom_cache

    def ipostdom_addr(self, branch_addr: int) -> Optional[int]:
        """Address where ``branch_addr``'s control-dependence region ends.

        Returns the start address of the branch's block's immediate
        post-dominator, or None when the region extends to function exit.
        """
        block_id = self._block_of_addr[branch_addr]
        ipd = self.ipostdoms().get(block_id)
        if ipd is None or ipd == EXIT_BLOCK:
            return None
        return self.blocks[ipd].start


def build_cfg(program: Program, function_name: str) -> CFG:
    """Build the (approximate) static CFG for one function."""
    return CFG(program, program.functions[function_name])
