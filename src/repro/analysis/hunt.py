"""The bug firehose: in-situ schedule hunting over a recorded envelope.

The iReplayer-inspired capstone pipeline (see PAPERS.md): instead of
merely *flagging* suspected concurrency bugs, validate them by cheap
repeated in-situ re-execution.  Three stages:

1. **Detect** — one online race-detection pass over the recording
   (:func:`repro.detect.detect_races`, untraced fast path) plus maple
   interleaving profiling yields racy site pairs and predicted iRoots.
2. **Permute** — each candidate becomes a fresh schedule of the same
   program/region/inputs: racy pairs and iRoots are *forced* (both
   orders) with the maple active scheduler; remaining budget goes to
   seeded random perturbations.  All nondeterminism besides the
   schedule is pinned (inputs, rand seed, heap poison ride along from
   the recording), so each candidate run is fully deterministic.
3. **Classify & shrink** — every outcome is classified **crash** (the
   VM failure fired), **wrong-output** (differs from the deterministic
   round-robin reference), or **benign**.  Each distinct confirmed
   failure is then greedily minimized — context switches are removed
   from the exposing schedule while the failure keeps reproducing —
   and re-recorded into a *minimized pinball*, with a pre-computed
   slice report rooted at the failing instruction.

Everything is deterministic by construction: candidates are generated
in sorted order, evaluated independently, and merged by candidate id —
so a hunt distributed over the serve worker pool yields byte-identical
minimized pinballs to an in-process one (the differential suite
asserts it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import config
from repro.analysis.report import (HuntFinding, RaceFinding, SliceReport,
                                   hunt_report_payload)
from repro.detect import detect_races
from repro.isa.program import Program
from repro.maple.active_scheduler import ActiveScheduler, ActiveSchedulerWatch
from repro.maple.idioms import IRoot, MemAccess
from repro.maple.profiler import InterleavingProfiler
from repro.obs.registry import OBS
from repro.pinplay.logger import record_region
from repro.pinplay.pinball import Pinball
from repro.pinplay.regions import RegionSpec
from repro.vm.scheduler import (RandomScheduler, RoundRobinScheduler,
                                Scheduler)

__all__ = ["HuntResult", "PerturbedScheduler", "confirm", "evaluate",
           "hunt", "hunt_context", "make_candidates", "scan"]

#: Preemption rate for seeded filler candidates.
SEED_SWITCH_PROB = 0.3
#: Active-scheduler delay budget per forced candidate.
GIVE_UP_BUDGET = 4_000
#: Hard ceiling on candidate run length (multiple of the recording).
STEP_CAP_FACTOR = 8
#: Floor for the step cap (tiny recordings still need room to finish).
STEP_CAP_MIN = 50_000


class PerturbedScheduler(Scheduler):
    """Follow an RLE run list *leniently*; round-robin past its end.

    Unlike :class:`~repro.vm.scheduler.RecordedScheduler` this never
    raises on divergence: when the intended thread is not runnable the
    rest of its run is dropped, and when the list is exhausted a
    round-robin tail takes over.  That makes any mutation of a recorded
    schedule executable — the property minimization relies on.
    Deterministic for a fixed run list.
    """

    def __init__(self, runs: Sequence[Tuple[int, int]],
                 quantum: int = 50) -> None:
        self._runs = [(int(tid), int(count)) for tid, count in runs
                      if int(count) > 0]
        self._index = 0
        self._used = 0
        self._tail = RoundRobinScheduler(quantum=quantum)

    def pick(self, runnable: Sequence[int], last: Optional[int]) -> int:
        runs = self._runs
        while self._index < len(runs):
            tid, count = runs[self._index]
            if self._used >= count:
                self._index += 1
                self._used = 0
                continue
            if tid in runnable:
                return tid
            # Intended thread blocked or finished early under this
            # perturbation: drop the rest of its run.  (Mutating here is
            # safe: hunt runs never discard picks — no breakpoints.)
            self._index += 1
            self._used = 0
        return self._tail.pick(runnable, last)

    def commit(self, tid: int) -> None:
        runs = self._runs
        if self._index < len(runs) and tid == runs[self._index][0]:
            self._used += 1
        else:
            self._tail.commit(tid)


# -- context / candidates -----------------------------------------------------

def hunt_context(pinball: Pinball, program: Program,
                 inputs: Optional[Sequence] = None,
                 rand_seed: Optional[int] = None) -> dict:
    """Everything a candidate re-execution must pin, as a plain dict.

    The reference output comes from one deterministic round-robin run
    of the same region: schedule-independent programs always match it,
    so any mismatch under a candidate schedule is an order violation.
    """
    meta = pinball.meta
    if inputs is None:
        inputs = meta.get("inputs", [])
    if rand_seed is None:
        rand_seed = int(meta.get("rand_seed", 0))
    memory_snap = (pinball.snapshot or {}).get("memory", {})
    ctx = {
        "inputs": list(inputs),
        "rand_seed": int(rand_seed),
        "skip": int(meta.get("skip", 0) or 0),
        "length": meta.get("length"),
        "heap_poison": bool(memory_snap.get("poison", False)),
        "step_cap": max(STEP_CAP_MIN,
                        STEP_CAP_FACTOR * int(meta.get("schedule_steps", 0))),
        "recorded_runs": [list(run) for run in pinball.schedule],
        "reference_output": None,
    }
    reference = _execute(program, RoundRobinScheduler(), ctx)
    if not reference.meta.get("failure"):
        ctx["reference_output"] = list(reference.meta.get("output", []))
    return ctx


def _region(ctx: dict) -> RegionSpec:
    length = ctx.get("length")
    return RegionSpec(skip=int(ctx.get("skip", 0) or 0),
                      length=int(length) if length is not None else None)


def _execute(program: Program, scheduler: Scheduler, ctx: dict,
             extra_tools=()) -> Pinball:
    """One pinned re-execution of the hunted region."""
    return record_region(program, scheduler, _region(ctx),
                         inputs=ctx.get("inputs", ()),
                         rand_seed=int(ctx.get("rand_seed", 0)),
                         extra_tools=extra_tools,
                         heap_poison=bool(ctx.get("heap_poison", False)))


def _access_kinds(kind: str) -> Tuple[bool, bool]:
    """(first_is_write, second_is_write) for a race kind."""
    return (kind != "read-write", kind != "write-read")


def make_candidates(races, predicted_iroots: Sequence[IRoot],
                    budget: int) -> List[dict]:
    """Candidate schedules, as wire-friendly dicts in evaluation order.

    The recorded schedule itself comes first (a failing recording is
    its own best witness — replaying it in situ confirms and seeds
    minimization).  Then both orders of every detected race pair, the
    maple-predicted iRoots, and seeded random perturbations filling
    the remaining budget (at least two, so even a race-free recording
    gets a nonzero fleet).
    """
    candidates: List[dict] = [
        {"cid": "c000-recorded", "origin": "recorded", "mode": "recorded"},
    ]
    seen: set = set()

    def force(first_pc: int, first_w: bool, second_pc: int, second_w: bool,
              origin: str) -> None:
        key = (first_pc, first_w, second_pc, second_w)
        if key in seen:
            return
        seen.add(key)
        candidates.append({
            "cid": "c%03d-%s" % (len(candidates), origin),
            "origin": origin, "mode": "force",
            "first_pc": first_pc, "first_write": first_w,
            "second_pc": second_pc, "second_write": second_w,
        })

    for race in sorted(races, key=lambda r: (r.addr, r.kind,
                                             r.first_pc, r.second_pc)):
        first_w, second_w = _access_kinds(race.kind)
        # The recorded order already happened; the reversed order is the
        # untested interleaving — force it first.
        force(race.second_pc, second_w, race.first_pc, first_w, "race")
        force(race.first_pc, first_w, race.second_pc, second_w, "race")

    for iroot in sorted(predicted_iroots,
                        key=lambda r: (r.first.pc, r.second.pc)):
        force(iroot.first.pc, iroot.first.is_write,
              iroot.second.pc, iroot.second.is_write, "iroot")

    candidates = candidates[:budget]
    fill = max(2, budget - len(candidates))
    for seed in range(fill):
        candidates.append({
            "cid": "c%03d-seed" % len(candidates),
            "origin": "seed", "mode": "seed", "seed": seed,
        })
    return candidates[:max(budget, 2)]


# -- stages -------------------------------------------------------------------

def scan(pinball: Pinball, program: Program,
         budget: Optional[int] = None,
         profile_seeds: int = 4,
         inputs: Optional[Sequence] = None,
         rand_seed: Optional[int] = None) -> Tuple[list, List[dict], dict]:
    """Stage 1: detect races, predict iRoots, build the candidate list."""
    budget = config.hunt_budget(explicit=budget)
    with OBS.span("hunt.scan"):
        races = detect_races(pinball, program)
        ctx = hunt_context(pinball, program, inputs=inputs,
                           rand_seed=rand_seed)
        profiler = InterleavingProfiler(program, inputs=ctx["inputs"])
        profiler.run(list(range(profile_seeds)),
                     switch_prob=SEED_SWITCH_PROB)
        candidates = make_candidates(races, profiler.predicted(), budget)
    if OBS.enabled:
        OBS.add("hunt.scans", 1)
        OBS.add("hunt.races_found", len(races))
        OBS.add("hunt.candidates", len(candidates))
    return races, candidates, ctx


def _scheduler_for(candidate: dict, ctx: dict):
    """(scheduler, extra_tools) realizing one candidate."""
    if candidate["mode"] == "recorded":
        return (PerturbedScheduler(ctx.get("recorded_runs", ())), ())
    if candidate["mode"] == "seed":
        return (RandomScheduler(seed=int(candidate["seed"]),
                                switch_prob=SEED_SWITCH_PROB), ())
    iroot = IRoot(MemAccess(int(candidate["first_pc"]),
                            bool(candidate["first_write"])),
                  MemAccess(int(candidate["second_pc"]),
                            bool(candidate["second_write"])))
    watch = ActiveSchedulerWatch(iroot)
    return (ActiveScheduler(watch, give_up_budget=GIVE_UP_BUDGET), (watch,))


def _classify(pinball: Pinball, ctx: dict) -> Tuple[str, Optional[dict]]:
    failure = pinball.meta.get("failure")
    if failure:
        return "crash", failure
    reference = ctx.get("reference_output")
    if (reference is not None
            and list(pinball.meta.get("output", [])) != list(reference)):
        return "wrong-output", None
    return "benign", None


def evaluate(program: Program, candidates: Sequence[dict],
             ctx: dict) -> List[dict]:
    """Stage 2: run each candidate schedule and classify its outcome.

    Returns one row per candidate, in order.  Rows are plain dicts so a
    serve worker can evaluate a chunk and ship the rows back; confirmed
    rows carry the exposing RLE schedule (the minimization seed).
    """
    rows: List[dict] = []
    for candidate in candidates:
        scheduler, extras = _scheduler_for(candidate, ctx)
        with OBS.span("hunt.candidate_run"):
            pinball = _execute(program, scheduler, ctx, extra_tools=extras)
        outcome, failure = _classify(pinball, ctx)
        row = {"cid": candidate["cid"], "outcome": outcome,
               "failure": failure,
               "output": list(pinball.meta.get("output", []))}
        if outcome != "benign":
            row["schedule_runs"] = [list(run) for run in pinball.schedule]
        rows.append(row)
        if OBS.enabled:
            OBS.add("hunt.candidate_runs", 1)
            OBS.add("hunt.outcome_%s" % outcome.replace("-", "_"), 1)
    return rows


def _reproduces(pinball: Pinball, outcome: str, failure: Optional[dict],
                ctx: dict) -> bool:
    got, got_failure = _classify(pinball, ctx)
    if outcome == "crash":
        return (got == "crash" and got_failure is not None
                and failure is not None
                and got_failure.get("code") == failure.get("code"))
    return got == outcome


def _normalize(runs: List[List[int]]) -> List[List[int]]:
    """Coalesce adjacent same-tid runs and drop empties."""
    out: List[List[int]] = []
    for tid, count in runs:
        if count <= 0:
            continue
        if out and out[-1][0] == tid:
            out[-1][1] += count
        else:
            out.append([tid, count])
    return out


def minimize_schedule(program: Program, runs, outcome: str,
                      failure: Optional[dict], ctx: dict,
                      budget: int = 64
                      ) -> Tuple[List[List[int]], Pinball, int]:
    """Stage 3a: greedy schedule-delta reduction.

    Repeatedly tries to remove one context switch — merging a run into
    its predecessor's thread — keeping any mutation under which the
    failure still reproduces.  Returns the minimized run list, the
    re-recorded minimized pinball, and the trial count.
    """
    current = _normalize([list(run) for run in runs])
    best: Optional[Pinball] = None
    trials = 0

    def attempt(candidate_runs) -> Optional[Pinball]:
        pinball = _execute(program, PerturbedScheduler(candidate_runs), ctx)
        if _reproduces(pinball, outcome, failure, ctx):
            return pinball
        return None

    with OBS.span("hunt.minimize"):
        improved = True
        while improved and trials < budget:
            improved = False
            index = 0
            while index < len(current) - 1 and trials < budget:
                merged = [list(run) for run in current]
                merged[index][1] += merged[index + 1][1]
                del merged[index + 1]
                merged = _normalize(merged)
                trials += 1
                pinball = attempt(merged)
                if pinball is not None:
                    current = merged
                    best = pinball
                    improved = True
                else:
                    index += 1
    if best is None:
        # Nothing could be removed: re-record the original schedule so
        # the minimized pinball is still a PerturbedScheduler product
        # (deterministic bytes either way).
        best = _execute(program, PerturbedScheduler(current), ctx)
        if not _reproduces(best, outcome, failure, ctx):
            raise RuntimeError(
                "exposing schedule did not reproduce under re-execution")
    if OBS.enabled:
        OBS.add("hunt.minimize_trials", trials)
    return current, best, trials


def confirm(program: Program, candidate: dict, row: dict, ctx: dict,
            races: Sequence = (),
            minimize_budget: int = 64,
            slice_reports: bool = True
            ) -> Tuple[HuntFinding, Pinball]:
    """Stage 3: minimize one confirmed outcome and pre-slice its report."""
    outcome = row["outcome"]
    failure = row.get("failure")
    runs = row["schedule_runs"]
    minimized, pinball, trials = minimize_schedule(
        program, runs, outcome, failure, ctx, budget=minimize_budget)

    slice_report = None
    if slice_reports and outcome == "crash":
        from repro.slicing import SlicingSession
        with OBS.span("hunt.slice"):
            session = SlicingSession(pinball, program)
            dslice = session.slice_for(session.failure_criterion())
            slice_report = SliceReport.from_slice(dslice)

    race_finding = None
    if candidate.get("origin") == "race":
        pair = {candidate["first_pc"], candidate["second_pc"]}
        for race in races:
            if {race.first_pc, race.second_pc} == pair:
                race_finding = (race if isinstance(race, RaceFinding)
                                else RaceFinding.from_race(race, program))
                break

    descr = "%s via %s schedule" % (outcome, candidate.get("origin"))
    if failure:
        descr += " (failure code %s at pc %s)" % (failure.get("code"),
                                                  failure.get("pc"))
    finding = HuntFinding(
        candidate=candidate["cid"], origin=candidate.get("origin", "?"),
        outcome=outcome,
        failure_code=(failure or {}).get("code"),
        failure=failure,
        schedule_runs=len(_normalize([list(r) for r in runs])),
        minimized_runs=len(minimized),
        race=race_finding,
        slice_report=slice_report,
        description=descr)
    if OBS.enabled:
        OBS.add("hunt.confirmed", 1)
    return finding, pinball


def _signature(row: dict) -> tuple:
    if row["outcome"] == "crash":
        failure = row.get("failure") or {}
        return ("crash", failure.get("code"), failure.get("pc"))
    return ("wrong-output", tuple(row.get("output", ())))


def dedupe_rows(candidates: Sequence[dict],
                rows: Sequence[dict]) -> List[Tuple[dict, dict]]:
    """Confirmed (candidate, row) pairs, first occurrence per distinct
    failure signature, in candidate order — the one dedup rule both the
    in-process and the served pipeline apply."""
    by_cid = {c["cid"]: c for c in candidates}
    seen: set = set()
    out: List[Tuple[dict, dict]] = []
    for row in rows:
        if row["outcome"] == "benign":
            continue
        signature = _signature(row)
        if signature in seen:
            continue
        seen.add(signature)
        out.append((by_cid[row["cid"]], row))
    return out


@dataclass
class HuntResult:
    """Everything one hunt produced."""

    findings: List[HuntFinding] = field(default_factory=list)
    minimized: Dict[str, Pinball] = field(default_factory=dict)
    races: List[RaceFinding] = field(default_factory=list)
    candidates_tried: int = 0
    benign: int = 0

    @property
    def confirmed(self) -> bool:
        return bool(self.findings)

    def payload(self) -> dict:
        """The shared report-schema envelope (kind ``hunt``)."""
        return hunt_report_payload(self.findings, races=self.races,
                                   candidates_tried=self.candidates_tried,
                                   benign=self.benign)


def hunt(pinball: Pinball, program: Program,
         budget: Optional[int] = None,
         inputs: Optional[Sequence] = None,
         rand_seed: Optional[int] = None,
         profile_seeds: int = 4,
         minimize_budget: int = 64,
         slice_reports: bool = True) -> HuntResult:
    """The full in-process pipeline: scan, evaluate, confirm.

    The serve ``hunt`` verb runs the same three stages with stage 2
    sharded across the worker pool; results are identical (and the
    minimized pinballs byte-identical) because every stage is
    deterministic and merged in candidate order.
    """
    with OBS.span("hunt.total"):
        races, candidates, ctx = scan(pinball, program, budget=budget,
                                      profile_seeds=profile_seeds,
                                      inputs=inputs, rand_seed=rand_seed)
        rows = evaluate(program, candidates, ctx)
        result = HuntResult(
            races=[RaceFinding.from_race(race, program) for race in races],
            candidates_tried=len(rows),
            benign=sum(1 for row in rows if row["outcome"] == "benign"))
        for candidate, row in dedupe_rows(candidates, rows):
            finding, minimized = confirm(
                program, candidate, row, ctx, races=result.races,
                minimize_budget=minimize_budget,
                slice_reports=slice_reports)
            result.findings.append(finding)
            result.minimized[finding.candidate] = minimized
    if OBS.enabled:
        OBS.add("hunt.runs", 1)
        OBS.add("hunt.findings", len(result.findings))
    return result
