"""Post-dominator computation on function CFGs.

Post-dominators are dominators of the *reverse* CFG rooted at the virtual
exit node.  We use the classic iterative data-flow algorithm of Cooper,
Harvey and Kennedy ("A simple, fast dominance algorithm") on a reverse
post-order of the reversed graph; a brute-force fixed-point definition is
provided for property testing.

Blocks that cannot reach the exit (e.g. an infinite loop) get ``None``:
their control-dependence regions only end at frame exit, which is how the
dynamic control-dependence tracker treats a missing post-dominator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis import cfg as cfg_mod


def _reverse_postorder_on_reverse(cfg) -> List[int]:
    """Reverse post-order over the reversed CFG, from the virtual exit."""
    exit_preds = [block.id for block in cfg.blocks.values()
                  if cfg_mod.EXIT_BLOCK in block.succs]
    visited: Set[int] = set()
    postorder: List[int] = []
    # Iterative DFS over reversed edges (succ -> pred direction of reverse
    # graph == preds in the original graph), starting from exit's preds.
    for root in exit_preds:
        if root in visited:
            continue
        stack = [(root, iter(sorted(cfg.blocks[root].preds)))]
        visited.add(root)
        while stack:
            node, it = stack[-1]
            advanced = False
            for pred in it:
                if pred not in visited:
                    visited.add(pred)
                    stack.append((pred, iter(sorted(cfg.blocks[pred].preds))))
                    advanced = True
                    break
            if not advanced:
                postorder.append(node)
                stack.pop()
    return list(reversed(postorder))


def compute_ipostdoms(cfg) -> Dict[int, Optional[int]]:
    """Immediate post-dominator per block id.

    The virtual exit is the root; a block whose only post-dominator is the
    exit maps to :data:`~repro.analysis.cfg.EXIT_BLOCK`; unreachable-from-
    exit blocks map to ``None``.
    """
    order = _reverse_postorder_on_reverse(cfg)
    index_of = {block_id: i for i, block_id in enumerate(order)}
    EXIT = cfg_mod.EXIT_BLOCK
    idom: Dict[int, Optional[int]] = {EXIT: EXIT}

    def intersect(a: int, b: int) -> int:
        # Walk up the (post-)dominator tree; EXIT is the root with the
        # smallest virtual index.
        def index(n: int) -> int:
            return -1 if n == EXIT else index_of[n]
        while a != b:
            while index(a) > index(b):
                a = idom[a]
            while index(b) > index(a):
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for block_id in order:
            block = cfg.blocks[block_id]
            new_idom: Optional[int] = None
            for succ in sorted(block.succs):
                if succ == EXIT or succ in idom:
                    candidate = succ
                    if new_idom is None:
                        new_idom = candidate
                    else:
                        new_idom = intersect(new_idom, candidate)
            if new_idom is not None and idom.get(block_id) != new_idom:
                idom[block_id] = new_idom
                changed = True

    result: Dict[int, Optional[int]] = {}
    for block_id in cfg.blocks:
        value = idom.get(block_id)
        result[block_id] = value if value is not None else None
    return result


def postdominators_brute_force(cfg) -> Dict[int, Set[int]]:
    """All post-dominators per block, by fixed point over the definition.

    ``b`` post-dominates ``a`` iff every path from ``a`` to the exit passes
    through ``b``.  Successors that cannot reach the exit contribute no
    paths, so they are excluded from the meet — matching the iterative
    algorithm's treatment of diverging branches.  Nodes that cannot reach
    the exit at all map to the empty set (undefined post-dominance).

    Used only by property tests to validate :func:`compute_ipostdoms`.
    """
    EXIT = cfg_mod.EXIT_BLOCK
    nodes = list(cfg.blocks.keys())

    # Which nodes can reach the exit?
    reaches: Set[int] = set()
    changed = True
    while changed:
        changed = False
        for node in nodes:
            if node in reaches:
                continue
            succs = cfg.blocks[node].succs
            if EXIT in succs or succs & reaches:
                reaches.add(node)
                changed = True

    universe = reaches | {EXIT}
    pdom: Dict[int, Set[int]] = {EXIT: {EXIT}}
    for node in nodes:
        pdom[node] = set(universe) | {node} if node in reaches else set()
    changed = True
    while changed:
        changed = False
        for node in nodes:
            if node not in reaches:
                continue
            meet = set(universe)
            for succ in cfg.blocks[node].succs:
                if succ == EXIT or succ in reaches:
                    meet &= pdom[succ]
            new = {node} | meet
            if new != pdom[node]:
                pdom[node] = new
                changed = True
    return pdom
