"""The unified analysis-report surface: one typed schema for findings.

Every analysis in the tree — happens-before race detection
(:mod:`repro.detect`), the maple expose loop (:mod:`repro.maple`), and
the bug-hunt pipeline (:mod:`repro.analysis.hunt`) — reports through
the dataclasses here and serializes to **one versioned JSON envelope**::

    {"schema": "repro.report", "schema_version": 1, "kind": "races",
     "finding_count": N, "findings": [...], ...}

The same payload shape travels over every surface: library returns,
``--json`` CLI output, and the serve/router ``races`` and ``hunt``
verbs, so a multi-stage pipeline can feed one stage's output to the
next without per-surface reshaping.  :func:`validate_report` is the
single checker all of them (and the test suite) share.

Pre-schema spellings (``race_count``, maple's bare ``candidates``
count) remain in emitted payloads for one release and are accepted on
input through :func:`repro.deprecation.deprecated_field`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.deprecation import deprecated_field

__all__ = [
    "HuntFinding",
    "RaceFinding",
    "SCHEMA",
    "SCHEMA_VERSION",
    "SliceReport",
    "hunt_report_payload",
    "maple_report_payload",
    "races_report_payload",
    "report_envelope",
    "validate_report",
]

#: Schema identifier stamped into every report payload.
SCHEMA = "repro.report"
#: Bumped on any incompatible payload change.
SCHEMA_VERSION = 1

#: Envelope kinds this version defines.
REPORT_KINDS = ("races", "hunt", "maple")

#: Hunt outcome classes (see EXPERIMENTS.md, "Bug firehose").
HUNT_OUTCOMES = ("crash", "wrong-output", "benign")


@dataclass(frozen=True)
class RaceFinding:
    """One detected race, in report-schema terms.

    Field names deliberately match the wire rows the serve ``races``
    verb always emitted (``repro.serve.sessions.race_payload``), so the
    schema unifies the surfaces without renaming anything on the wire.
    """

    addr: int
    kind: str                  # "write-write" | "read-write" | "write-read"
    first_pc: int
    second_pc: int
    first_instance: Tuple[int, int]
    second_instance: Tuple[int, int]
    description: str = ""

    @classmethod
    def from_race(cls, race, program=None) -> "RaceFinding":
        """Lift a :class:`repro.detect.RaceReport` into the schema."""
        return cls(addr=race.addr, kind=race.kind,
                   first_pc=race.first_pc, second_pc=race.second_pc,
                   first_instance=tuple(race.first_instance),
                   second_instance=tuple(race.second_instance),
                   description=race.describe(program))

    @classmethod
    def from_payload(cls, payload: dict) -> "RaceFinding":
        return cls(addr=int(payload["addr"]), kind=payload["kind"],
                   first_pc=int(payload["first_pc"]),
                   second_pc=int(payload["second_pc"]),
                   first_instance=tuple(payload["first_instance"]),
                   second_instance=tuple(payload["second_instance"]),
                   description=payload.get("description", ""))

    def to_payload(self) -> dict:
        return {
            "addr": self.addr,
            "kind": self.kind,
            "first_pc": self.first_pc,
            "second_pc": self.second_pc,
            "first_instance": list(self.first_instance),
            "second_instance": list(self.second_instance),
            "description": self.description,
        }

    def site_pair(self) -> Tuple[int, int, int]:
        low, high = sorted((self.first_pc, self.second_pc))
        return (self.addr, low, high)


@dataclass(frozen=True)
class SliceReport:
    """A pre-computed slice rooted at a failing instruction."""

    criterion: Tuple[int, int]          # (tid, tindex)
    instance_count: int
    pc_count: int
    lines: Tuple[int, ...]              # sorted unique source lines
    functions: Tuple[str, ...] = ()     # functions the slice touches

    @classmethod
    def from_slice(cls, dslice) -> "SliceReport":
        nodes = dslice.nodes.values()
        pcs = {node.addr for node in nodes}
        lines = sorted({node.line for node in nodes
                        if node.line is not None})
        functions = sorted({node.func for node in nodes
                            if node.func is not None})
        return cls(criterion=tuple(dslice.criterion),
                   instance_count=len(dslice),
                   pc_count=len(pcs),
                   lines=tuple(lines), functions=tuple(functions))

    @classmethod
    def from_payload(cls, payload: dict) -> "SliceReport":
        return cls(criterion=tuple(payload["criterion"]),
                   instance_count=int(payload["instance_count"]),
                   pc_count=int(payload["pc_count"]),
                   lines=tuple(payload["lines"]),
                   functions=tuple(payload.get("functions", ())))

    def to_payload(self) -> dict:
        return {
            "criterion": list(self.criterion),
            "instance_count": self.instance_count,
            "pc_count": self.pc_count,
            "lines": list(self.lines),
            "functions": list(self.functions),
        }


@dataclass(frozen=True)
class HuntFinding:
    """One confirmed (or classified) hunt candidate outcome."""

    candidate: str                      # stable candidate id
    origin: str                         # "race" | "iroot" | "seed"
    outcome: str                        # one of HUNT_OUTCOMES
    failure_code: Optional[int] = None
    failure: Optional[dict] = None      # VM failure record, if any
    schedule_runs: int = 0              # RLE runs in the exposing schedule
    minimized_runs: Optional[int] = None
    minimized_key: Optional[str] = None   # store key (served hunts)
    minimized_path: Optional[str] = None  # file path (CLI hunts)
    race: Optional[RaceFinding] = None
    slice_report: Optional[SliceReport] = None
    description: str = ""

    @property
    def confirmed(self) -> bool:
        return self.outcome in ("crash", "wrong-output")

    @classmethod
    def from_payload(cls, payload: dict) -> "HuntFinding":
        race = payload.get("race")
        sl = payload.get("slice")
        return cls(
            candidate=payload["candidate"], origin=payload["origin"],
            outcome=payload["outcome"],
            failure_code=payload.get("failure_code"),
            failure=payload.get("failure"),
            schedule_runs=int(payload.get("schedule_runs", 0)),
            minimized_runs=payload.get("minimized_runs"),
            minimized_key=payload.get("minimized_key"),
            minimized_path=payload.get("minimized_path"),
            race=RaceFinding.from_payload(race) if race else None,
            slice_report=SliceReport.from_payload(sl) if sl else None,
            description=payload.get("description", ""))

    def to_payload(self) -> dict:
        payload = {
            "candidate": self.candidate,
            "origin": self.origin,
            "outcome": self.outcome,
            "failure_code": self.failure_code,
            "failure": self.failure,
            "schedule_runs": self.schedule_runs,
            "minimized_runs": self.minimized_runs,
            "description": self.description,
        }
        if self.minimized_key is not None:
            payload["minimized_key"] = self.minimized_key
        if self.minimized_path is not None:
            payload["minimized_path"] = self.minimized_path
        if self.race is not None:
            payload["race"] = self.race.to_payload()
        if self.slice_report is not None:
            payload["slice"] = self.slice_report.to_payload()
        return payload


# -- envelopes ----------------------------------------------------------------

def report_envelope(kind: str, findings: Sequence, **extra) -> dict:
    """The one JSON envelope every analysis payload shares."""
    if kind not in REPORT_KINDS:
        raise ValueError("unknown report kind %r (have: %s)"
                         % (kind, ", ".join(REPORT_KINDS)))
    rows = [f.to_payload() if hasattr(f, "to_payload") else dict(f)
            for f in findings]
    payload = {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "kind": kind,
        "finding_count": len(rows),
        "findings": rows,
    }
    payload.update(extra)
    return payload


def races_report_payload(races, program=None) -> dict:
    """Race findings under the shared schema.

    Emits the canonical ``finding_count``/``findings`` pair plus the
    pre-schema ``race_count``/``races`` spellings (deprecated, kept one
    release) so existing consumers keep parsing.
    """
    findings = sorted(
        (RaceFinding.from_race(race, program) for race in races),
        key=lambda f: (f.addr, f.kind, f.first_pc, f.second_pc))
    payload = report_envelope("races", findings)
    payload["race_count"] = payload["finding_count"]
    payload["races"] = payload["findings"]
    return payload


def maple_report_payload(result) -> dict:
    """A :class:`repro.maple.MapleResult` under the shared schema."""
    findings: List[dict] = []
    if result.exposed:
        failure = result.pinball.meta.get("failure") or {}
        findings.append({
            "candidate": "maple:%s" % (result.exposed_by or "?"),
            "origin": "iroot" if result.exposed_by == "active" else "seed",
            "outcome": "crash",
            "failure_code": failure.get("code"),
            "description": (result.iroot.describe()
                            if result.iroot is not None else
                            "exposed during profiling"),
        })
    payload = report_envelope(
        "maple", findings,
        exposed=result.exposed,
        exposed_by=result.exposed_by,
        profile_runs=result.profile_runs,
        active_runs=result.active_runs,
        candidate_count=result.candidates)
    payload["candidates"] = result.candidates     # deprecated spelling
    return payload


def hunt_report_payload(findings: Sequence[HuntFinding],
                        races: Sequence[RaceFinding] = (),
                        candidates_tried: int = 0,
                        benign: int = 0,
                        **extra) -> dict:
    """Hunt findings (confirmed bugs) under the shared schema."""
    payload = report_envelope(
        "hunt", findings,
        candidates_tried=candidates_tried,
        benign=benign,
        race_findings=[r.to_payload() for r in races],
        **extra)
    return payload


# -- validation ---------------------------------------------------------------

_RACE_FIELDS = ("addr", "kind", "first_pc", "second_pc",
                "first_instance", "second_instance", "description")
_HUNT_FIELDS = ("candidate", "origin", "outcome")
_SLICE_FIELDS = ("criterion", "instance_count", "pc_count", "lines")


def _check_fields(row: dict, fields, where: str) -> None:
    for name in fields:
        if name not in row:
            raise ValueError("report %s is missing field %r" % (where, name))


def validate_report(payload: dict) -> dict:
    """Check ``payload`` against the schema; returns it for chaining.

    Raises :class:`ValueError` naming the first problem.  This is the
    single checker shared by the CLI, the serve tests, and the public
    API suite — all three surfaces must satisfy it.
    """
    if not isinstance(payload, dict):
        raise ValueError("report payload must be a dict, got %s"
                         % type(payload).__name__)
    if payload.get("schema") != SCHEMA:
        raise ValueError("payload schema is %r, expected %r"
                         % (payload.get("schema"), SCHEMA))
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError("payload schema_version is %r, expected %d"
                         % (version, SCHEMA_VERSION))
    kind = payload.get("kind")
    if kind not in REPORT_KINDS:
        raise ValueError("payload kind is %r, expected one of %s"
                         % (kind, ", ".join(REPORT_KINDS)))
    findings = deprecated_field(payload, "races", "findings")
    if not isinstance(findings, list):
        raise ValueError("report findings must be a list")
    count = deprecated_field(payload, "race_count", "finding_count")
    if count != len(findings):
        raise ValueError("finding_count %r does not match %d findings"
                         % (count, len(findings)))
    for index, row in enumerate(findings):
        where = "findings[%d]" % index
        if kind == "races":
            _check_fields(row, _RACE_FIELDS, where)
        else:
            _check_fields(row, _HUNT_FIELDS, where)
            if kind == "hunt" and row["outcome"] not in HUNT_OUTCOMES:
                raise ValueError("%s outcome %r not one of %s"
                                 % (where, row["outcome"],
                                    ", ".join(HUNT_OUTCOMES)))
            if "race" in row and row["race"] is not None:
                _check_fields(row["race"], _RACE_FIELDS, where + ".race")
            if "slice" in row and row["slice"] is not None:
                _check_fields(row["slice"], _SLICE_FIELDS,
                              where + ".slice")
    if kind == "hunt":
        for index, row in enumerate(payload.get("race_findings", ())):
            _check_fields(row, _RACE_FIELDS, "race_findings[%d]" % index)
    return payload
