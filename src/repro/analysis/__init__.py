"""Static binary analysis: code discovery, CFGs, post-dominators.

This is the analog of the paper's "static analyzer based on Pin's static
code discovery library" (Section 5.1 / Figure 10).  It builds an
*approximate* control-flow graph per function — approximate because
indirect jumps (``ijmp``, from switch jump tables) have statically unknown
successors — and supports **dynamic refinement**: as the tracer observes
indirect-jump targets at replay time, edges are added and the immediate
post-dominator information is recomputed.  Refined post-dominators are what
make dynamic control dependences (and hence slices) precise.
"""

from repro.analysis.cfg import CFG, BasicBlock, build_cfg
from repro.analysis.dominators import (
    compute_ipostdoms,
    postdominators_brute_force,
)
from repro.analysis.registry import CfgRegistry

__all__ = [
    "BasicBlock",
    "CFG",
    "CfgRegistry",
    "build_cfg",
    "compute_ipostdoms",
    "postdominators_brute_force",
]
