"""Static binary analysis: code discovery, CFGs, post-dominators.

This is the analog of the paper's "static analyzer based on Pin's static
code discovery library" (Section 5.1 / Figure 10).  It builds an
*approximate* control-flow graph per function — approximate because
indirect jumps (``ijmp``, from switch jump tables) have statically unknown
successors — and supports **dynamic refinement**: as the tracer observes
indirect-jump targets at replay time, edges are added and the immediate
post-dominator information is recomputed.  Refined post-dominators are what
make dynamic control dependences (and hence slices) precise.

The package also hosts the *dynamic* analysis front ends that sit on top
of replay: the unified analysis-report schema
(:mod:`repro.analysis.report` — one typed JSON surface shared by the
race detector, maple, and the hunt pipeline across library, CLI and
serve) and the in-situ bug-hunt pipeline (:mod:`repro.analysis.hunt`).
"""

from repro.analysis.cfg import CFG, BasicBlock, build_cfg
from repro.analysis.dominators import (
    compute_ipostdoms,
    postdominators_brute_force,
)
from repro.analysis.hunt import HuntResult, PerturbedScheduler, hunt
from repro.analysis.registry import CfgRegistry
from repro.analysis.report import (
    SCHEMA,
    SCHEMA_VERSION,
    HuntFinding,
    RaceFinding,
    SliceReport,
    hunt_report_payload,
    maple_report_payload,
    races_report_payload,
    validate_report,
)

__all__ = [
    "BasicBlock",
    "CFG",
    "CfgRegistry",
    "HuntFinding",
    "HuntResult",
    "PerturbedScheduler",
    "RaceFinding",
    "SCHEMA",
    "SCHEMA_VERSION",
    "SliceReport",
    "build_cfg",
    "compute_ipostdoms",
    "hunt",
    "hunt_report_payload",
    "maple_report_payload",
    "postdominators_brute_force",
    "races_report_payload",
    "validate_report",
]
