"""Newline-delimited JSON-RPC 2.0 framing for the debug service.

One request per line, one response per line, UTF-8 JSON, ``\n``
terminated.  The envelope is classic JSON-RPC 2.0 (``jsonrpc``, ``id``,
``method``, ``params`` / ``result`` | ``error``), chosen over a custom
protocol because every language has a client for it and the framing
survives ``netcat`` for debugging.

This module is transport-free: pure bytes in, dicts out.  The server
and the protocol fuzz tests share :func:`parse_request`, which enforces

* a **per-line size cap** (oversized requests are rejected with a
  structured ``OVERSIZED_REQUEST`` error before JSON parsing),
* strict envelope validation (object shape, ``method`` a string,
  ``params`` an object, ``id`` a JSON scalar),

and never raises anything but :class:`RpcError` — malformed input can
therefore always be answered with a structured error response instead
of crashing the connection handler.
"""

from __future__ import annotations

import json
from typing import Optional

# Standard JSON-RPC 2.0 error codes.
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603

# Implementation-defined (server) error codes, -32000..-32099 band.
NOT_FOUND = -32000            # unknown store key / missing resource
BUSY = -32001                 # worker pool backpressure rejection
TIMEOUT = -32002              # per-request deadline expired
WORKER_CRASHED = -32003       # request crashed its worker twice
BAD_PINBALL = -32004          # corrupt blob / unloadable pinball
SHUTTING_DOWN = -32005        # server is draining
OVERSIZED_REQUEST = -32006    # request line beyond the size cap
NODE_UNAVAILABLE = -32007     # node died mid-call / no healthy node left

#: Default per-connection request-line cap.  Generous enough for a
#: base64 pinball upload, small enough that one client cannot balloon
#: the server's read buffer.
MAX_REQUEST_BYTES = 8 * 1024 * 1024

JSONRPC_VERSION = "2.0"


class RpcError(Exception):
    """A protocol-level failure that maps onto one error response."""

    def __init__(self, code: int, message: str, data=None) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.data = data

    def to_response(self, req_id=None) -> dict:
        return make_error(req_id, self.code, self.message, self.data)


class RpcRemoteError(RuntimeError):
    """Client-side rendering of a server error response."""

    def __init__(self, code: int, message: str, data=None) -> None:
        super().__init__("server error %d: %s" % (code, message))
        self.code = code
        self.remote_message = message
        self.data = data


def make_request(method: str, params: Optional[dict] = None,
                 req_id: Optional[int] = None) -> dict:
    message = {"jsonrpc": JSONRPC_VERSION, "method": method}
    if params:
        message["params"] = params
    if req_id is not None:
        message["id"] = req_id
    return message


def make_response(req_id, result) -> dict:
    return {"jsonrpc": JSONRPC_VERSION, "id": req_id, "result": result}


def make_error(req_id, code: int, message: str, data=None) -> dict:
    error = {"code": code, "message": message}
    if data is not None:
        error["data"] = data
    return {"jsonrpc": JSONRPC_VERSION, "id": req_id, "error": error}


def encode_message(message: dict) -> bytes:
    """One wire frame: compact JSON + newline."""
    return (json.dumps(message, separators=(",", ":"), sort_keys=True)
            .encode("utf-8") + b"\n")


def parse_request(line: bytes,
                  max_bytes: int = MAX_REQUEST_BYTES) -> dict:
    """Validate one request line into ``{"method", "params", "id"}``.

    Raises :class:`RpcError` — and only :class:`RpcError` — on any
    malformed, oversized or invalid input.
    """
    if len(line) > max_bytes:
        raise RpcError(OVERSIZED_REQUEST,
                       "request line of %d bytes exceeds the %d byte cap"
                       % (len(line), max_bytes))
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise RpcError(PARSE_ERROR, "request is not UTF-8: %s" % exc)
    text = text.strip()
    if not text:
        raise RpcError(INVALID_REQUEST, "empty request line")
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise RpcError(PARSE_ERROR, "request is not JSON: %s" % exc)
    if not isinstance(payload, dict):
        raise RpcError(INVALID_REQUEST,
                       "request must be a JSON object, got %s"
                       % type(payload).__name__)
    method = payload.get("method")
    if not isinstance(method, str) or not method:
        raise RpcError(INVALID_REQUEST, "request has no method string")
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise RpcError(INVALID_REQUEST,
                       "params must be a JSON object, got %s"
                       % type(params).__name__)
    req_id = payload.get("id")
    if req_id is not None and not isinstance(req_id, (int, str)):
        raise RpcError(INVALID_REQUEST,
                       "id must be an integer, string or null")
    return {"method": method, "params": params, "id": req_id}
