"""Content-addressed pinball repository: sha256-keyed zlib blobs + manifest.

The durable half of the debug service.  rr's engineering report stresses
that record/replay artifacts only pay off when they are *durable,
shareable objects*; this store gives pinballs (and the program sources
needed to replay them) exactly that shape:

* **Blobs** live under ``<root>/blobs/<sha[:2]>/<sha>.blob`` as
  zlib-compressed payloads.  The key is the sha256 of the *uncompressed*
  payload, so the address is the content: storing the same
  program + schedule twice lands on the same key and the second put is a
  no-op (dedup).  Blob writes are atomic (write-temp + ``os.replace``)
  and idempotent.
* **The manifest** (``<root>/manifest.json``) carries everything that is
  *not* content: kind, tags, free-form metadata, sizes, creation time.
  It is rewritten atomically (write-temp + ``os.replace``), so readers
  never observe a torn manifest.  Worker processes never need it —
  :meth:`PinballStore.get` derives the blob path from the key alone —
  which is what lets the server own all manifest writes while the pool
  reads blobs concurrently.
* **Integrity**: every read decompresses and re-hashes.  Truncated,
  bit-flipped or otherwise corrupt blobs surface as
  :class:`~repro.pinplay.pinball.PinballFormatError` naming the on-disk
  blob path.
* **Chunked pinballs**: a format-v2 container is stored one blob *per
  frame* plus a small self-describing index blob, so re-recording a
  longer run of the same program dedups every frame of the shared
  prefix.  :meth:`PinballStore.get_payload` reassembles the container
  from the index alone (no manifest needed).
* **gc** removes untagged entries (and their blobs) plus any orphan
  blob files on disk that the manifest no longer references; untagged
  frame blobs survive while a surviving index entry references them.
* **Derived index blobs** (``<root>/indexes/<sha[:2]>/<sha>.<fp>.idx``)
  persist built DDG indexes keyed by ``(pinball sha, SliceOptions
  fingerprint)`` so any node can warm-start a slicing session without
  re-tracing (see :mod:`repro.slicing.ddg_serde`).  They are derived
  data — regenerable from the pinball — so they bypass the manifest
  entirely: pool workers on any node write them with a plain atomic
  rename, and gc sweeps those whose pinball no longer exists.
* **Multi-node sharing**: every manifest mutation runs inside an
  advisory ``flock`` transaction (``<root>/manifest.lock``) that
  re-reads the manifest first, so N server processes on a shared
  filesystem merge their writes instead of clobbering each other.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

try:
    import fcntl
except ImportError:          # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.obs.registry import OBS
from repro.pinplay.format_v2 import MAGIC as V2_MAGIC
from repro.pinplay.pinball import Pinball, PinballFormatError

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1
LOCK_NAME = "manifest.lock"
INDEX_SUFFIX = ".idx"


def _utcnow() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


@dataclass
class StoreEntry:
    """One manifest row: everything about a blob that is not its content."""

    sha: str
    kind: str = "pinball"
    tags: List[str] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)
    size: int = 0                 # uncompressed payload bytes
    stored_size: int = 0          # zlib blob bytes on disk
    created: str = ""

    def to_dict(self) -> dict:
        return {
            "sha": self.sha,
            "kind": self.kind,
            "tags": sorted(self.tags),
            "meta": self.meta,
            "size": self.size,
            "stored_size": self.stored_size,
            "created": self.created,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StoreEntry":
        return cls(sha=payload["sha"], kind=payload.get("kind", "pinball"),
                   tags=list(payload.get("tags", [])),
                   meta=dict(payload.get("meta", {})),
                   size=int(payload.get("size", 0)),
                   stored_size=int(payload.get("stored_size", 0)),
                   created=payload.get("created", ""))


class PinballStore:
    """A content-addressed blob repository rooted at one directory."""

    def __init__(self, root: str, create: bool = True) -> None:
        self.root = os.path.abspath(root)
        self.blob_root = os.path.join(self.root, "blobs")
        self.index_root = os.path.join(self.root, "indexes")
        self.manifest_path = os.path.join(self.root, MANIFEST_NAME)
        self.lock_path = os.path.join(self.root, LOCK_NAME)
        self._lock_depth = 0
        self._lock_handle = None
        if create:
            os.makedirs(self.blob_root, exist_ok=True)
        self._entries: Dict[str, StoreEntry] = {}
        self._load_manifest()

    @contextmanager
    def _locked(self):
        """Advisory cross-process manifest transaction (reentrant).

        On outermost entry: take an exclusive ``flock`` on the lock
        file, then re-read the manifest so writes from other server
        processes sharing the store are merged before ours lands.  Blob
        and index files never need this — they are content-addressed
        and written atomically — only the read-modify-write of the
        manifest does.  No-op degradation where ``flock`` is missing.
        """
        if self._lock_depth:
            self._lock_depth += 1
            try:
                yield
            finally:
                self._lock_depth -= 1
            return
        handle = None
        if fcntl is not None:
            try:
                handle = open(self.lock_path, "a+")
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            except OSError:
                handle = None
        self._lock_depth = 1
        self._lock_handle = handle
        try:
            self.reload()
            yield
        finally:
            self._lock_depth = 0
            self._lock_handle = None
            if handle is not None:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                except OSError:
                    pass
                handle.close()

    # -- manifest ----------------------------------------------------------

    def _load_manifest(self) -> None:
        try:
            with open(self.manifest_path) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return
        except (OSError, ValueError) as exc:
            raise PinballFormatError(
                "%s: unreadable store manifest (%s)"
                % (self.manifest_path, exc)) from exc
        if (not isinstance(payload, dict)
                or payload.get("manifest_version") != MANIFEST_VERSION):
            raise PinballFormatError(
                "%s: unsupported store manifest version %r"
                % (self.manifest_path,
                   payload.get("manifest_version")
                   if isinstance(payload, dict) else None))
        self._entries = {
            sha: StoreEntry.from_dict(entry)
            for sha, entry in payload.get("entries", {}).items()}

    def reload(self) -> None:
        """Re-read the manifest from disk (other-process writes)."""
        self._entries = {}
        self._load_manifest()

    def _write_manifest(self) -> None:
        """Atomic rewrite: serialize to a temp file, then ``os.replace``.

        A crash mid-write leaves either the old manifest or the new one
        on disk, never a torn hybrid; the temp file is cleaned up on
        failure.
        """
        payload = {
            "manifest_version": MANIFEST_VERSION,
            "entries": {sha: entry.to_dict()
                        for sha, entry in sorted(self._entries.items())},
        }
        tmp_path = self.manifest_path + ".tmp.%d" % os.getpid()
        try:
            with open(tmp_path, "w") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.manifest_path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # -- blob addressing ---------------------------------------------------

    def blob_path(self, sha: str) -> str:
        return os.path.join(self.blob_root, sha[:2], sha + ".blob")

    @staticmethod
    def content_key(data: bytes) -> str:
        return hashlib.sha256(data).hexdigest()

    # -- writes ------------------------------------------------------------

    def _put_blob(self, data: bytes, kind: str) -> Tuple[str, bool]:
        """Write one content-addressed blob + manifest entry in memory.

        Does *not* persist the manifest — callers batch several blob
        writes (a v2 pinball's frames) under one ``_write_manifest``.
        """
        sha = self.content_key(data)
        entry = self._entries.get(sha)
        deduplicated = entry is not None
        if entry is None:
            blob = zlib.compress(data, 6)
            path = self.blob_path(sha)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            if not os.path.exists(path):
                tmp_path = path + ".tmp.%d" % os.getpid()
                with open(tmp_path, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_path, path)
            entry = StoreEntry(sha=sha, kind=kind, size=len(data),
                               stored_size=len(blob), created=_utcnow())
            self._entries[sha] = entry
            if OBS.enabled:
                OBS.add("serve.store/bytes_written", len(blob))
        else:
            if OBS.enabled:
                OBS.inc("serve.store/dedup_hits")
        return sha, deduplicated

    def put(self, data: bytes, kind: str = "pinball",
            tags: Iterable[str] = (), meta: Optional[dict] = None,
            ) -> Tuple[str, bool]:
        """Store ``data``; returns ``(sha, deduplicated)``.

        Re-putting identical content merges tags/meta into the existing
        entry and writes no second blob (``deduplicated=True``).
        """
        with self._locked():
            sha, deduplicated = self._put_blob(data, kind)
            entry = self._entries[sha]
            for tag in tags:
                if tag not in entry.tags:
                    entry.tags.append(tag)
            if meta:
                entry.meta.update(meta)
            self._write_manifest()
        if OBS.enabled:
            OBS.inc("serve.store/puts")
        return sha, deduplicated

    def tag(self, sha: str, *tags: str) -> None:
        with self._locked():
            entry = self._require(sha)
            for tag in tags:
                if tag not in entry.tags:
                    entry.tags.append(tag)
            self._write_manifest()

    def untag(self, sha: str, *tags: str) -> None:
        with self._locked():
            entry = self._require(sha)
            entry.tags = [t for t in entry.tags if t not in tags]
            self._write_manifest()

    def delete(self, sha: str) -> None:
        with self._locked():
            self._require(sha)
            del self._entries[sha]
            try:
                os.unlink(self.blob_path(sha))
            except OSError:
                pass
            self._write_manifest()

    def gc(self) -> List[str]:
        """Remove untagged entries and orphan blob files; returns keys.

        Frame blobs of a chunked (v2) pinball are untagged by design:
        they survive gc for as long as some surviving entry lists them in
        ``meta["frames"]``, and go away with the last index that does.
        Cached DDG index files ride along: an index whose pinball entry
        no longer survives is derived garbage and is swept too (tracked
        by the ``serve.store/gc_index_removed`` counter, not the return
        list — they are files, not manifest keys).
        """
        with self._locked():
            candidates = {sha for sha, entry in self._entries.items()
                          if not entry.tags}
            referenced = set()
            for sha, entry in self._entries.items():
                if sha in candidates:
                    continue
                referenced.update(entry.meta.get("frames", ()))
            removed = sorted(candidates - referenced)
            for sha in removed:
                del self._entries[sha]
                try:
                    os.unlink(self.blob_path(sha))
                except OSError:
                    pass
            # Orphan blobs: files on disk the manifest no longer
            # references (e.g. a crash between blob write and manifest
            # write).
            for dirpath, _dirnames, filenames in os.walk(self.blob_root):
                for filename in filenames:
                    if not filename.endswith(".blob"):
                        continue
                    sha = filename[:-len(".blob")]
                    if sha not in self._entries:
                        try:
                            os.unlink(os.path.join(dirpath, filename))
                        except OSError:
                            pass
                        if sha not in removed:
                            removed.append(sha)
            index_removed = 0
            for pinball_sha, _fingerprint, path in self._index_files():
                if pinball_sha not in self._entries:
                    try:
                        os.unlink(path)
                        index_removed += 1
                    except OSError:
                        pass
            self._write_manifest()
        if OBS.enabled:
            OBS.add("serve.store/gc_removed", len(removed))
            OBS.add("serve.store/gc_index_removed", index_removed)
        return removed

    # -- reads -------------------------------------------------------------

    def _require(self, sha: str) -> StoreEntry:
        entry = self._entries.get(sha)
        if entry is None:
            raise KeyError("store has no entry %s" % sha)
        return entry

    def has(self, sha: str) -> bool:
        return sha in self._entries or os.path.exists(self.blob_path(sha))

    def entry(self, sha: str) -> StoreEntry:
        entry = self._entries.get(sha)
        if entry is None:
            # Another node may have registered the key since our last
            # manifest read (shared-store multi-node mode): one reload
            # before giving up makes cross-node keys visible.
            self.reload()
            entry = self._require(sha)
        return entry

    def get(self, sha: str) -> bytes:
        """Read, decompress and *verify* the blob for ``sha``.

        Works without the manifest (the path is derived from the key),
        so pool workers can read blobs the server just wrote without a
        manifest reload.  Any integrity failure raises
        :class:`PinballFormatError` naming the blob path.
        """
        path = self.blob_path(sha)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            raise KeyError("store has no blob %s (expected at %s)"
                           % (sha, path))
        try:
            data = zlib.decompress(blob)
        except zlib.error as exc:
            raise PinballFormatError(
                "%s: corrupt store blob (zlib: %s)" % (path, exc)) from exc
        actual = self.content_key(data)
        if actual != sha:
            raise PinballFormatError(
                "%s: store blob content hash mismatch (manifest key %s, "
                "content %s)" % (path, sha, actual))
        if OBS.enabled:
            OBS.inc("serve.store/gets")
            OBS.add("serve.store/bytes_read", len(blob))
        return data

    def list(self, kind: Optional[str] = None,
             tag: Optional[str] = None) -> List[dict]:
        out = []
        for sha in sorted(self._entries):
            entry = self._entries[sha]
            if kind is not None and entry.kind != kind:
                continue
            if tag is not None and tag not in entry.tags:
                continue
            out.append(entry.to_dict())
        return out

    def stats(self) -> dict:
        by_kind: Dict[str, int] = {}
        for entry in self._entries.values():
            by_kind[entry.kind] = by_kind.get(entry.kind, 0) + 1
        index_files = 0
        index_bytes = 0
        for _sha, _fp, path in self._index_files():
            index_files += 1
            try:
                index_bytes += os.path.getsize(path)
            except OSError:
                pass
        return {
            "root": self.root,
            "entries": len(self._entries),
            "by_kind": by_kind,
            "bytes_raw": sum(e.size for e in self._entries.values()),
            "bytes_stored": sum(e.stored_size
                                for e in self._entries.values()),
            "index_files": index_files,
            "index_bytes": index_bytes,
        }

    # -- derived index blobs (persistent DDG cache) ------------------------

    def index_path(self, pinball_sha: str, fingerprint: str) -> str:
        return os.path.join(self.index_root, pinball_sha[:2],
                            "%s.%s%s" % (pinball_sha, fingerprint,
                                         INDEX_SUFFIX))

    def _index_files(self):
        """Yield ``(pinball_sha, fingerprint, path)`` for every cached
        index file on disk (skips names we did not write)."""
        for dirpath, _dirnames, filenames in os.walk(self.index_root):
            for filename in sorted(filenames):
                if not filename.endswith(INDEX_SUFFIX):
                    continue
                stem = filename[:-len(INDEX_SUFFIX)]
                pinball_sha, sep, fingerprint = stem.partition(".")
                if sep:
                    yield (pinball_sha, fingerprint,
                           os.path.join(dirpath, filename))

    def put_index(self, pinball_sha: str, fingerprint: str,
                  data: bytes) -> str:
        """Persist a serialized DDG index for ``(pinball, options)``.

        Manifest-free by design: the payload is derived data any node
        can regenerate, the name encodes the full key, and the write is
        an atomic rename — so pool workers on any node store indexes
        concurrently with zero coordination.  Returns the path.
        """
        path = self.index_path(pinball_sha, fingerprint)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp_path = path + ".tmp.%d" % os.getpid()
        try:
            with open(tmp_path, "wb") as handle:
                handle.write(data)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        if OBS.enabled:
            OBS.inc("serve.store/index_puts")
            OBS.add("serve.store/index_bytes_written", len(data))
        return path

    def get_index(self, pinball_sha: str, fingerprint: str) -> bytes:
        """The serialized index blob, raw (the ``RIX1`` container does
        its own CRC/version verification on deserialize).  Raises
        :class:`KeyError` on a cache miss."""
        path = self.index_path(pinball_sha, fingerprint)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            raise KeyError("store has no cached index for %s/%s"
                           % (pinball_sha, fingerprint))
        if OBS.enabled:
            OBS.inc("serve.store/index_gets")
        return data

    def delete_index(self, pinball_sha: str,
                     fingerprint: Optional[str] = None) -> int:
        """Drop cached indexes for a pinball (one fingerprint, or all);
        returns the number of files removed.  Used when a cached blob
        turns out corrupt, and by cache invalidation."""
        removed = 0
        if fingerprint is not None:
            targets = [self.index_path(pinball_sha, fingerprint)]
        else:
            targets = [path for sha, _fp, path in self._index_files()
                       if sha == pinball_sha]
        for path in targets:
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    # -- pinball / source conveniences ------------------------------------

    def put_pinball(self, pinball: Pinball, tags: Iterable[str] = (),
                    meta: Optional[dict] = None,
                    format: Optional[str] = None) -> str:
        """Store a pinball; returns the sha to fetch it back by.

        v1 pinballs are one blob, content-addressed over the canonical
        uncompressed JSON, so two recordings of the same
        program + schedule — byte-identical payloads — deduplicate to one
        blob.  v2 containers are chunked *per frame*: each frame becomes
        its own untagged blob and the addressed entry is a small index
        listing them, so re-recording a longer run of the same program
        dedups every frame of the shared prefix.  ``format`` defaults to
        the pinball's own format (v1 stays v1, a lazily-opened v2 file
        stays v2) unless the ``pinball_format`` config knob overrides.
        """
        combined = dict(meta or {})
        combined.setdefault("program_name", pinball.program_name)
        combined.setdefault("kind_detail", pinball.kind)
        combined.setdefault("instructions", pinball.total_instructions)
        combined.setdefault(
            "failure", (pinball.meta.get("failure") or {}).get("code"))
        blob = pinball.to_bytes(compress=False, format=format)
        # One transaction around the whole put: a chunked container's
        # frame blobs land in memory first and must not be discarded by
        # the inner put()'s manifest merge.
        with self._locked():
            if blob[:4] == V2_MAGIC:
                return self._put_pinball_v2(blob, pinball.program_name,
                                            tags, combined)
            sha, _dedup = self.put(blob, kind="pinball", tags=tags,
                                   meta=combined)
        return sha

    def _put_pinball_v2(self, blob: bytes, program_name: str,
                        tags: Iterable[str], meta: dict) -> str:
        from repro.pinplay.format_v2 import frame_chunks
        frames = []
        frame_dedups = 0
        for chunk in frame_chunks(blob, source="<store put>"):
            fsha, dedup = self._put_blob(chunk, kind="pinball-frame")
            frames.append(fsha)
            if dedup:
                frame_dedups += 1
        index = json.dumps(
            {"repro_pinball_v2_index": 1, "program_name": program_name,
             "frames": frames},
            sort_keys=True).encode("utf-8")
        meta = dict(meta)
        meta["format"] = "v2"
        meta["frames"] = frames
        sha, _dedup = self.put(index, kind="pinball", tags=tags, meta=meta)
        if OBS.enabled:
            OBS.add("serve.store/frame_puts", len(frames))
            OBS.add("serve.store/frame_dedup_hits", frame_dedups)
        return sha

    @staticmethod
    def _v2_index_frames(data: bytes) -> Optional[List[str]]:
        """The frame shas if ``data`` is a chunked-pinball index blob."""
        if not data.startswith(b"{") or b"repro_pinball_v2_index" not in data:
            return None
        try:
            payload = json.loads(data)
        except ValueError:
            return None
        if (isinstance(payload, dict)
                and payload.get("repro_pinball_v2_index") == 1):
            return [str(sha) for sha in payload.get("frames", ())]
        return None

    def get_payload(self, sha: str) -> bytes:
        """The stored pinball payload, reassembling chunked v2 entries.

        Like :meth:`get`, works without the manifest: the index blob is
        self-describing, so pool workers can fetch chunked pinballs the
        server just wrote.
        """
        data = self.get(sha)
        frames = self._v2_index_frames(data)
        if frames is None:
            return data
        if OBS.enabled:
            OBS.inc("serve.store/frame_reassemblies")
        return V2_MAGIC + b"".join(self.get(fsha) for fsha in frames)

    def get_pinball(self, sha: str) -> Pinball:
        data = self.get_payload(sha)
        return Pinball.from_bytes(data, source=self.blob_path(sha))

    def put_source(self, source: str, program_name: str,
                   tags: Iterable[str] = ()) -> str:
        sha, _dedup = self.put(source.encode("utf-8"), kind="source",
                               tags=tags, meta={"program_name": program_name})
        return sha

    def get_source(self, sha: str) -> str:
        return self.get(sha).decode("utf-8")
