"""Blocking TCP client for the debug service (used by ``repro client``).

A thin synchronous wrapper over the newline-delimited JSON-RPC protocol:
connect, send one request line, read one response line, raise
:class:`~repro.serve.rpc.RpcRemoteError` on error responses.  Network
failures surface as the standard ``OSError`` family (the CLI maps
``ConnectionRefusedError`` to exit code 69 / EX_UNAVAILABLE).
"""

from __future__ import annotations

import base64
import itertools
import json
import socket
from typing import Optional

from repro.serve import rpc
from repro.serve.server import DEFAULT_HOST, DEFAULT_PORT


class DebugClient:
    """One connection to a running :class:`~repro.serve.server.DebugServer`."""

    def __init__(self, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                 timeout: float = 120.0,
                 connect_timeout: float = 5.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock = socket.create_connection((host, port),
                                              timeout=connect_timeout)
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "DebugClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- core call ---------------------------------------------------------

    def call(self, method: str, params: Optional[dict] = None):
        """One request/response round trip; returns the ``result``.

        A connection that dies *mid-call* — the server process was
        killed, the socket reset, the response truncated — surfaces as
        :class:`~repro.serve.rpc.RpcRemoteError` with
        ``NODE_UNAVAILABLE``, not as a raw ``ConnectionResetError``:
        once the request is in flight the failure belongs to the remote
        side, and the CLI maps it to exit 70 / EX_SOFTWARE like every
        other server error.  Connect-phase failures still raise the
        ``OSError`` family (exit 69 / EX_UNAVAILABLE).
        """
        req_id = next(self._ids)
        frame = rpc.encode_message(
            rpc.make_request(method, params or {}, req_id=req_id))
        try:
            self._file.write(frame)
            self._file.flush()
            line = self._file.readline()
        except (ConnectionResetError, BrokenPipeError) as exc:
            raise rpc.RpcRemoteError(
                rpc.NODE_UNAVAILABLE,
                "connection lost mid-call (%s): %s" % (method, exc)) from exc
        if not line:
            raise rpc.RpcRemoteError(
                rpc.NODE_UNAVAILABLE,
                "server closed the connection mid-call (%s)" % method)
        try:
            response = json.loads(line.decode("utf-8"))
        except ValueError as exc:
            raise rpc.RpcRemoteError(
                rpc.PARSE_ERROR, "unparseable server response: %s" % exc)
        if not isinstance(response, dict):
            raise rpc.RpcRemoteError(
                rpc.PARSE_ERROR, "server response is not an object")
        if response.get("error") is not None:
            error = response["error"]
            raise rpc.RpcRemoteError(error.get("code", rpc.INTERNAL_ERROR),
                                     error.get("message", "unknown error"),
                                     error.get("data"))
        return response.get("result")

    # -- convenience verbs -------------------------------------------------

    def ping(self) -> dict:
        return self.call("ping")

    def stats(self, workers: bool = True) -> dict:
        return self.call("stats", {"workers": workers})

    def shutdown(self) -> dict:
        return self.call("shutdown")

    def record(self, program_source: str, program_name: str = "program",
               **options) -> dict:
        params = {"program": program_source, "program_name": program_name}
        params.update(options)
        return self.call("record", params)

    def put_recording(self, program_source: str, pinball_blob: bytes,
                      program_name: Optional[str] = None,
                      tags=()) -> dict:
        params = {
            "program": program_source,
            "pinball": base64.b64encode(pinball_blob).decode("ascii"),
            "tags": list(tags),
        }
        if program_name:
            params["program_name"] = program_name
        return self.call("store.put_recording", params)

    def replay(self, key: str, **options) -> dict:
        return self.call("replay", {"key": key, **options})

    def slice(self, key: str, **options) -> dict:
        return self.call("slice", {"key": key, **options})

    def last_reads(self, key: str, count: int = 10) -> dict:
        return self.call("last_reads", {"key": key, "count": count})

    def races(self, key: str, **options) -> dict:
        return self.call("races", {"key": key, **options})

    def hunt(self, key: str, **options) -> dict:
        return self.call("hunt", {"key": key, **options})

    def list(self, **filters) -> dict:
        return self.call("store.list", filters)

    def get_blob(self, sha: str) -> bytes:
        result = self.call("store.get", {"sha": sha})
        return base64.b64decode(result["blob"].encode("ascii"))

    def gc(self) -> dict:
        return self.call("store.gc")
