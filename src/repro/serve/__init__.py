"""``repro.serve`` — the resident debug service (ISSUE 4).

DrDebug is *cyclic*: one recording, many replay/slice queries against it
(paper Figure 2).  That access pattern is the shape of a long-lived
service, not a one-shot CLI — so this package keeps recordings and their
expensive derived state resident and serves concurrent clients:

* :mod:`repro.serve.store` — a content-addressed pinball repository on
  disk: sha256-keyed zlib blobs plus a JSON manifest carrying tags and
  metadata.  Identical recordings deduplicate to one blob; corrupt blobs
  surface as :class:`~repro.pinplay.pinball.PinballFormatError` naming
  the on-disk path; the manifest rewrite is atomic (write-temp +
  ``os.replace``).
* :mod:`repro.serve.sessions` — a session manager that opens a stored
  recording into a resident :class:`~repro.slicing.api.SlicingSession`
  with the DDG index pre-built, behind an LRU bounded by entry count
  *and* approximate bytes, so repeated queries against hot recordings
  skip the trace + index rebuild entirely.
* :mod:`repro.serve.workers` — a ``multiprocessing`` worker pool running
  trace/index builds and slice queries in parallel across recordings:
  per-request timeouts, a bounded queue with explicit backpressure
  rejection, and worker-crash handling (requeue once, then error).
* :mod:`repro.serve.rpc` / :mod:`repro.serve.server` /
  :mod:`repro.serve.client` — a newline-delimited JSON-RPC protocol over
  TCP (asyncio server, blocking client) exposing ``record``, ``replay``,
  ``slice``, ``last_reads``, ``races``, the ``store.*`` verbs,
  ``stats`` and ``shutdown``; the CLI's ``repro serve`` / ``repro
  client`` verbs sit on top.

All four layers report into the observability registry under the
``serve`` layer prefix (``serve.requests``, ``serve.cache/{hit,miss}``,
``serve.pool/{queued,rejected,timeouts}``, latency histograms), so
``repro obs report`` and the ``stats`` RPC expose the service's health.
``REPRO_SERVE_WORKERS`` sets the default pool width, next to
``REPRO_SLICE_INDEX`` and ``REPRO_OBS``.
"""

from repro.serve.store import PinballStore, StoreEntry
from repro.serve.sessions import SessionManager, slice_payload, race_payload
from repro.serve.workers import (
    DEFAULT_WORKERS,
    PoolBusyError,
    PoolError,
    PoolTimeoutError,
    WorkerCrashError,
    WorkerPool,
)
from repro.serve.rpc import RpcError, RpcRemoteError
from repro.serve.server import DebugServer, run_server
from repro.serve.client import DebugClient

__all__ = [
    "DEFAULT_WORKERS",
    "DebugClient",
    "DebugServer",
    "PinballStore",
    "PoolBusyError",
    "PoolError",
    "PoolTimeoutError",
    "RpcError",
    "RpcRemoteError",
    "SessionManager",
    "StoreEntry",
    "WorkerCrashError",
    "WorkerPool",
    "race_payload",
    "run_server",
    "slice_payload",
]
