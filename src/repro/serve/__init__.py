"""``repro.serve`` — the resident debug service (ISSUE 4).

DrDebug is *cyclic*: one recording, many replay/slice queries against it
(paper Figure 2).  That access pattern is the shape of a long-lived
service, not a one-shot CLI — so this package keeps recordings and their
expensive derived state resident and serves concurrent clients:

* :mod:`repro.serve.store` — a content-addressed pinball repository on
  disk: sha256-keyed zlib blobs plus a JSON manifest carrying tags and
  metadata.  Identical recordings deduplicate to one blob; corrupt blobs
  surface as :class:`~repro.pinplay.pinball.PinballFormatError` naming
  the on-disk path; the manifest rewrite is atomic (write-temp +
  ``os.replace``).
* :mod:`repro.serve.sessions` — a session manager that opens a stored
  recording into a resident :class:`~repro.slicing.api.SlicingSession`
  with the DDG index pre-built, behind an LRU bounded by entry count
  *and* approximate bytes, so repeated queries against hot recordings
  skip the trace + index rebuild entirely.
* :mod:`repro.serve.workers` — a ``multiprocessing`` worker pool running
  trace/index builds and slice queries in parallel across recordings:
  per-request timeouts, a bounded queue with explicit backpressure
  rejection, and worker-crash handling (requeue once, then error).
* :mod:`repro.serve.rpc` / :mod:`repro.serve.server` /
  :mod:`repro.serve.client` — a newline-delimited JSON-RPC protocol over
  TCP (asyncio server, blocking client) exposing ``record``, ``replay``,
  ``slice``, ``last_reads``, ``races``, the ``store.*`` verbs,
  ``stats`` and ``shutdown``; the CLI's ``repro serve`` / ``repro
  client`` verbs sit on top.
* :mod:`repro.serve.router` — a thin asyncio front end for horizontal
  scale-out (ISSUE 8): N serve processes share one store; the router
  dispatches by key affinity (two-choice hashing on the recording sha),
  health-checks nodes, and retries a request once when a node dies
  mid-call.  Cold nodes warm-start from the store's persistent index
  cache (``<root>/indexes/``, see :mod:`repro.slicing.ddg_serde`).
* :mod:`repro.serve.loadgen` — the closed-loop load generator behind
  ``repro client bench``: concurrent clients, zipf-distributed key
  popularity, p50/p99/throughput reporting.

All four layers report into the observability registry under the
``serve`` layer prefix (``serve.requests``, ``serve.cache/{hit,miss}``,
``serve.pool/{queued,rejected,timeouts}``, latency histograms), so
``repro obs report`` and the ``stats`` RPC expose the service's health.
``REPRO_SERVE_WORKERS`` sets the default pool width, next to
``REPRO_SLICE_INDEX`` and ``REPRO_OBS``.
"""

from repro.serve.store import PinballStore, StoreEntry
from repro.serve.sessions import SessionManager, slice_payload, race_payload
from repro.serve.workers import (
    DEFAULT_WORKERS,
    PoolBusyError,
    PoolError,
    PoolTimeoutError,
    WorkerCrashError,
    WorkerPool,
)
from repro.serve.rpc import RpcError, RpcRemoteError
from repro.serve.server import DebugServer, run_server
from repro.serve.client import DebugClient
from repro.serve.router import Router, parse_nodes, run_router
from repro.serve.loadgen import run_bench

__all__ = [
    "DEFAULT_WORKERS",
    "DebugClient",
    "DebugServer",
    "PinballStore",
    "PoolBusyError",
    "PoolError",
    "PoolTimeoutError",
    "Router",
    "RpcError",
    "RpcRemoteError",
    "SessionManager",
    "StoreEntry",
    "WorkerCrashError",
    "WorkerPool",
    "parse_nodes",
    "race_payload",
    "run_bench",
    "run_router",
    "run_server",
    "slice_payload",
]
