"""Thin asyncio router fronting N ``repro serve`` nodes (fleet mode).

The debug service scales horizontally by running independent server
processes over one shared store; this router is the single address
clients talk to.  It is deliberately *thin*: requests are relayed as
raw wire lines (the JSON-RPC envelope, ids included, passes through
untouched) and every expensive operation stays on the nodes.  What the
router owns is placement and failure handling:

* **Key affinity** — requests that name a recording hash to a home node
  (:func:`affinity_choices`), generalizing the worker pool's
  same-recording→same-worker routing to whole processes: a hot
  recording's resident sessions keep getting hit no matter which client
  connects.  **Power-of-two-choices** fallback: when the home node is
  drowning (its in-flight depth far exceeds the alternative's), the
  request goes to the second hash choice instead — bounded imbalance
  without global coordination.
* **Health** — a background loop pings every node; two consecutive
  failures deregister a node (``router.deregistered``) until a later
  probe revives it.  Keyless requests go to the least-loaded healthy
  node.
* **Retry-once-on-node-death** — a forward that dies mid-call (node
  killed, connection reset, EOF before the response line) is retried
  exactly once on a different healthy node; a second failure surfaces
  as a structured ``NODE_UNAVAILABLE`` error, never a hung client.
  Correctness leans on the shared store: any node can rebuild any
  session (warm-started from the persistent index cache when possible),
  so a retried request returns byte-identical payloads — asserted by
  ``tests/serve/test_router_differential.py``.

The router answers ``ping`` / ``stats`` / ``shutdown`` itself; every
other method is forwarded.  Per-node connections are pooled and reused
across requests (nodes serve one request per connection at a time, so a
pooled connection is free exactly when no relay is using it).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from typing import Dict, List, Optional, Sequence, Tuple
from zlib import crc32

from repro.obs.registry import OBS
from repro.serve import rpc

DEFAULT_HEALTH_INTERVAL = 2.0
#: Consecutive probe failures before a node is deregistered.
DEREGISTER_AFTER = 2
#: Power-of-two-choices pressure gate: prefer the affinity home unless
#: its in-flight depth exceeds the alternative's by more than this.
AFFINITY_PRESSURE = 4

#: Params fields that carry a recording identity, in precedence order —
#: the affinity key (mirrors the worker pool's routing key).
_KEY_FIELDS = ("key", "pinball", "sha")


def _hash_slot(text: str, nodes: int, offset: int) -> int:
    window = text[offset:offset + 8]
    try:
        return int(window, 16) % nodes
    except ValueError:
        return crc32(window.encode("utf-8", "replace")) % nodes


def affinity_choices(key: str, nodes: int) -> Tuple[int, int]:
    """The two candidate node slots for ``key`` (home, alternative).

    Two independent 32-bit windows of the (usually sha256) key give two
    uniform choices; non-hex keys fall back to crc32 of the same
    windows.  Pure so tests can pin the dispatch arithmetic.
    """
    if nodes <= 1:
        return (0, 0)
    home = _hash_slot(key, nodes, 0)
    alt = _hash_slot(key, nodes, 8)
    if alt == home:
        alt = (home + 1) % nodes
    return (home, alt)


def parse_nodes(spec: str) -> List[Tuple[str, int]]:
    """``"host:port,host:port"`` → address pairs (ValueError on junk)."""
    out: List[Tuple[str, int]] = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        host, sep, port = chunk.rpartition(":")
        if not sep or not host:
            raise ValueError("node %r is not host:port" % chunk)
        out.append((host, int(port)))
    if not out:
        raise ValueError("no serve nodes given (need host:port[,host:port])")
    return out


class NodeState:
    """One backend node: address, health, load, pooled connections."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.healthy = True
        self.in_flight = 0
        self.consecutive_failures = 0
        self.forwarded = 0
        self._pool: List[Tuple[asyncio.StreamReader,
                               asyncio.StreamWriter]] = []

    @property
    def address(self) -> str:
        return "%s:%d" % (self.host, self.port)

    async def connection(self, limit: int):
        while self._pool:
            reader, writer = self._pool.pop()
            if not writer.is_closing():
                return reader, writer
        return await asyncio.open_connection(self.host, self.port,
                                             limit=limit)

    def release(self, reader: asyncio.StreamReader,
                writer: asyncio.StreamWriter) -> None:
        if writer.is_closing():
            return
        self._pool.append((reader, writer))

    def drop_connections(self) -> None:
        while self._pool:
            _reader, writer = self._pool.pop()
            try:
                writer.close()
            except Exception:   # noqa: BLE001 — teardown best-effort
                pass

    def to_dict(self) -> dict:
        return {
            "address": self.address,
            "healthy": self.healthy,
            "in_flight": self.in_flight,
            "forwarded": self.forwarded,
            "consecutive_failures": self.consecutive_failures,
        }


class Router:
    """Key-affinity request router over a fleet of serve nodes."""

    def __init__(self, nodes: Sequence[Tuple[str, int]],
                 host: str = "127.0.0.1", port: int = 0,
                 health_interval: float = DEFAULT_HEALTH_INTERVAL,
                 max_request_bytes: int = rpc.MAX_REQUEST_BYTES,
                 chaos_drop_forwards: Optional[int] = None) -> None:
        if not nodes:
            raise ValueError("router needs at least one serve node")
        self.nodes = [NodeState(host, port) for host, port in nodes]
        self.host = host
        self.port = port
        self.health_interval = health_interval
        self.max_request_bytes = max_request_bytes
        self.started_at = time.time()
        self.counts: Dict[str, int] = {
            "connections": 0, "requests": 0, "forwarded": 0, "retries": 0,
            "node_deaths": 0, "health_checks": 0, "deregistered": 0,
            "errors": 0, "chaos_drops": 0,
        }
        #: Fault injection (chaos suite): fail this many forwards before
        #: reading their response, as if the node connection dropped —
        #: exercises the retry path without killing anything.
        if chaos_drop_forwards is None:
            chaos_drop_forwards = int(
                os.environ.get("REPRO_CHAOS_DROP_FORWARDS", "0") or "0")
        self._chaos_drops_left = chaos_drop_forwards
        self._server: Optional[asyncio.base_events.Server] = None
        self._health_task: Optional[asyncio.Task] = None
        self._shutdown = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=self.max_request_bytes + 2)
        self.port = self._server.sockets[0].getsockname()[1]
        self._health_task = asyncio.ensure_future(self._health_loop())

    async def serve_until_shutdown(self) -> None:
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            self._health_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for node in self.nodes:
            node.drop_connections()

    # -- placement ---------------------------------------------------------

    def _affinity_key(self, params: dict) -> Optional[str]:
        for field in _KEY_FIELDS:
            value = params.get(field)
            if isinstance(value, str) and value:
                return value
        return None

    def _healthy_nodes(self) -> List[NodeState]:
        return [node for node in self.nodes if node.healthy]

    def pick_node(self, params: dict) -> Optional[NodeState]:
        """The target node for one request, or None when the fleet is
        entirely deregistered."""
        healthy = self._healthy_nodes()
        if not healthy:
            return None
        key = self._affinity_key(params)
        if key is None:
            return min(healthy, key=lambda node: node.in_flight)
        home_slot, alt_slot = affinity_choices(key, len(self.nodes))
        home = self.nodes[home_slot]
        alt = self.nodes[alt_slot]
        if not home.healthy:
            home, alt = alt, home
        if not home.healthy:
            return min(healthy, key=lambda node: node.in_flight)
        if (alt.healthy and alt is not home
                and home.in_flight - alt.in_flight > AFFINITY_PRESSURE):
            return alt
        return home

    # -- relay -------------------------------------------------------------

    async def _forward_once(self, node: NodeState, line: bytes) -> bytes:
        """Relay one raw request line to ``node``; returns the raw
        response line.  Raises ``ConnectionError`` on any mid-call
        death (including the chaos drop hook)."""
        reader, writer = await node.connection(self.max_request_bytes + 2)
        try:
            writer.write(line)
            await writer.drain()
            if self._chaos_drops_left > 0:
                self._chaos_drops_left -= 1
                self.counts["chaos_drops"] += 1
                raise ConnectionResetError("chaos: dropped forward")
            response = await reader.readline()
            if not response:
                raise ConnectionResetError("node closed mid-call")
        except Exception:
            try:
                writer.close()
            except Exception:   # noqa: BLE001 — teardown best-effort
                pass
            raise
        node.release(reader, writer)
        return response

    def _note_death(self, node: NodeState) -> None:
        self.counts["node_deaths"] += 1
        if OBS.enabled:
            OBS.inc("router.node_deaths")
        node.consecutive_failures += 1
        node.drop_connections()
        if node.consecutive_failures >= DEREGISTER_AFTER:
            self._deregister(node)

    def _deregister(self, node: NodeState) -> None:
        if node.healthy:
            node.healthy = False
            self.counts["deregistered"] += 1
            if OBS.enabled:
                OBS.inc("router.deregistered")

    async def _relay(self, request: dict, line: bytes) -> bytes:
        """Forward with retry-once-on-node-death semantics."""
        first = self.pick_node(request["params"])
        if first is None:
            return rpc.encode_message(rpc.make_error(
                request["id"], rpc.NODE_UNAVAILABLE,
                "no healthy serve node registered"))
        tried = first
        for attempt in (0, 1):
            node = tried
            node.in_flight += 1
            node.forwarded += 1
            self.counts["forwarded"] += 1
            if OBS.enabled:
                OBS.inc("router.forwarded")
            try:
                return await self._forward_once(node, line)
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                self._note_death(node)
                if attempt == 1:
                    break
                self.counts["retries"] += 1
                if OBS.enabled:
                    OBS.inc("router.retries")
                retry_pool = [n for n in self._healthy_nodes()
                              if n is not node]
                if not retry_pool:
                    break
                tried = min(retry_pool, key=lambda n: n.in_flight)
            finally:
                node.in_flight -= 1
        self.counts["errors"] += 1
        if OBS.enabled:
            OBS.inc("router.errors")
        return rpc.encode_message(rpc.make_error(
            request["id"], rpc.NODE_UNAVAILABLE,
            "node died mid-call and retry failed (%s)"
            % request["method"]))

    # -- router-local verbs -------------------------------------------------

    async def _local_response(self, request: dict) -> Tuple[bytes, bool]:
        method = request["method"]
        req_id = request["id"]
        if method == "ping":
            result = {"pong": True, "router": True,
                      "uptime_sec": time.time() - self.started_at,
                      "nodes": len(self.nodes),
                      "healthy_nodes": len(self._healthy_nodes())}
            return rpc.encode_message(rpc.make_response(req_id, result)), \
                False
        if method == "stats":
            counters = {"router.%s" % name: value
                        for name, value in sorted(self.counts.items())}
            result = {
                "router": dict(self.counts,
                               uptime_sec=time.time() - self.started_at,
                               port=self.port),
                "obs": counters,
                "nodes": [node.to_dict() for node in self.nodes],
            }
            return rpc.encode_message(rpc.make_response(req_id, result)), \
                False
        # shutdown: stop the router; with {"nodes": true} also drain the
        # fleet behind it (best-effort — a dead node is already down).
        if request["params"].get("nodes"):
            for node in self._healthy_nodes():
                try:
                    await self._forward_once(node, rpc.encode_message(
                        rpc.make_request("shutdown", req_id=0)))
                except (ConnectionError, OSError):
                    pass
        self._shutdown.set()
        return rpc.encode_message(
            rpc.make_response(req_id, {"stopping": True})), True

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.counts["connections"] += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(rpc.encode_message(rpc.make_error(
                        None, rpc.OVERSIZED_REQUEST,
                        "request line exceeds the router's size cap")))
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                self.counts["requests"] += 1
                if OBS.enabled:
                    OBS.inc("router.requests")
                try:
                    request = rpc.parse_request(line, self.max_request_bytes)
                except rpc.RpcError as exc:
                    writer.write(rpc.encode_message(exc.to_response(None)))
                    await writer.drain()
                    if exc.code == rpc.OVERSIZED_REQUEST:
                        break
                    continue
                if request["method"] in ("ping", "stats", "shutdown"):
                    response, close_after = \
                        await self._local_response(request)
                else:
                    response = await self._relay(request, line)
                    close_after = False
                writer.write(response)
                await writer.drain()
                if close_after:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # -- health ------------------------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval)
            await self.check_health()

    async def check_health(self) -> None:
        """One probe round: ping every node, deregister the dead,
        revive the recovered."""
        for node in self.nodes:
            self.counts["health_checks"] += 1
            if OBS.enabled:
                OBS.inc("router.health_checks")
            try:
                response = await asyncio.wait_for(
                    self._forward_once(node, rpc.encode_message(
                        rpc.make_request("ping", req_id=0))),
                    timeout=max(1.0, self.health_interval))
                json.loads(response.decode("utf-8"))
            except (ConnectionError, OSError, ValueError,
                    asyncio.TimeoutError):
                node.drop_connections()
                node.consecutive_failures += 1
                if node.consecutive_failures >= DEREGISTER_AFTER:
                    self._deregister(node)
                continue
            node.consecutive_failures = 0
            if not node.healthy:
                node.healthy = True
                if OBS.enabled:
                    OBS.inc("router.reregistered")

    def stats(self) -> dict:
        return {
            "port": self.port,
            "uptime_sec": time.time() - self.started_at,
            "counts": dict(self.counts),
            "nodes": [node.to_dict() for node in self.nodes],
        }


def run_router(router: Router, port_file: Optional[str] = None,
               announce=None) -> None:
    """Blocking entry point mirroring :func:`~repro.serve.server.run_server`."""

    async def main() -> None:
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, router._shutdown.set)
        except (NotImplementedError, RuntimeError):
            pass                     # non-main thread or bare platform
        await router.start()
        if port_file:
            with open(port_file, "w") as handle:
                handle.write("%d\n" % router.port)
        if announce is not None:
            announce(router.host, router.port)
        await router.serve_until_shutdown()

    asyncio.run(main())
