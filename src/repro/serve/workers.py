"""The parallel compute tier: a ``multiprocessing`` slice-worker pool.

Trace collection, DDG builds and slice queries are CPU-bound Python, so
concurrency across recordings comes from *processes*.  Each worker owns
a private :class:`~repro.serve.sessions.SessionManager` (its own index
LRU) over the shared on-disk store; requests carry the content keys of
the recording they target and are routed with **key affinity** (same
recording → same worker) so a hot recording's resident session keeps
getting hit.

Operational semantics, all explicit:

* **Bounded queue + backpressure** — at most ``queue_limit`` requests
  may be in flight; beyond that :meth:`WorkerPool.submit` raises
  :class:`PoolBusyError` immediately (the RPC layer maps it to a
  structured ``BUSY`` error), it never blocks the caller.
* **Per-request timeout** — every request carries a deadline; when it
  expires the waiter gets :class:`PoolTimeoutError` and any late result
  from the worker is discarded.
* **Crash containment** — a worker that dies (segfault analog:
  ``os._exit``) is respawned; its in-flight requests are requeued
  *once* onto the fresh worker, and fail with :class:`WorkerCrashError`
  if they crash a second time.

Workers are pure compute over the content-addressed blob space: they
*read* blobs (by key, no manifest needed) and return picklable payloads;
every store-manifest write stays in the server process.
"""

from __future__ import annotations

import itertools
import os
import queue
import threading
import time
import zlib
from typing import Dict, Optional

import multiprocessing as mp

from repro.obs.registry import OBS

#: Pool width default, overridable with ``REPRO_SERVE_WORKERS`` (next to
#: ``REPRO_SLICE_INDEX`` / ``REPRO_OBS``; see :mod:`repro.config`).
DEFAULT_WORKERS = 2


def default_workers() -> int:
    """Pool width via :func:`repro.config.serve_workers`."""
    from repro import config
    return config.serve_workers()


class PoolError(RuntimeError):
    """Base class for worker-pool request failures."""


class PoolBusyError(PoolError):
    """Backpressure: the bounded request queue is full."""


class PoolTimeoutError(PoolError):
    """The request's deadline expired before a result arrived."""


class WorkerCrashError(PoolError):
    """The request's worker died (twice, counting one requeue)."""


class RemoteOpError(PoolError):
    """The operation raised inside the worker; carries the remote type."""

    def __init__(self, op: str, error_type: str, message: str) -> None:
        super().__init__("%s failed in worker: %s: %s"
                         % (op, error_type, message))
        self.op = op
        self.error_type = error_type
        self.remote_message = message


class PoolFuture:
    """A one-shot result slot fulfilled by the collector thread."""

    __slots__ = ("_event", "_value", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value = None
        self._error: Optional[BaseException] = None

    def _fulfill(self, value) -> None:
        self._value = value
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None):
        if not self._event.wait(timeout):
            raise PoolTimeoutError("no result within %.1fs" % (timeout or 0))
        if self._error is not None:
            raise self._error
        return self._value


class _Pending:
    __slots__ = ("req_id", "op", "params", "key", "worker", "attempts",
                 "deadline", "future")

    def __init__(self, req_id, op, params, key, worker, deadline, future):
        self.req_id = req_id
        self.op = op
        self.params = params
        self.key = key
        self.worker = worker
        self.attempts = 0
        self.deadline = deadline
        self.future = future


# -- worker process side ------------------------------------------------------

def _execute(op: str, params: dict, store, manager):
    """Run one operation inside the worker process."""
    from repro.pinplay import Pinball, RegionSpec, record_region, replay
    from repro.serve.sessions import (race_payload, replay_payload,
                                      resolve_criterion, slice_locations,
                                      slice_payload)
    from repro.vm import RandomScheduler, RoundRobinScheduler

    if op == "ping":
        return {"pong": True, "pid": os.getpid()}
    if op == "__stats__":
        counters = {name: value for name, value in OBS.counters().items()
                    if name.startswith(("serve.", "index_cache.",
                                        "hunt.", "detect."))}
        return {"pid": os.getpid(), "sessions": manager.stats(),
                "counters": counters}
    if op == "__crash__":                       # test hook: hard death
        once = params.get("once_path")
        if once and os.path.exists(once):
            # Crash-once mode: a marker from the previous life means the
            # requeued attempt should survive (exercises the retry path).
            return {"ok": True, "pid": os.getpid()}
        if once:
            with open(once, "w") as handle:
                handle.write(str(os.getpid()))
        os._exit(int(params.get("code", 13)))
    if op == "__sleep__":                       # test hook: slow request
        time.sleep(float(params.get("sec", 1.0)))
        return {"slept": params.get("sec", 1.0)}

    if op == "record":
        program = manager.program_for(params["source"],
                                      params.get("program_name", "program"))
        region = RegionSpec(skip=int(params.get("skip", 0)),
                            length=params.get("length"))
        inputs = params.get("inputs") or []
        rand_seed = int(params.get("rand_seed", 0))
        expose = int(params.get("expose", 0))
        switch_prob = float(params.get("switch_prob", 0.2))
        if expose:
            pinball = None
            for seed in range(expose):
                candidate = record_region(
                    program,
                    RandomScheduler(seed=seed, switch_prob=switch_prob),
                    region, inputs=inputs, rand_seed=rand_seed)
                if candidate.meta.get("failure"):
                    pinball = candidate
                    break
            if pinball is None:
                raise ValueError("no failure exposed in %d seeds" % expose)
        else:
            seed = params.get("seed")
            scheduler = (RoundRobinScheduler() if seed is None
                         else RandomScheduler(seed=int(seed),
                                              switch_prob=switch_prob))
            pinball = record_region(program, scheduler, region,
                                    inputs=inputs, rand_seed=rand_seed)
        return {
            "pinball_raw": pinball.to_bytes(compress=False),
            "program_name": pinball.program_name,
            "instructions": pinball.total_instructions,
            "failure": (pinball.meta.get("failure") or {}).get("code"),
        }

    # Everything below operates on one stored recording.
    key = params["pinball"]
    source = params["source"]
    name = params.get("program_name", "program")

    if op == "replay":
        program = manager.program_for(source, name)
        pinball = store.get_pinball(key)
        machine, result = replay(pinball, program,
                                 verify=not params.get("no_verify", False))
        return replay_payload(machine, result, pinball)

    if op == "races":
        from repro.detect import detect_races
        program = manager.program_for(source, name)
        pinball = store.get_pinball(key)
        races = detect_races(pinball, program,
                             globals_only=not params.get("all_memory", False))
        return race_payload(races, program)

    if op == "hunt":
        # The whole firehose on one worker (used by `repro client hunt`
        # against a single-lane pool, and as the differential baseline).
        from repro.analysis.hunt import hunt
        program = manager.program_for(source, name)
        pinball = store.get_pinball(key)
        result = hunt(pinball, program,
                      budget=params.get("budget"),
                      profile_seeds=int(params.get("profile_seeds", 4)),
                      minimize_budget=int(params.get("minimize_budget", 64)))
        payload = result.payload()
        payload["minimized_raw"] = {
            cid: pb.to_bytes(compress=False)
            for cid, pb in result.minimized.items()}
        return payload

    if op == "hunt_scan":
        # Stage 1 — the server shards the resulting candidate list
        # across hunt_eval lanes and merges by candidate order.
        from repro.analysis.hunt import scan
        from repro.analysis.report import RaceFinding
        program = manager.program_for(source, name)
        pinball = store.get_pinball(key)
        races, candidates, ctx = scan(
            pinball, program, budget=params.get("budget"),
            profile_seeds=int(params.get("profile_seeds", 4)))
        return {"races": [RaceFinding.from_race(race, program).to_payload()
                          for race in races],
                "candidates": candidates, "ctx": ctx}

    if op == "hunt_eval":
        from repro.analysis.hunt import evaluate
        program = manager.program_for(source, name)
        return {"rows": evaluate(program, params["candidates"],
                                 params["ctx"])}

    if op == "hunt_confirm":
        from repro.analysis.hunt import confirm
        from repro.analysis.report import RaceFinding
        program = manager.program_for(source, name)
        races = [RaceFinding.from_payload(item)
                 for item in params.get("races", [])]
        finding, pinball = confirm(
            program, params["candidate"], params["row"], params["ctx"],
            races=races,
            minimize_budget=int(params.get("minimize_budget", 64)))
        return {"finding": finding.to_payload(),
                "pinball_raw": pinball.to_bytes(compress=False)}

    session = manager.open(key, source, program_name=name,
                           index=params.get("index"),
                           shards=params.get("shards"))
    if op == "build":
        # trace_record_count() answers without materializing the trace,
        # which matters for reexec sessions (no full trace resident).
        return {"built": True, "trace_records":
                session.trace_record_count(),
                "stats": {k: v for k, v in session.stats().items()
                          if isinstance(v, (int, float, str, bool))}}
    if op == "last_reads":
        count = int(params.get("count", 10))
        return {"reads": [list(inst)
                          for inst in session.last_reads(count)]}
    if op == "slice":
        criterion = resolve_criterion(session, params)
        dslice = session.slice_for(criterion,
                                   slice_locations(session, params))
        payload = slice_payload(session, dslice)
        if params.get("slice_pinball"):
            slice_pb = session.make_slice_pinball(dslice)
            payload["slice_pinball_raw"] = slice_pb.to_bytes(compress=False)
            payload["kept_instructions"] = slice_pb.meta.get(
                "kept_instructions")
        return payload
    raise ValueError("unknown worker op %r" % op)


def _worker_main(worker_id: int, task_q, result_q, store_root: Optional[str],
                 config: dict) -> None:
    """Worker loop: pop (req_id, op, params), push (req_id, status, ...)."""
    if config.get("obs"):
        OBS.enable()
    from repro.serve.sessions import SessionManager
    from repro.serve.store import PinballStore
    store = PinballStore(store_root) if store_root else None
    manager = SessionManager(
        store,
        max_entries=config.get("lru_entries", 4),
        max_bytes=config.get("lru_bytes", 512 * 1024 * 1024),
        slice_options=config.get("slice_options"))
    while True:
        item = task_q.get()
        if item is None:
            break
        req_id, op, params = item
        try:
            with OBS.span("serve/worker/%s" % op):
                result = _execute(op, params or {}, store, manager)
        except BaseException as exc:   # noqa: BLE001 — wire it back
            result_q.put((req_id, worker_id, "error",
                          {"op": op, "type": type(exc).__name__,
                           "message": str(exc)}))
            continue
        result_q.put((req_id, worker_id, "ok", result))


# -- parent side --------------------------------------------------------------

class WorkerPool:
    """Parallel slice workers over a shared store.  See module docstring."""

    def __init__(self, store_root: Optional[str] = None,
                 workers: Optional[int] = None,
                 queue_limit: int = 64,
                 default_timeout: float = 120.0,
                 lru_entries: int = 4,
                 lru_bytes: int = 512 * 1024 * 1024,
                 obs: bool = False,
                 slice_options=None,
                 worker_target=None,
                 worker_config: Optional[dict] = None,
                 name: str = "serve",
                 daemon: bool = True) -> None:
        self.store_root = store_root
        self.workers = workers if workers is not None else default_workers()
        self.queue_limit = queue_limit
        self.default_timeout = default_timeout
        #: The function each worker process runs.  Defaults to the debug
        #: service loop (:func:`_worker_main`); other subsystems reuse the
        #: pool mechanics (bounded queue, deadlines, crash respawn) by
        #: supplying their own module-level target with the same
        #: ``(worker_id, task_q, result_q, store_root, config)``
        #: signature — the region-shard tracer
        #: (:mod:`repro.slicing.shard`) is one.
        self._worker_target = worker_target or _worker_main
        self._name = name
        #: Daemonic workers die with the parent (the right default for a
        #: service), but ``multiprocessing`` forbids a daemon from having
        #: children of its own — a serve pool whose sessions build with
        #: ``SliceOptions(shards>1)`` must pass ``daemon=False`` so its
        #: workers can fork the region-shard tracers.
        self._daemon = daemon
        self._config = {"lru_entries": lru_entries, "lru_bytes": lru_bytes,
                        "obs": obs, "slice_options": slice_options}
        if worker_config:
            self._config.update(worker_config)
        self._ctx = mp.get_context()
        self._task_qs = []
        self._procs = []
        self._result_q = None
        self._pending: Dict[int, _Pending] = {}
        self._abandoned = set()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._collector: Optional[threading.Thread] = None
        self._closing = threading.Event()
        self.counts = {"submitted": 0, "completed": 0, "errors": 0,
                       "rejected": 0, "timeouts": 0, "requeued": 0,
                       "crashes": 0}
        self.started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "WorkerPool":
        if self.started:
            return self
        self._result_q = self._ctx.Queue()
        for worker_id in range(self.workers):
            self._task_qs.append(self._ctx.Queue())
            self._procs.append(self._spawn(worker_id))
        self._collector = threading.Thread(target=self._collect_loop,
                                           name="%s-pool-collector"
                                           % self._name,
                                           daemon=True)
        self._collector.start()
        self.started = True
        return self

    def _spawn(self, worker_id: int):
        proc = self._ctx.Process(
            target=self._worker_target,
            args=(worker_id, self._task_qs[worker_id], self._result_q,
                  self.store_root, self._config),
            name="%s-worker-%d" % (self._name, worker_id),
            daemon=self._daemon)
        proc.start()
        return proc

    def close(self, timeout: float = 5.0) -> None:
        if not self.started:
            return
        self._closing.set()
        for task_q in self._task_qs:
            try:
                task_q.put(None)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            proc.join(max(0.1, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)
        if self._collector is not None:
            self._collector.join(timeout=2.0)
        with self._lock:
            for pending in self._pending.values():
                pending.future._fail(PoolError("pool closed"))
            self._pending.clear()
        for q in self._task_qs + [self._result_q]:
            try:
                q.close()
            except (OSError, ValueError):
                pass
        self.started = False

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- submission --------------------------------------------------------

    def _route(self, key: Optional[str]) -> int:
        if key is not None:
            # Stable key affinity: a hot recording keeps hitting the
            # worker whose LRU already holds its session.  Keys are hex
            # sha256 strings; fall back to crc for anything else.
            text = str(key)
            try:
                bucket = int(text[:8], 16)
            except ValueError:
                bucket = zlib.crc32(text.encode("utf-8"))
            return bucket % self.workers
        # No key: least-loaded worker (fewest in-flight requests).
        loads = [0] * self.workers
        for pending in self._pending.values():
            loads[pending.worker] += 1
        return loads.index(min(loads))

    def submit(self, op: str, params: Optional[dict] = None,
               key: Optional[str] = None,
               timeout: Optional[float] = None,
               worker: Optional[int] = None) -> PoolFuture:
        """Queue one operation; never blocks.

        Raises :class:`PoolBusyError` when ``queue_limit`` requests are
        already in flight (explicit backpressure, counted under
        ``serve.pool/rejected``).
        """
        if not self.started:
            raise PoolError("pool is not running")
        future = PoolFuture()
        deadline = time.monotonic() + (timeout if timeout is not None
                                       else self.default_timeout)
        with self._lock:
            if len(self._pending) >= self.queue_limit:
                self.counts["rejected"] += 1
                if OBS.enabled:
                    OBS.inc("serve.pool/rejected")
                raise PoolBusyError(
                    "pool queue full (%d in flight)" % len(self._pending))
            req_id = next(self._ids)
            target = worker if worker is not None else self._route(key)
            pending = _Pending(req_id, op, params or {}, key, target,
                               deadline, future)
            self._pending[req_id] = pending
            self.counts["submitted"] += 1
        if OBS.enabled:
            OBS.inc("serve.pool/queued")
        self._task_qs[target].put((req_id, op, params or {}))
        return future

    def call(self, op: str, params: Optional[dict] = None,
             key: Optional[str] = None, timeout: Optional[float] = None,
             worker: Optional[int] = None):
        """Submit and wait; raises the pool/remote error on failure."""
        effective = timeout if timeout is not None else self.default_timeout
        future = self.submit(op, params, key=key, timeout=effective,
                             worker=worker)
        # The collector enforces the deadline; wait a little past it.
        return future.result(effective + 5.0)

    # -- collector thread --------------------------------------------------

    def _collect_loop(self) -> None:
        while not self._closing.is_set():
            try:
                item = self._result_q.get(timeout=0.05)
            except queue.Empty:
                item = None
            except (OSError, ValueError, EOFError):
                break
            if item is not None:
                self._handle_result(*item)
            self._expire_deadlines()
            self._reap_crashes()

    def _handle_result(self, req_id, worker_id, status, payload) -> None:
        with self._lock:
            if req_id in self._abandoned:
                self._abandoned.discard(req_id)
                return
            pending = self._pending.pop(req_id, None)
        if pending is None:
            return
        if status == "ok":
            self.counts["completed"] += 1
            if OBS.enabled:
                OBS.inc("serve.pool/completed")
            pending.future._fulfill(payload)
        else:
            self.counts["errors"] += 1
            if OBS.enabled:
                OBS.inc("serve.pool/errors")
            pending.future._fail(RemoteOpError(
                payload.get("op", pending.op), payload.get("type", "Error"),
                payload.get("message", "")))

    def _expire_deadlines(self) -> None:
        now = time.monotonic()
        expired = []
        with self._lock:
            for req_id, pending in list(self._pending.items()):
                if pending.deadline <= now:
                    expired.append(self._pending.pop(req_id))
                    self._abandoned.add(req_id)
        for pending in expired:
            self.counts["timeouts"] += 1
            if OBS.enabled:
                OBS.inc("serve.pool/timeouts")
            pending.future._fail(PoolTimeoutError(
                "%s request timed out" % pending.op))

    def _reap_crashes(self) -> None:
        for worker_id, proc in enumerate(self._procs):
            if proc.is_alive() or self._closing.is_set():
                continue
            exitcode = proc.exitcode
            self.counts["crashes"] += 1
            if OBS.enabled:
                OBS.inc("serve.pool/crashes")
            # Fresh queue + fresh process: the old queue may hold
            # requests the dead worker never popped; re-route them.
            stranded = []
            with self._lock:
                for pending in self._pending.values():
                    if pending.worker == worker_id:
                        stranded.append(pending)
            old_q = self._task_qs[worker_id]
            self._task_qs[worker_id] = self._ctx.Queue()
            try:
                old_q.close()
            except (OSError, ValueError):
                pass
            self._procs[worker_id] = self._spawn(worker_id)
            for pending in stranded:
                if pending.attempts >= 1:
                    with self._lock:
                        self._pending.pop(pending.req_id, None)
                    pending.future._fail(WorkerCrashError(
                        "%s crashed its worker twice (exit %r)"
                        % (pending.op, exitcode)))
                    continue
                pending.attempts += 1
                self.counts["requeued"] += 1
                if OBS.enabled:
                    OBS.inc("serve.pool/requeued")
                self._task_qs[worker_id].put(
                    (pending.req_id, pending.op, pending.params))

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            in_flight = len(self._pending)
        return {
            "workers": self.workers,
            "queue_limit": self.queue_limit,
            "in_flight": in_flight,
            "alive": sum(1 for proc in self._procs if proc.is_alive()),
            **self.counts,
        }

    def worker_stats(self, timeout: float = 10.0) -> list:
        """Per-worker session-LRU and obs-counter snapshots."""
        futures = [self.submit("__stats__", timeout=timeout, worker=i)
                   for i in range(self.workers)]
        out = []
        for future in futures:
            try:
                out.append(future.result(timeout + 1.0))
            except PoolError as exc:
                out.append({"error": str(exc)})
        return out
