"""Closed-loop load generator for the debug service (``repro client bench``).

iReplayer's argument for replay-backed analyses is that they must stay
cheap *at fleet scale* — which is a claim about the service under
concurrent load, not about one request.  This module drives that
measurement: N concurrent clients (asyncio coroutines over the real
wire protocol, one connection each) issue a weighted mix of
record/replay/slice/last_reads requests against a server or router,
with **zipf-distributed recording popularity** — a realistic fleet sees
a few hot crash signatures and a long tail, which is exactly the
distribution that exercises session LRUs, key-affinity routing and the
persistent index cache at once.

The loop is *closed*: each client waits for its response before issuing
the next request, so offered load tracks service capacity and the
reported throughput is the saturation rate at that concurrency.  The
report carries p50/p99/mean latency, throughput, per-verb counts and
error counts; ``benchmarks/test_perf_loadgen.py`` drives it across
client counts into ``BENCH_loadgen.json``.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence

from repro.serve import rpc

DEFAULT_MIX = {"slice": 6, "last_reads": 3, "replay": 1}
DEFAULT_ZIPF_S = 1.1


def zipf_cdf(population: int, s: float = DEFAULT_ZIPF_S) -> List[float]:
    """Cumulative popularity over ranks 1..population (weights 1/rank^s)."""
    weights = [1.0 / ((rank + 1) ** s) for rank in range(population)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cdf.append(acc)
    return cdf


def pick_rank(cdf: Sequence[float], rng: random.Random) -> int:
    return min(bisect_left(cdf, rng.random()), len(cdf) - 1)


class _AsyncClient:
    """One persistent wire connection (the unit of closed-loop clients)."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._next_id = 1

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=rpc.MAX_REQUEST_BYTES + 2)

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:   # noqa: BLE001 — teardown best-effort
                pass
            self._writer = None
            self._reader = None

    async def call(self, method: str, params: dict) -> dict:
        """One round trip; returns the decoded response envelope."""
        if self._writer is None:
            await self.connect()
        req_id = self._next_id
        self._next_id += 1
        frame = rpc.encode_message(
            rpc.make_request(method, params, req_id=req_id))
        self._writer.write(frame)
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionResetError("server closed mid-call")
        return json.loads(line.decode("utf-8"))


def _op_params(verb: str, key: str, record_source: Optional[str]) -> dict:
    if verb == "record":
        # A plain round-robin recording: benchmark sources generally run
        # to completion, so a failure-exposing search would come up dry.
        return {"program": record_source, "program_name": "loadgen"}
    if verb == "last_reads":
        return {"key": key, "count": 5}
    if verb == "slice":
        # Kernel recordings usually run to completion (no failure to
        # default to); the last memory read is defined for every one.
        return {"key": key, "last_read": True}
    return {"key": key}


async def _drive(host: str, port: int, keys: Sequence[str], ops: int,
                 clients: int, mix: Dict[str, int], zipf_s: float,
                 seed: int, record_source: Optional[str],
                 latencies: List[float], counters: dict) -> None:
    cdf = zipf_cdf(len(keys), zipf_s)
    verbs = [verb for verb, weight in sorted(mix.items())
             for _ in range(weight)]
    budget = {"left": ops}

    async def client_loop(client_id: int) -> None:
        rng = random.Random(seed * 10007 + client_id)
        client = _AsyncClient(host, port)
        try:
            while True:
                if budget["left"] <= 0:
                    return
                budget["left"] -= 1
                verb = rng.choice(verbs)
                key = keys[pick_rank(cdf, rng)]
                params = _op_params(verb, key, record_source)
                started = time.perf_counter()
                try:
                    response = await client.call(verb, params)
                except (ConnectionError, OSError):
                    counters["connection_errors"] += 1
                    await client.close()
                    continue
                latencies.append(time.perf_counter() - started)
                counters["by_verb"][verb] = \
                    counters["by_verb"].get(verb, 0) + 1
                if response.get("error") is not None:
                    counters["error_responses"] += 1
        finally:
            await client.close()

    await asyncio.gather(*(client_loop(i) for i in range(clients)))


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[index]


def run_bench(host: str, port: int, keys: Sequence[str], ops: int = 100,
              clients: int = 8, mix: Optional[Dict[str, int]] = None,
              zipf_s: float = DEFAULT_ZIPF_S, seed: int = 0,
              record_source: Optional[str] = None) -> dict:
    """Drive ``ops`` requests through ``clients`` concurrent closed-loop
    clients; returns the measurement report.

    ``mix`` maps verb → integer weight (default slice-heavy, the cyclic
    debugging shape); ``record`` in the mix requires ``record_source``.
    ``keys`` are stored recording shas, ranked hot→cold for the zipf
    draw.
    """
    if not keys:
        raise ValueError("load generator needs at least one recording key")
    mix = dict(mix or DEFAULT_MIX)
    if any(weight < 0 for weight in mix.values()) or \
            sum(mix.values()) <= 0:
        raise ValueError("mix weights must be non-negative, sum > 0")
    if mix.get("record") and not record_source:
        raise ValueError("a 'record' mix weight needs record_source")
    latencies: List[float] = []
    counters = {"connection_errors": 0, "error_responses": 0,
                "by_verb": {}}
    started = time.perf_counter()
    asyncio.run(_drive(host, port, keys, ops, clients, mix, zipf_s, seed,
                       record_source, latencies, counters))
    elapsed = time.perf_counter() - started
    ordered = sorted(latencies)
    completed = len(ordered)
    return {
        "ops": ops,
        "completed": completed,
        "clients": clients,
        "distinct_keys": len(keys),
        "zipf_s": zipf_s,
        "mix": mix,
        "elapsed_sec": elapsed,
        "throughput_ops_per_sec": (completed / elapsed) if elapsed else 0.0,
        "latency_ms": {
            "p50": _percentile(ordered, 0.50) * 1000.0,
            "p99": _percentile(ordered, 0.99) * 1000.0,
            "mean": (sum(ordered) / completed * 1000.0) if completed
            else 0.0,
            "max": (ordered[-1] * 1000.0) if ordered else 0.0,
        },
        "connection_errors": counters["connection_errors"],
        "error_responses": counters["error_responses"],
        "by_verb": dict(sorted(counters["by_verb"].items())),
    }
