"""Resident slicing sessions with a bounded LRU of built indexes.

Opening a recording is the expensive part of every query: a traced
replay (trace collection), the global-trace merge, and — under the
default engine — the one-shot CSR dependence-index build.  The cyclic
workflow then issues *many* queries against that state (paper Figure 2),
so the :class:`SessionManager` keeps opened
:class:`~repro.slicing.api.SlicingSession` objects resident behind an
LRU bounded by **entry count** and **approximate bytes**.  A hot
recording answers a slice query straight from the memoized index; a cold
one pays one build and then stays hot until evicted.

A second, *persistent* cache layer sits underneath the LRU: built DDG
indexes are serialized into the store keyed by ``(pinball sha, options
fingerprint)`` (:mod:`repro.slicing.ddg_serde`), so a session that is
cold *in this process* — a fresh worker, a different node sharing the
store — warm-starts in O(load) instead of O(trace + build).  A corrupt
cached blob is never an error: it is deleted and the session falls back
to a full build (cache-miss semantics, counted separately).

Also home to the canonical wire renderings (:func:`slice_payload`,
:func:`race_payload`, :func:`replay_payload`): the worker pool and the
in-process differential tests share these functions, which is what makes
"served result == direct result" a byte-for-byte comparison.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro import config
from repro.lang import compile_source
from repro.obs.registry import OBS
from repro.pinplay.pinball import PinballFormatError
from repro.slicing.api import SlicingSession
from repro.slicing.ddg_serde import (deserialize_index, options_fingerprint,
                                     serialize_index)
from repro.slicing.options import SliceOptions
from repro.slicing.slice import DynamicSlice

#: Rough per-trace-record resident cost (columns + index + memos), used
#: for the byte bound.  Deliberately coarse: the bound exists to keep a
#: runaway worker from swallowing the machine, not to be an allocator.
BYTES_PER_TRACE_RECORD = 400

DEFAULT_MAX_ENTRIES = 8
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

SessionKey = Tuple[str, str, str, int]


class SessionManager:
    """LRU cache of opened slicing sessions over a pinball store."""

    def __init__(self, store, max_entries: int = DEFAULT_MAX_ENTRIES,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 slice_options: Optional[SliceOptions] = None,
                 index_cache: Optional[bool] = None) -> None:
        self.store = store
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.slice_options = slice_options or SliceOptions()
        self.index_cache = config.index_cache(explicit=index_cache)
        self._sessions: "OrderedDict[SessionKey, Tuple[SlicingSession, int]]" \
            = OrderedDict()
        self._programs: Dict[str, object] = {}
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.index_cache_hits = 0
        self.index_cache_misses = 0
        self.index_cache_writes = 0
        self.index_cache_corrupt = 0

    # -- program cache -----------------------------------------------------

    def program_for(self, source_sha: str, program_name: str):
        """Compile (and cache) the stored source blob ``source_sha``."""
        program = self._programs.get(source_sha)
        if program is None:
            source = self.store.get_source(source_sha)
            program = compile_source(source, name=program_name)
            self._programs[source_sha] = program
        return program

    # -- session LRU -------------------------------------------------------

    def open(self, pinball_sha: str, source_sha: str,
             program_name: str = "program",
             index: Optional[str] = None,
             shards: Optional[int] = None) -> SlicingSession:
        """The resident session for a stored recording (build on miss).

        ``index`` selects the slice-query engine and ``shards`` the
        region-sharded build width — both are cache-key components
        (sessions built under different engines memoize differently, and
        a sharded build is a distinct construction even though its
        results are byte-identical); defaults come from the manager's
        :class:`SliceOptions`.
        """
        options = self.slice_options
        if index is not None and index != options.index:
            options = dataclasses.replace(options, index=index)
        if shards is not None and int(shards) != options.shards:
            options = dataclasses.replace(options, shards=int(shards))
        key: SessionKey = (pinball_sha, source_sha, options.index,
                           options.shards)
        cached = self._sessions.get(key)
        if cached is not None:
            self._sessions.move_to_end(key)
            self.hits += 1
            if OBS.enabled:
                OBS.inc("serve.cache/hit")
            return cached[0]
        self.misses += 1
        if OBS.enabled:
            OBS.inc("serve.cache/miss")
        with OBS.span("serve/session_build"):
            program = self.program_for(source_sha, program_name)
            pinball = self.store.get_pinball(pinball_sha)
            session = None
            cacheable = self.index_cache and options.index == "ddg"
            fingerprint = options_fingerprint(options) if cacheable else None
            if cacheable:
                session = self._open_warm(pinball_sha, fingerprint,
                                          pinball, program, options)
            if session is None:
                session = SlicingSession(pinball, program, options)
                if options.index == "ddg":
                    # Pre-build the dependence index so the first query
                    # is already hot — the whole point of keeping it
                    # resident.
                    session.slicer.ddg
                    if cacheable:
                        self._store_index(pinball_sha, fingerprint,
                                          session.slicer.ddg)
        cost = self._approx_bytes(session)
        if self.max_entries > 0:
            self._sessions[key] = (session, cost)
            self._bytes += cost
            self._evict()
        return session

    def _open_warm(self, pinball_sha: str, fingerprint: str, pinball,
                   program, options) -> Optional[SlicingSession]:
        """A warm session from the persistent index cache, or None.

        Miss and corruption both fall through to a full build — a
        cached index can speed a session up but never change (or fail)
        an answer.  Corrupt blobs are additionally deleted so the
        rebuild repopulates the slot.
        """
        try:
            blob = self.store.get_index(pinball_sha, fingerprint)
        except KeyError:
            self.index_cache_misses += 1
            if OBS.enabled:
                OBS.inc("index_cache.misses")
            return None
        try:
            frozen = deserialize_index(
                blob, options=options,
                source=self.store.index_path(pinball_sha, fingerprint),
                fingerprint=fingerprint)
        except PinballFormatError:
            self.index_cache_corrupt += 1
            if OBS.enabled:
                OBS.inc("index_cache.corrupt")
            self.store.delete_index(pinball_sha, fingerprint)
            return None
        self.index_cache_hits += 1
        if OBS.enabled:
            OBS.inc("index_cache.hits")
        return SlicingSession.from_frozen_index(pinball, program, frozen,
                                                options=options)

    def _store_index(self, pinball_sha: str, fingerprint: str, ddg) -> None:
        """Persist a freshly built index (best-effort: a full store or
        read-only filesystem must not fail the query that built it)."""
        try:
            self.store.put_index(pinball_sha, fingerprint,
                                 serialize_index(ddg, fingerprint))
        except OSError:
            return
        self.index_cache_writes += 1
        if OBS.enabled:
            OBS.inc("index_cache.writes")

    @staticmethod
    def _approx_bytes(session: SlicingSession) -> int:
        # trace_record_count() answers without materializing the trace:
        # a reexec session holds scaffold pc streams instead of full
        # columns, so its resident charge is a fraction of a materialized
        # session's and the byte-bounded LRU keeps more sessions hot.
        records = session.trace_record_count()
        edges = session.slicer.index_stats().get("edge_count", 0)
        # Reexec sessions hold scaffold pc streams, warm-started sessions
        # hold only the frozen index — both charge a fraction of a fully
        # materialized session's columns.
        per_record = (BYTES_PER_TRACE_RECORD // 20
                      if (session._reexec is not None
                          or session._frozen is not None)
                      else BYTES_PER_TRACE_RECORD)
        return (records * per_record + edges * 24
                + session.pinball.size_bytes(compress=False))

    def _evict(self) -> None:
        while self._sessions and (
                len(self._sessions) > self.max_entries
                or self._bytes > self.max_bytes):
            _key, (_session, cost) = self._sessions.popitem(last=False)
            self._bytes -= cost
            self.evictions += 1
            if OBS.enabled:
                OBS.inc("serve.cache/evictions")

    @property
    def cached_bytes(self) -> int:
        """Approximate bytes held by resident sessions (the LRU charge)."""
        return self._bytes

    def invalidate(self, pinball_sha: Optional[str] = None) -> int:
        """Drop cached sessions (all, or those of one recording)."""
        if pinball_sha is None:
            dropped = len(self._sessions)
            self._sessions.clear()
            self._bytes = 0
            return dropped
        doomed = [key for key in self._sessions if key[0] == pinball_sha]
        for key in doomed:
            _session, cost = self._sessions.pop(key)
            self._bytes -= cost
        return len(doomed)

    def stats(self) -> dict:
        return {
            "entries": len(self._sessions),
            "max_entries": self.max_entries,
            "approx_bytes": self._bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "programs_cached": len(self._programs),
            "index_cache": {
                "enabled": self.index_cache,
                "hits": self.index_cache_hits,
                "misses": self.index_cache_misses,
                "writes": self.index_cache_writes,
                "corrupt": self.index_cache_corrupt,
            },
        }


# -- criterion resolution + canonical wire payloads ---------------------------

def resolve_criterion(session: SlicingSession, params: dict):
    """Map RPC slice params onto a concrete (tid, tindex) criterion.

    Accepted forms (first match wins), in the unified entry-point
    vocabulary (``instance=``, ``global_name=``, ``line=``, ``tid=``;
    the pre-unification field names ``criterion`` and ``var`` remain
    accepted aliases): an explicit ``instance`` pair, a global
    ``global_name`` (last write), a source ``line`` (last execution,
    optionally per-``tid``), ``last_read=true`` (the recording's final
    memory-reading instance — defined for *every* recording, which is
    what the load generator slices on) — defaulting to the recorded
    failure.
    """
    instance = params.get("instance", params.get("criterion"))
    if instance is not None:
        tid, tindex = instance
        return (int(tid), int(tindex))
    global_name = params.get("global_name") or params.get("var")
    if global_name:
        return session.last_write_to_global(global_name,
                                            tid=params.get("tid"))
    if params.get("line") is not None:
        return session.last_instance_at_line(int(params["line"]),
                                             tid=params.get("tid"))
    if params.get("last_read"):
        reads = session.last_reads(1)
        if not reads:
            raise ValueError("the recording performed no memory reads")
        return reads[0]
    return session.failure_criterion()


def slice_locations(session: SlicingSession, params: dict):
    global_name = params.get("global_name") or params.get("var")
    if global_name:
        return [session.global_location(global_name)]
    return None


def slice_payload(session: SlicingSession, dslice: DynamicSlice) -> dict:
    """Deterministic JSON rendering of a computed slice.

    Sorted nodes/edges and explicit unresolved count: two independently
    computed equal slices render to identical JSON bytes, which is the
    contract the differential suite checks served results against.
    """
    nodes = sorted(
        [node.tid, node.tindex, node.addr, node.line, node.func]
        for node in dslice.nodes.values())
    edges = sorted(
        [list(consumer), list(producer), kind,
         list(loc) if loc is not None else None]
        for consumer, producer, kind, loc in dslice.edges)
    statements = sorted(
        ([func, line] for func, line in dslice.source_statements()),
        key=lambda fl: (fl[0] or "", fl[1] or 0))
    return {
        "criterion": list(dslice.criterion),
        "node_count": len(nodes),
        "thread_count": len(dslice.threads()),
        "nodes": nodes,
        "edges": edges,
        "unresolved_locations": dslice.stats.get("unresolved_locations", 0),
        "source_statements": statements,
    }


def race_payload(races, program) -> dict:
    """Deterministic JSON rendering of a race-detection result.

    Thin wrapper over the unified report schema
    (:func:`repro.analysis.report.races_report_payload`); the legacy
    ``race_count``/``races`` spellings ride along in the envelope for
    one deprecation cycle.
    """
    from repro.analysis.report import races_report_payload
    return races_report_payload(races, program)


def replay_payload(machine, result, pinball) -> dict:
    return {
        "steps": pinball.total_steps,
        "instructions": pinball.total_instructions,
        "reason": result.reason,
        "output": list(machine.output),
        "failure": result.failure,
        "exit_code": machine.exit_code or 0,
    }
