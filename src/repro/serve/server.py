"""The asyncio TCP front end of the debug service.

One long-lived server process owns the pinball store's manifest and the
worker pool; each client connection speaks newline-delimited JSON-RPC
(:mod:`repro.serve.rpc`).  The division of labor keeps every layer
single-writer:

* the **event loop** only parses, validates and routes — compute-heavy
  verbs are dispatched to the :class:`~repro.serve.workers.WorkerPool`
  via an executor thread so slow slices never stall other connections;
* **workers** read blobs by content key and return payloads;
* the **server** performs every store-manifest write (uploads, recorded
  pinballs, slice pinballs, tags, gc), so the manifest needs no
  cross-process locking.

Fault behavior follows the satellite spec: malformed, oversized or
truncated request lines produce structured error responses (the
connection survives malformed lines; oversized lines are answered then
the connection is closed, since the line cannot be resynchronized);
pool backpressure surfaces as ``BUSY``; per-request deadlines as
``TIMEOUT``; corrupt blobs as ``BAD_PINBALL`` naming the blob path.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import os
import signal
import time
from functools import partial
from typing import Optional

from repro.obs.registry import OBS
from repro.pinplay.pinball import Pinball, PinballFormatError
from repro.serve import rpc
from repro.serve.store import PinballStore
from repro.serve.workers import (PoolBusyError, PoolTimeoutError,
                                 RemoteOpError, WorkerCrashError, WorkerPool)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 9178

#: Methods executed on the worker pool (keyed by stored recording).
_POOL_METHODS = ("replay", "slice", "last_reads", "races", "build", "hunt")

#: Chaos-testing exit status — distinctive so a test harness can tell a
#: deliberately injected node death from a genuine crash.
CHAOS_EXIT_STATUS = 17


def _chaos_maybe_die(method: str) -> None:
    """Fault-injection hook: die hard before serving ``method``.

    ``REPRO_CHAOS_EXIT_ON=<method>`` makes the server process exit with
    :data:`CHAOS_EXIT_STATUS` *before* touching the request — the client
    sees the connection drop mid-call, exactly like a node loss.  With
    ``REPRO_CHAOS_ONCE_PATH`` also set, the death happens only while the
    marker file does not exist (it is created atomically first), so a
    fleet of nodes sharing the marker loses exactly one member — the
    shape the router's retry-once semantics are tested against.  Only
    the chaos suite sets these variables.
    """
    target = os.environ.get("REPRO_CHAOS_EXIT_ON")
    if not target or target != method:
        return
    once_path = os.environ.get("REPRO_CHAOS_ONCE_PATH")
    if once_path:
        try:
            fd = os.open(once_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return
        os.close(fd)
    os._exit(CHAOS_EXIT_STATUS)


class DebugServer:
    """TCP JSON-RPC server over one store + one worker pool."""

    def __init__(self, store_root: str,
                 host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                 workers: Optional[int] = None,
                 queue_limit: int = 64,
                 request_timeout: float = 120.0,
                 lru_entries: int = 4,
                 lru_bytes: int = 512 * 1024 * 1024,
                 max_request_bytes: int = rpc.MAX_REQUEST_BYTES,
                 slice_options=None) -> None:
        self.store = PinballStore(store_root)
        self.host = host
        self.port = port
        self.max_request_bytes = max_request_bytes
        # Shard-capable pools need non-daemonic workers: a worker whose
        # resident sessions build with ``SliceOptions(shards>1)`` forks
        # the region-shard tracer processes itself, and multiprocessing
        # forbids daemons from having children.  (A daemonic worker that
        # receives a per-request ``shards`` anyway falls back to the
        # serial build — counted under ``slicing.shard/fallbacks``.)
        from repro import config as _config
        effective_shards = (slice_options.shards if slice_options is not None
                            else _config.slice_shards())
        self.pool = WorkerPool(store_root=store_root, workers=workers,
                               queue_limit=queue_limit,
                               default_timeout=request_timeout,
                               lru_entries=lru_entries, lru_bytes=lru_bytes,
                               obs=OBS.enabled, slice_options=slice_options,
                               daemon=effective_shards <= 1)
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self.counts = {"connections": 0, "requests": 0, "errors": 0}
        self.started_at = time.time()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "DebugServer":
        self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=self.max_request_bytes + 2)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` RPC (or :meth:`close`) arrives."""
        await self._shutdown.wait()
        await self.close()

    async def close(self) -> None:
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await asyncio.get_running_loop().run_in_executor(
            None, self.pool.close)

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.counts["connections"] += 1
        if OBS.enabled:
            OBS.inc("serve.connections")
        try:
            while not self._shutdown.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Line longer than the stream limit: the buffer can
                    # not be resynchronized — answer, then hang up.
                    response = rpc.make_error(
                        None, rpc.OVERSIZED_REQUEST,
                        "request line exceeds the %d byte cap"
                        % self.max_request_bytes)
                    await self._send(writer, response)
                    break
                if not line:
                    break                      # clean EOF
                if not line.strip():
                    continue                   # keepalive blank line
                try:
                    request = rpc.parse_request(line,
                                                self.max_request_bytes)
                except rpc.RpcError as exc:
                    self.counts["errors"] += 1
                    if OBS.enabled:
                        OBS.inc("serve.protocol_errors")
                    await self._send(writer, exc.to_response())
                    if exc.code == rpc.OVERSIZED_REQUEST:
                        break
                    continue
                response, close_after = await self._dispatch(request)
                await self._send(writer, response)
                if close_after:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _send(self, writer: asyncio.StreamWriter,
                    message: dict) -> None:
        try:
            writer.write(rpc.encode_message(message))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(self, request: dict):
        """Route one validated request; returns (response, close_after)."""
        method = request["method"]
        params = request["params"]
        req_id = request["id"]
        self.counts["requests"] += 1
        started = time.perf_counter()
        _chaos_maybe_die(method)
        if OBS.enabled:
            OBS.inc("serve.requests")
            OBS.inc("serve.requests/%s" % method)
        close_after = False
        try:
            if method == "shutdown":
                result = {"stopping": True}
                self._shutdown.set()
                close_after = True
            else:
                handler = getattr(self, "_rpc_" + method.replace(".", "_"),
                                  None)
                if handler is None:
                    raise rpc.RpcError(rpc.METHOD_NOT_FOUND,
                                       "unknown method %r" % method)
                result = await handler(params)
            response = rpc.make_response(req_id, result)
        except Exception as exc:   # noqa: BLE001 — never crash the server
            self.counts["errors"] += 1
            if OBS.enabled:
                OBS.inc("serve.errors")
            response = self._error_response(req_id, exc)
        if OBS.enabled:
            OBS.observe("serve.request_latency_ms",
                        (time.perf_counter() - started) * 1000.0)
        return response, close_after

    @staticmethod
    def _error_response(req_id, exc: Exception) -> dict:
        """Map one dispatch failure onto its structured error response."""
        if isinstance(exc, rpc.RpcError):
            return exc.to_response(req_id)
        if isinstance(exc, RemoteOpError):
            return rpc.make_error(req_id, rpc.INTERNAL_ERROR,
                                  exc.remote_message,
                                  data={"op": exc.op,
                                        "type": exc.error_type})
        for exc_types, code in (
                ((KeyError, LookupError), rpc.NOT_FOUND),
                ((PinballFormatError,), rpc.BAD_PINBALL),
                ((PoolBusyError,), rpc.BUSY),
                ((PoolTimeoutError,), rpc.TIMEOUT),
                ((WorkerCrashError,), rpc.WORKER_CRASHED),
                ((TypeError, ValueError), rpc.INVALID_PARAMS)):
            if isinstance(exc, exc_types):
                return rpc.make_error(req_id, code,
                                      str(exc).strip("'\""))
        return rpc.make_error(req_id, rpc.INTERNAL_ERROR,
                              "%s: %s" % (type(exc).__name__, exc))

    async def _pool_call(self, op: str, params: dict,
                         key: Optional[str] = None):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, partial(self.pool.call, op, params, key=key,
                          timeout=params.get("timeout")))

    # -- recording resolution ----------------------------------------------

    def _recording_params(self, params: dict) -> dict:
        """Expand a client ``key`` into worker params (source + name)."""
        key = params.get("key")
        if not key:
            raise rpc.RpcError(rpc.INVALID_PARAMS,
                               "missing recording 'key' parameter")
        entry = self.store.entry(key)
        source_sha = entry.meta.get("source_sha")
        if not source_sha:
            raise rpc.RpcError(
                rpc.INVALID_PARAMS,
                "recording %s has no linked source (store it with "
                "store.put_recording or record)" % key)
        out = dict(params)
        out.pop("key", None)
        out["pinball"] = key
        out["source"] = source_sha
        out["program_name"] = entry.meta.get("program_name", "program")
        return out

    # -- service verbs -----------------------------------------------------

    async def _rpc_ping(self, params: dict) -> dict:
        return {"pong": True, "uptime_sec": time.time() - self.started_at}

    async def _rpc_stats(self, params: dict) -> dict:
        serve_counters = {
            name: value for name, value in OBS.counters().items()
            if name.startswith(("serve.", "index_cache."))}
        out = {
            "server": dict(self.counts, uptime_sec=time.time()
                           - self.started_at, port=self.port),
            "pool": self.pool.stats(),
            "store": self.store.stats(),
            "obs": serve_counters,
        }
        if params.get("workers", True):
            loop = asyncio.get_running_loop()
            out["worker_sessions"] = await loop.run_in_executor(
                None, self.pool.worker_stats)
        return out

    async def _rpc_record(self, params: dict) -> dict:
        source = params.get("program")
        if not source:
            raise rpc.RpcError(rpc.INVALID_PARAMS,
                               "record needs 'program' source text")
        name = params.get("program_name", "program")
        source_sha = self.store.put_source(source, name,
                                           tags=params.get("tags", ()))
        worker_params = {k: v for k, v in params.items()
                        if k not in ("program", "tags")}
        worker_params["source"] = source_sha
        worker_params["program_name"] = name
        result = await self._pool_call("record", worker_params)
        pinball = Pinball.from_bytes(result.pop("pinball_raw"),
                                     source="<recorded>")
        key = self.store.put_pinball(
            pinball, tags=params.get("tags", ()),
            meta={"source_sha": source_sha, "program_name": name})
        if OBS.enabled:
            OBS.inc("serve.recordings")
        return {"key": key, "source_sha": source_sha, **result}

    async def _rpc_replay(self, params: dict) -> dict:
        worker_params = self._recording_params(params)
        return await self._pool_call("replay", worker_params,
                                     key=worker_params["pinball"])

    async def _rpc_slice(self, params: dict) -> dict:
        worker_params = self._recording_params(params)
        result = await self._pool_call("slice", worker_params,
                                       key=worker_params["pinball"])
        raw = result.pop("slice_pinball_raw", None)
        if raw is not None:
            slice_pb = Pinball.from_bytes(raw, source="<slice>")
            sha = self.store.put_pinball(
                slice_pb, tags=params.get("tags", ()),
                meta={"source_sha": worker_params["source"],
                      "program_name": worker_params["program_name"],
                      "sliced_from": worker_params["pinball"]})
            result["slice_pinball_key"] = sha
        if OBS.enabled:
            OBS.inc("serve.slices")
        return result

    async def _rpc_last_reads(self, params: dict) -> dict:
        worker_params = self._recording_params(params)
        return await self._pool_call("last_reads", worker_params,
                                     key=worker_params["pinball"])

    async def _rpc_races(self, params: dict) -> dict:
        worker_params = self._recording_params(params)
        return await self._pool_call("races", worker_params,
                                     key=worker_params["pinball"])

    async def _rpc_build(self, params: dict) -> dict:
        worker_params = self._recording_params(params)
        return await self._pool_call("build", worker_params,
                                     key=worker_params["pinball"])

    async def _rpc_hunt(self, params: dict) -> dict:
        """The bug firehose, sharded over the pool.

        Stage 1 (scan) runs on the recording's affine worker; stage 2
        shards the candidate list into up to ``REPRO_HUNT_WORKERS``
        contiguous chunks evaluated concurrently (chunk order preserves
        candidate order, so the merge — and therefore every downstream
        artifact — is byte-identical to an in-process hunt); stage 3
        minimizes each distinct confirmed failure and stores its
        minimized pinball in the blob store.
        """
        import math
        from dataclasses import replace as dc_replace

        from repro import config as knobs
        from repro.analysis.hunt import dedupe_rows
        from repro.analysis.report import (HuntFinding, RaceFinding,
                                           hunt_report_payload)

        worker_params = self._recording_params(params)
        key = worker_params["pinball"]
        scanned = await self._pool_call("hunt_scan", worker_params, key=key)
        candidates = scanned["candidates"]
        ctx = scanned["ctx"]

        lanes = max(1, knobs.hunt_workers(explicit=params.get("workers")))
        lanes = min(lanes, len(candidates)) or 1
        size = math.ceil(len(candidates) / lanes)
        chunks = [candidates[i:i + size]
                  for i in range(0, len(candidates), size)]
        lane_results = await asyncio.gather(*[
            self._pool_call("hunt_eval",
                            dict(worker_params, candidates=chunk, ctx=ctx))
            for chunk in chunks])
        rows = [row for lane in lane_results for row in lane["rows"]]

        minimize_budget = int(params.get("minimize_budget", 64))
        findings = []
        minimized_keys = {}
        for candidate, row in dedupe_rows(candidates, rows):
            confirmed = await self._pool_call(
                "hunt_confirm",
                dict(worker_params, candidate=candidate, row=row, ctx=ctx,
                     races=scanned["races"],
                     minimize_budget=minimize_budget),
                key=key)
            minimized = Pinball.from_bytes(confirmed["pinball_raw"],
                                           source="<hunt>")
            sha = self.store.put_pinball(
                minimized, tags=params.get("tags", ()),
                meta={"source_sha": worker_params["source"],
                      "program_name": worker_params["program_name"],
                      "hunted_from": key})
            finding = dc_replace(
                HuntFinding.from_payload(confirmed["finding"]),
                minimized_key=sha)
            findings.append(finding)
            minimized_keys[finding.candidate] = sha
        if OBS.enabled:
            OBS.inc("serve.hunts")
        return hunt_report_payload(
            findings,
            races=[RaceFinding.from_payload(item)
                   for item in scanned["races"]],
            candidates_tried=len(rows),
            benign=sum(1 for row in rows if row["outcome"] == "benign"),
            minimized_keys=minimized_keys)

    # -- store verbs -------------------------------------------------------

    @staticmethod
    def _b64decode(params: dict, field: str) -> bytes:
        value = params.get(field)
        if not isinstance(value, str):
            raise rpc.RpcError(rpc.INVALID_PARAMS,
                               "missing base64 %r parameter" % field)
        try:
            return base64.b64decode(value.encode("ascii"), validate=True)
        except (binascii.Error, ValueError) as exc:
            raise rpc.RpcError(rpc.INVALID_PARAMS,
                               "%s is not valid base64: %s" % (field, exc))

    async def _rpc_store_put(self, params: dict) -> dict:
        data = self._b64decode(params, "blob")
        sha, dedup = self.store.put(
            data, kind=params.get("kind", "pinball"),
            tags=params.get("tags", ()), meta=params.get("meta"))
        return {"sha": sha, "deduplicated": dedup}

    async def _rpc_store_put_recording(self, params: dict) -> dict:
        """Upload program source + pinball blob as one linked recording."""
        source = params.get("program")
        if not isinstance(source, str) or not source:
            raise rpc.RpcError(rpc.INVALID_PARAMS,
                               "missing 'program' source text")
        blob = self._b64decode(params, "pinball")
        pinball = Pinball.from_bytes(blob, source="<upload>")
        name = params.get("program_name") or pinball.program_name
        tags = params.get("tags", ())
        source_sha = self.store.put_source(source, name, tags=tags)
        key = self.store.put_pinball(
            pinball, tags=tags,
            meta={"source_sha": source_sha, "program_name": name})
        return {"key": key, "source_sha": source_sha,
                "instructions": pinball.total_instructions,
                "failure": (pinball.meta.get("failure") or {}).get("code")}

    async def _rpc_store_get(self, params: dict) -> dict:
        sha = params.get("sha") or params.get("key")
        if not sha:
            raise rpc.RpcError(rpc.INVALID_PARAMS, "missing 'sha'")
        # get_payload reassembles chunked (format-v2) pinballs; plain
        # blobs pass through unchanged.
        data = self.store.get_payload(sha)
        try:
            entry = self.store.entry(sha).to_dict()
        except KeyError:
            entry = {"sha": sha}
        return {"entry": entry,
                "blob": base64.b64encode(data).decode("ascii")}

    async def _rpc_store_list(self, params: dict) -> dict:
        return {"entries": self.store.list(kind=params.get("kind"),
                                           tag=params.get("tag"))}

    async def _rpc_store_tag(self, params: dict) -> dict:
        self.store.tag(params["sha"], *params.get("tags", []))
        return {"sha": params["sha"],
                "tags": self.store.entry(params["sha"]).tags}

    async def _rpc_store_untag(self, params: dict) -> dict:
        self.store.untag(params["sha"], *params.get("tags", []))
        return {"sha": params["sha"],
                "tags": self.store.entry(params["sha"]).tags}

    async def _rpc_store_gc(self, params: dict) -> dict:
        removed = self.store.gc()
        # Cached worker sessions for removed recordings are stale now.
        return {"removed": removed}

    async def _rpc_store_stats(self, params: dict) -> dict:
        return self.store.stats()


def run_server(server: DebugServer,
               port_file: Optional[str] = None,
               announce=None) -> None:
    """Blocking entry point: start, announce, serve until shutdown.

    SIGTERM triggers the same graceful shutdown as the ``shutdown``
    RPC — essential for subprocess-managed fleets: a bare SIGTERM
    death would skip the pool teardown and orphan the daemonic worker
    processes (atexit hooks don't run under the default handler).
    """

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, server._shutdown.set)
        except (NotImplementedError, RuntimeError):
            pass                     # non-main thread or bare platform
        await server.start()
        if port_file:
            with open(port_file, "w") as handle:
                handle.write("%d\n" % server.port)
        if announce is not None:
            announce(server.host, server.port)
        await server.serve_until_shutdown()

    asyncio.run(_main())
