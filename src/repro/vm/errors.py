"""Exception types raised by the VM and the replay machinery."""

from __future__ import annotations

from typing import Optional


class VMError(Exception):
    """A machine-level fault: bad address, bad opcode, stack overflow."""

    def __init__(self, message: str, tid: Optional[int] = None,
                 pc: Optional[int] = None) -> None:
        location = ""
        if tid is not None:
            location += " [tid %d" % tid
            if pc is not None:
                location += " pc %d" % pc
            location += "]"
        super().__init__(message + location)
        self.tid = tid
        self.pc = pc


class AssertionFailure(VMError):
    """The guest program's ``assert`` syscall failed — the bug *symptom*.

    DrDebug's whole workflow starts from one of these: the logger captures
    the execution region ending at the failure point, and slices are
    computed for values at the failing statement.
    """


class DeadlockError(VMError):
    """All live threads are blocked; nothing can make progress."""


class HeapError(VMError):
    """A heap-discipline fault: freeing an address that is not the base
    of a live allocation (double free, free of garbage, free of an
    interior pointer).  Loud and deterministic, so heap-bug analogs fail
    the same way on record and on every replay."""


class ReplayDivergence(VMError):
    """Deterministic replay observed state inconsistent with the pinball.

    This should never happen for a well-formed pinball; it indicates either
    pinball corruption or a VM nondeterminism bug, and is checked by the
    replay-determinism property tests.
    """
