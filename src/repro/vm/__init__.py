"""Multi-threaded interpreter VM with Pin-style instrumentation hooks.

This is the dynamic-instrumentation substrate of the reproduction (the
paper's Pin).  The :class:`~repro.vm.machine.Machine` interprets a linked
:class:`~repro.isa.program.Program` with any number of threads, interleaved
at single-instruction granularity by a pluggable
:mod:`~repro.vm.scheduler`.  *Tools* (:class:`~repro.vm.hooks.Tool`) attach
analysis callbacks exactly like pintools do: per-instruction events with
full register/memory def-use information, syscall events, and thread
lifecycle events.  The PinPlay analog (:mod:`repro.pinplay`) and the dynamic
slicer (:mod:`repro.slicing`) are both implemented as tools.

Nondeterminism — the thing deterministic replay must capture — comes from
exactly two places: the scheduler's interleaving choices and syscall results
(``input``, ``rand``, ``time``).  Everything else is a pure function of
those, which is what makes pinball-based replay exact.
"""

from repro.vm.errors import (
    AssertionFailure,
    DeadlockError,
    HeapError,
    ReplayDivergence,
    VMError,
)
from repro.vm.hooks import InstrEvent, SyscallEvent, Tool
from repro.vm.machine import Machine, MachineSnapshot, RunResult
from repro.vm.memory import HEAP_POISON, Memory
from repro.vm.scheduler import (
    PriorityScheduler,
    RandomScheduler,
    RecordedScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from repro.vm.thread import ThreadContext, ThreadStatus

__all__ = [
    "AssertionFailure",
    "DeadlockError",
    "HEAP_POISON",
    "HeapError",
    "InstrEvent",
    "Machine",
    "MachineSnapshot",
    "Memory",
    "PriorityScheduler",
    "RandomScheduler",
    "RecordedScheduler",
    "ReplayDivergence",
    "RoundRobinScheduler",
    "RunResult",
    "Scheduler",
    "SyscallEvent",
    "ThreadContext",
    "ThreadStatus",
    "Tool",
    "VMError",
]
