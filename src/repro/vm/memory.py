"""Flat word-addressed data memory with a simple heap allocator.

Memory is sparse (a dict of non-zero words): guest programs address a large
space but touch little of it, and sparse storage makes snapshots for region
pinballs cheap.  The heap allocator is a bump allocator with a free list —
deterministic given a deterministic allocation order, which replay
guarantees.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple, Union

from repro.vm.errors import VMError

Word = Union[int, float]

#: Top of the data address space; thread stacks are carved from just below.
ADDRESS_SPACE_TOP = 1 << 22
#: Words reserved per thread stack.
STACK_SIZE = 1 << 14


class Memory:
    """Sparse word memory plus heap allocation state."""

    def __init__(self, heap_base: int) -> None:
        self._words: Dict[int, Word] = {}
        self.heap_base = heap_base
        self.heap_next = heap_base
        # Free list: size -> list of base addresses available for reuse.
        self._free: Dict[int, List[int]] = {}
        # Block sizes for free(); addr -> size.
        self._block_sizes: Dict[int, int] = {}

    # -- word access --------------------------------------------------------

    def read(self, addr: int) -> Word:
        if addr <= 0 or addr >= ADDRESS_SPACE_TOP:
            raise VMError("bad read address %d" % addr)
        return self._words.get(addr, 0)

    def write(self, addr: int, value: Word) -> None:
        if addr <= 0 or addr >= ADDRESS_SPACE_TOP:
            raise VMError("bad write address %d" % addr)
        if value == 0 and not isinstance(value, float):
            self._words.pop(addr, None)
        else:
            self._words[addr] = value

    def load_image(self, image: Dict[int, Word]) -> None:
        for addr, value in image.items():
            self.write(addr, value)

    # -- heap ----------------------------------------------------------------

    def malloc(self, size: int) -> int:
        """Allocate ``size`` words; returns base address (never 0)."""
        if size <= 0:
            size = 1
        bucket = self._free.get(size)
        if bucket:
            addr = bucket.pop()
        else:
            addr = self.heap_next
            self.heap_next += size
            if self.heap_next >= ADDRESS_SPACE_TOP - STACK_SIZE * 64:
                raise VMError("heap exhausted")
        self._block_sizes[addr] = size
        return addr

    def free(self, addr: int) -> None:
        size = self._block_sizes.pop(addr, None)
        if size is None:
            raise VMError("free of unallocated address %d" % addr)
        self._free.setdefault(size, []).append(addr)

    # -- snapshot / restore ----------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable state for region pinballs (pair lists, since
        JSON cannot carry int-keyed dicts)."""
        return {
            "words": sorted(self._words.items()),
            "heap_base": self.heap_base,
            "heap_next": self.heap_next,
            "free": sorted((size, sorted(addrs))
                           for size, addrs in self._free.items()),
            "block_sizes": sorted(self._block_sizes.items()),
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "Memory":
        memory = cls(heap_base=snap["heap_base"])
        memory._words = {int(addr): value for addr, value in snap["words"]}
        memory.heap_next = snap["heap_next"]
        memory._free = {int(size): [int(a) for a in addrs]
                        for size, addrs in snap["free"]}
        memory._block_sizes = {int(addr): int(size)
                               for addr, size in snap["block_sizes"]}
        return memory

    def nonzero_items(self) -> Iterator[Tuple[int, Word]]:
        return iter(sorted(self._words.items()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Memory):
            return NotImplemented
        return self._words == other._words

    def __len__(self) -> int:
        return len(self._words)
