"""Flat word-addressed data memory with a simple heap allocator.

Memory is sparse (a dict of non-zero words): guest programs address a large
space but touch little of it, and sparse storage makes snapshots for region
pinballs cheap.  The heap allocator is a bump allocator with a free list —
deterministic given a deterministic allocation order, which replay
guarantees.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.vm.errors import HeapError, VMError

Word = Union[int, float]

#: Top of the data address space; thread stacks are carved from just below.
ADDRESS_SPACE_TOP = 1 << 22
#: Words reserved per thread stack.
STACK_SIZE = 1 << 14

#: The value poison mode fills freed blocks with (0xDEADBEEF as a signed
#: 32-bit word).  Distinctive enough that a guest assertion can test for
#: it, and nonzero so the sparse store keeps the words resident.
HEAP_POISON = -559038737


class Memory:
    """Sparse word memory plus heap allocation state.

    With ``poison_freed`` enabled, :meth:`free` overwrites every word of
    the released block with :data:`HEAP_POISON` — a use-after-free then
    reads a loud, recognizable value instead of silently stale data, and
    does so *deterministically* on record and on every replay (the flag
    rides in the snapshot).
    """

    def __init__(self, heap_base: int, poison_freed: bool = False) -> None:
        self._words: Dict[int, Word] = {}
        self.heap_base = heap_base
        self.heap_next = heap_base
        self.poison_freed = poison_freed
        # Free list: size -> list of base addresses available for reuse.
        self._free: Dict[int, List[int]] = {}
        # Block sizes for free(); addr -> size.
        self._block_sizes: Dict[int, int] = {}

    # -- word access --------------------------------------------------------

    def read(self, addr: int) -> Word:
        if addr <= 0 or addr >= ADDRESS_SPACE_TOP:
            raise VMError("bad read address %d" % addr)
        return self._words.get(addr, 0)

    def write(self, addr: int, value: Word) -> None:
        if addr <= 0 or addr >= ADDRESS_SPACE_TOP:
            raise VMError("bad write address %d" % addr)
        if value == 0 and not isinstance(value, float):
            self._words.pop(addr, None)
        else:
            self._words[addr] = value

    def load_image(self, image: Dict[int, Word]) -> None:
        for addr, value in image.items():
            self.write(addr, value)

    # -- heap ----------------------------------------------------------------

    def malloc(self, size: int) -> int:
        """Allocate ``size`` words; returns base address (never 0)."""
        if size <= 0:
            size = 1
        bucket = self._free.get(size)
        if bucket:
            addr = bucket.pop()
        else:
            addr = self.heap_next
            self.heap_next += size
            if self.heap_next >= ADDRESS_SPACE_TOP - STACK_SIZE * 64:
                raise VMError("heap exhausted")
        self._block_sizes[addr] = size
        return addr

    def free(self, addr: int) -> Optional[List[Tuple[int, Word]]]:
        """Release a block; returns the poison writes performed (address,
        value pairs) when poison mode is on, else None.

        The caller (the ``free`` syscall) attributes those writes to the
        freeing instruction, so a slice of a use-after-free read reaches
        the ``delete`` site through an ordinary memory dependence.
        """
        size = self._block_sizes.pop(addr, None)
        if size is None:
            raise HeapError("free of unallocated address %d" % addr)
        self._free.setdefault(size, []).append(addr)
        if not self.poison_freed:
            return None
        writes: List[Tuple[int, Word]] = []
        for offset in range(size):
            self._words[addr + offset] = HEAP_POISON
            writes.append((addr + offset, HEAP_POISON))
        return writes

    # -- snapshot / restore ----------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable state for region pinballs (pair lists, since
        JSON cannot carry int-keyed dicts).  The poison flag is only
        present when enabled, so pinballs of ordinary runs are
        byte-identical to those recorded before the flag existed."""
        snap = {
            "words": sorted(self._words.items()),
            "heap_base": self.heap_base,
            "heap_next": self.heap_next,
            "free": sorted((size, sorted(addrs))
                           for size, addrs in self._free.items()),
            "block_sizes": sorted(self._block_sizes.items()),
        }
        if self.poison_freed:
            snap["poison"] = True
        return snap

    @classmethod
    def from_snapshot(cls, snap: dict) -> "Memory":
        memory = cls(heap_base=snap["heap_base"],
                     poison_freed=bool(snap.get("poison", False)))
        memory._words = {int(addr): value for addr, value in snap["words"]}
        memory.heap_next = snap["heap_next"]
        memory._free = {int(size): [int(a) for a in addrs]
                        for size, addrs in snap["free"]}
        memory._block_sizes = {int(addr): int(size)
                               for addr, size in snap["block_sizes"]}
        return memory

    def nonzero_items(self) -> Iterator[Tuple[int, Word]]:
        return iter(sorted(self._words.items()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Memory):
            return NotImplemented
        return self._words == other._words

    def __len__(self) -> int:
        return len(self._words)
