"""Per-thread execution context.

Each thread owns its registers, program counter, a stack region, and a call
stack of frames for debugger backtraces and for tagging dynamic control
dependences with the frame they belong to (the Xin-Zhang algorithm is
per-frame; see :mod:`repro.slicing.control_dep`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.isa.instructions import ALL_REGISTERS

Word = Union[int, float]

#: Sentinel return address: a ``ret`` that pops this terminates the thread.
EXIT_SENTINEL = -1


class ThreadStatus:
    RUNNABLE = "runnable"
    BLOCKED = "blocked"     # waiting on a lock or a join
    FINISHED = "finished"


@dataclass
class Frame:
    """One call frame: enough for backtraces and frame-scoped analyses."""

    func: str
    call_addr: int          # address of the call instruction (-1 for entry)
    return_addr: int
    frame_id: int           # unique per (thread, dynamic call)
    fp_at_entry: int = 0


class ThreadContext:
    """Architectural state of one guest thread."""

    def __init__(self, tid: int, entry_pc: int, stack_base: int) -> None:
        self.tid = tid
        self.pc = entry_pc
        self.status = ThreadStatus.RUNNABLE
        self.regs: Dict[str, Word] = {name: 0 for name in ALL_REGISTERS}
        self.regs["sp"] = stack_base
        self.regs["fp"] = stack_base
        self.stack_base = stack_base          # highest address + 1 of stack
        self.stack_limit = stack_base - (1 << 14)
        #: Instructions this thread has executed (region-relative).
        self.instr_count = 0
        #: What the thread is blocked on: ("lock", addr) or ("join", tid)
        #: or ("sleep", wake_at_seq).
        self.block_reason: Optional[tuple] = None
        self.frames: List[Frame] = []
        self._next_frame_id = 0
        #: Exit value (r0 of the entry function at thread exit).
        self.exit_value: Word = 0

    # -- frames ----------------------------------------------------------------

    def push_frame(self, func: str, call_addr: int, return_addr: int) -> Frame:
        frame = Frame(
            func=func,
            call_addr=call_addr,
            return_addr=return_addr,
            frame_id=self._next_frame_id,
            fp_at_entry=self.regs["fp"],
        )
        self._next_frame_id += 1
        self.frames.append(frame)
        return frame

    def pop_frame(self) -> Optional[Frame]:
        if self.frames:
            return self.frames.pop()
        return None

    def current_frame(self) -> Optional[Frame]:
        return self.frames[-1] if self.frames else None

    # -- snapshot / restore ------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "tid": self.tid,
            "pc": self.pc,
            "status": self.status,
            "regs": dict(self.regs),
            "stack_base": self.stack_base,
            "stack_limit": self.stack_limit,
            "block_reason": list(self.block_reason) if self.block_reason else None,
            "frames": [
                {
                    "func": f.func,
                    "call_addr": f.call_addr,
                    "return_addr": f.return_addr,
                    "frame_id": f.frame_id,
                    "fp_at_entry": f.fp_at_entry,
                }
                for f in self.frames
            ],
            "next_frame_id": self._next_frame_id,
            # Mid-region snapshots (checkpoints, shard boundaries) may be
            # taken after this thread exited; a later ``join`` must still
            # observe the recorded exit value.
            "exit_value": self.exit_value,
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "ThreadContext":
        thread = cls(snap["tid"], snap["pc"], snap["stack_base"])
        thread.status = snap["status"]
        thread.regs = dict(snap["regs"])
        thread.stack_limit = snap["stack_limit"]
        reason = snap.get("block_reason")
        thread.block_reason = tuple(reason) if reason else None
        thread.frames = [
            Frame(
                func=f["func"],
                call_addr=f["call_addr"],
                return_addr=f["return_addr"],
                frame_id=f["frame_id"],
                fp_at_entry=f["fp_at_entry"],
            )
            for f in snap["frames"]
        ]
        thread._next_frame_id = snap["next_frame_id"]
        thread.exit_value = snap.get("exit_value", 0)
        return thread

    def __repr__(self) -> str:
        return "<ThreadContext tid=%d pc=%d %s>" % (self.tid, self.pc, self.status)
