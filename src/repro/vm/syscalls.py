"""Guest syscall implementations.

Syscalls take arguments in ``r0``..``r3`` and return results in ``r0``.
Three of them are *nondeterministic* from the guest's point of view —
``input``, ``rand`` and ``time`` — and their results are what the PinPlay
logger records and the replayer injects.  Everything else is a pure
function of machine state and the schedule, so replaying the schedule
reproduces it exactly.

Each handler returns one of:

* a value — stored into ``r0``;
* ``None`` — no result register is written;
* :data:`BLOCK` — the calling thread blocks and the instruction will be
  re-executed when the thread becomes runnable again.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.vm.errors import HeapError, VMError
from repro.vm.thread import ThreadStatus

Word = Union[int, float]

#: Sentinel: the syscall blocked; retry the instruction when woken.
BLOCK = object()

#: Syscalls whose results the logger must record (true nondeterminism).
NONDET_SYSCALLS = ("input", "rand", "time")


def sys_spawn(machine, thread) -> Word:
    """``spawn(func_addr, arg) -> tid`` — create a new guest thread."""
    func_addr = int(thread.regs["r0"])
    arg = thread.regs["r1"]
    child = machine.create_thread(func_addr, arg, parent=thread.tid)
    return child.tid


def sys_join(machine, thread):
    """``join(tid) -> exit_value`` — block until the target thread exits."""
    target_tid = int(thread.regs["r0"])
    target = machine.threads.get(target_tid)
    if target is None:
        raise VMError("join of unknown tid %d" % target_tid,
                      tid=thread.tid, pc=thread.pc)
    if target.status == ThreadStatus.FINISHED:
        return target.exit_value
    thread.block_reason = ("join", target_tid)
    return BLOCK


def sys_lock(machine, thread):
    """``lock(addr)`` — acquire the mutex identified by data address."""
    addr = int(thread.regs["r0"])
    owner = machine.locks.get(addr)
    if owner is None:
        machine.locks[addr] = thread.tid
        return None
    if owner == thread.tid:
        raise VMError("recursive lock of %d" % addr,
                      tid=thread.tid, pc=thread.pc)
    thread.block_reason = ("lock", addr)
    return BLOCK


def sys_unlock(machine, thread) -> None:
    """``unlock(addr)`` — release a held mutex, waking its waiters."""
    addr = int(thread.regs["r0"])
    owner = machine.locks.get(addr)
    if owner != thread.tid:
        raise VMError(
            "unlock of mutex %d not held by tid %d" % (addr, thread.tid),
            tid=thread.tid, pc=thread.pc)
    machine.locks[addr] = None
    machine.wake_blocked(("lock", addr))
    return None


def sys_print(machine, thread) -> None:
    """``print(value)`` — append to the machine's output stream."""
    machine.output.append(thread.regs["r0"])
    return None


def sys_input(machine, thread) -> Word:
    """``input() -> value`` — nondeterministic external input."""
    return machine.next_input()


def sys_rand(machine, thread) -> Word:
    """``rand(bound) -> value`` in [0, bound) — nondeterministic."""
    bound = int(thread.regs["r0"])
    return machine.rng.next(max(1, bound))


def sys_time(machine, thread) -> Word:
    """``time() -> ticks`` — nondeterministic wall-clock analog."""
    return machine.clock()


def sys_malloc(machine, thread) -> Word:
    """``malloc(size) -> addr`` — heap allocation."""
    return machine.memory.malloc(int(thread.regs["r0"]))


def sys_free(machine, thread) -> None:
    """``free(addr)`` — heap release.

    In poison mode the allocator fills the block with
    :data:`~repro.vm.memory.HEAP_POISON`; those writes are deposited
    into ``machine._cur_mem_writes`` (the same channel ``spawn`` uses
    for the child's argument slot), so every engine attributes them to
    this instruction and a use-after-free slice lands on the freeing
    ``delete`` site through an ordinary memory dependence.
    """
    addr = int(thread.regs["r0"])
    try:
        poison_writes = machine.memory.free(addr)
    except HeapError as exc:
        raise HeapError(str(exc), tid=thread.tid, pc=thread.pc) from None
    if poison_writes and machine._cur_mem_writes is not None:
        machine._cur_mem_writes.extend(poison_writes)
    return None


def sys_assert(machine, thread) -> None:
    """``assert(cond, code)`` — record a failure symptom if cond is falsy."""
    if not thread.regs["r0"]:
        machine.record_failure(int(thread.regs["r1"]), thread)
    return None


def sys_yield(machine, thread) -> None:
    """``yield()`` — scheduling hint; a no-op for our schedulers."""
    return None


def sys_sleep(machine, thread) -> None:
    """``sleep(steps)`` — block for ``steps`` global scheduler steps."""
    steps = int(thread.regs["r0"])
    if steps > 0:
        thread.block_reason = ("sleep", machine.global_seq + steps)
        thread.status = ThreadStatus.BLOCKED
        machine.note_sleeper(thread.tid)
    return None


def sys_barrier(machine, thread):
    """``barrier(addr, n)`` — block until ``n`` threads have arrived.

    The barrier is identified by a data address (like mutexes).  The
    ``n``-th arrival releases everyone and resets the barrier for reuse
    (generation counting prevents a fast thread from re-entering the same
    round).
    """
    addr = int(thread.regs["r0"])
    needed = int(thread.regs["r1"])
    if needed < 1:
        raise VMError("barrier needs a positive thread count",
                      tid=thread.tid, pc=thread.pc)
    return machine.barrier_arrive(addr, needed, thread)


def sys_exit(machine, thread) -> None:
    """``exit(code)`` — terminate the whole program."""
    machine.request_exit(int(thread.regs["r0"]))
    return None


SYSCALLS = {
    "spawn": sys_spawn,
    "join": sys_join,
    "lock": sys_lock,
    "unlock": sys_unlock,
    "print": sys_print,
    "input": sys_input,
    "rand": sys_rand,
    "time": sys_time,
    "malloc": sys_malloc,
    "free": sys_free,
    "assert": sys_assert,
    "yield": sys_yield,
    "sleep": sys_sleep,
    "barrier": sys_barrier,
    "exit": sys_exit,
}
