"""Instrumentation interface: tools attach to the VM like pintools to Pin.

A :class:`Tool` subscribes to machine events.  Per-instruction events carry
the full dynamic def/use information (register reads/writes with values,
memory reads/writes with addresses and values) that the dynamic slicer
needs; syscall and thread-lifecycle events are what the PinPlay-style
logger records.

Tools that do not need per-instruction events leave
:attr:`Tool.wants_instr_events` False, and the machine then skips event
construction entirely — the analog of the paper's observation that
fast-forwarding (before the region of interest) proceeds at near Pin-only
speed because the logger instruments minimally outside the region.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

Word = Union[int, float]


class InstrEvent:
    """One retired instruction with its dynamic def/use information."""

    __slots__ = (
        "seq", "tid", "tindex", "addr", "instr",
        "reg_reads", "reg_writes", "mem_reads", "mem_writes",
        "frame_id",
    )

    def __init__(self, seq: int, tid: int, tindex: int, addr: int, instr,
                 reg_reads: Sequence[Tuple[str, Word]],
                 reg_writes: Sequence[Tuple[str, Word]],
                 mem_reads: Sequence[Tuple[int, Word]],
                 mem_writes: Sequence[Tuple[int, Word]],
                 frame_id: int) -> None:
        self.seq = seq              # global step number (region-relative)
        self.tid = tid
        self.tindex = tindex        # index in this thread's retired stream
        self.addr = addr            # code address (pc)
        self.instr = instr          # the Instr object
        self.reg_reads = reg_reads
        self.reg_writes = reg_writes
        self.mem_reads = mem_reads
        self.mem_writes = mem_writes
        self.frame_id = frame_id    # current frame id (for control deps)

    def __repr__(self) -> str:
        return ("<InstrEvent seq=%d tid=%d tindex=%d pc=%d %s>"
                % (self.seq, self.tid, self.tindex, self.addr, self.instr))


class SyscallEvent:
    """One executed syscall, with its arguments and result."""

    __slots__ = ("seq", "tid", "tindex", "addr", "name", "args", "result",
                 "injected")

    def __init__(self, seq: int, tid: int, tindex: int, addr: int, name: str,
                 args: Tuple[Word, ...], result: Optional[Word],
                 injected: bool = False) -> None:
        self.seq = seq
        self.tid = tid
        self.tindex = tindex
        self.addr = addr
        self.name = name
        self.args = args
        self.result = result
        self.injected = injected

    def __repr__(self) -> str:
        return ("<SyscallEvent tid=%d %s%r -> %r>"
                % (self.tid, self.name, self.args, self.result))


class Tool:
    """Base class for analysis tools; override the callbacks you need."""

    #: Set True to receive :meth:`on_instr` with full def/use events.
    wants_instr_events = False

    #: Set False to promise that :meth:`on_instr` never keeps a reference
    #: to the event (or its def/use sequences) past its own return.  When
    #: every subscribed tool promises this, the predecoded engine recycles
    #: one scratch event per step instead of allocating — the def/use
    #: sequences are then lists, identical in contents and order to the
    #: tuples a retaining tool would see.  Leave True (the safe default)
    #: if the tool stores events anywhere.
    retains_instr_events = True

    def on_start(self, machine) -> None:
        """Called once before the first step."""

    def on_instr(self, event: InstrEvent) -> None:
        """Called after every retired instruction (if subscribed)."""

    def on_syscall(self, event: SyscallEvent) -> None:
        """Called after every completed (non-blocking) syscall."""

    def on_thread_start(self, tid: int, parent: Optional[int],
                        start_pc: int, arg: Word) -> None:
        """Called when a thread is created (including the main thread)."""

    def on_thread_exit(self, tid: int, exit_value: Word) -> None:
        """Called when a thread finishes."""

    def on_step(self, tid: int) -> None:
        """Called for every scheduler step, including blocked lock attempts.

        This is the hook the schedule recorder uses: the recorded schedule
        must include steps that did not retire an instruction (a lock
        attempt that blocked), because replay re-executes those too.
        """

    def on_finish(self, machine) -> None:
        """Called once when the run stops (program end, failure, or limit)."""
