"""The interpreter core: a multi-threaded machine with analysis hooks.

One :class:`Machine` executes one linked :class:`~repro.isa.program.Program`.
Every scheduler step runs a single instruction of a single thread, so any
interleaving a real multiprocessor could produce at instruction granularity
is reachable — which is what lets seeded random schedules expose the data
races in the bug workloads, and what lets a recorded schedule reproduce
them exactly.

Design notes relevant to replay determinism:

* All guest-visible nondeterminism funnels through three syscalls
  (``input``, ``rand``, ``time``) and the scheduler.  The machine exposes a
  ``syscall_injector`` so the replayer can substitute recorded results.
* Blocked lock/join attempts consume a scheduler step without retiring an
  instruction; they are part of the recorded schedule so record and replay
  agree step-for-step.
* :meth:`Machine.snapshot` captures the complete architectural state and is
  the "initial state" section of a region pinball.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.isa.instructions import Imm, Instr, Mem, Opcode, Reg
from repro.isa.program import Program
from repro.obs.registry import OBS
from repro.vm.errors import AssertionFailure, DeadlockError, VMError
from repro.vm.hooks import InstrEvent, SyscallEvent, Tool
from repro.vm.memory import ADDRESS_SPACE_TOP, STACK_SIZE, Memory
from repro.vm.microops import MEM_OPCODES, decode_program
from repro.vm.scheduler import RoundRobinScheduler, Scheduler
from repro.vm.syscalls import BLOCK, NONDET_SYSCALLS, SYSCALLS
from repro.vm.thread import EXIT_SENTINEL, ThreadContext, ThreadStatus

Word = Union[int, float]

#: Execution engines: "predecoded" dispatches through per-pc micro-op
#: closures (see :mod:`repro.vm.microops`); "legacy" is the seed
#: if/elif interpreter, kept as the differential-testing baseline.
ENGINES = ("predecoded", "legacy")

#: Opcodes whose handlers can touch memory (SYS included because
#: ``spawn`` writes the child's argument slot) — defined next to the
#: record handlers they gate.
_MEM_OPCODES = MEM_OPCODES


def default_engine() -> str:
    """The engine used when a Machine is built without an explicit choice.

    Overridable via ``REPRO_ENGINE`` (resolved through
    :func:`repro.config.engine`) so benchmarks and CI can pin either
    engine without threading a parameter through every entry point."""
    from repro import config
    return config.engine()

_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


class Lcg:
    """A 64-bit LCG: the machine's deterministic, serializable RNG."""

    def __init__(self, seed: int = 0) -> None:
        self.state = (seed ^ 0x9E3779B97F4A7C15) & _LCG_MASK

    def next(self, bound: int) -> int:
        self.state = (self.state * _LCG_MULT + _LCG_INC) & _LCG_MASK
        return (self.state >> 33) % bound


@dataclass
class RunResult:
    """Outcome of a :meth:`Machine.run` call."""

    reason: str               # "done" | "exit" | "limit" | "stop"
    steps: int                # scheduler steps taken in this call
    retired: int              # instructions actually retired in this call
    failure: Optional[dict]   # assertion-failure record, if any


class MachineSnapshot:
    """Complete architectural state; the pinball's initial-state section."""

    def __init__(self, payload: dict) -> None:
        self.payload = payload

    def to_dict(self) -> dict:
        return self.payload

    @classmethod
    def from_dict(cls, payload: dict) -> "MachineSnapshot":
        return cls(payload)


class Machine:
    """Interpreter for one program run (or one replayed region)."""

    def __init__(self, program: Program,
                 scheduler: Optional[Scheduler] = None,
                 tools: Sequence[Tool] = (),
                 inputs: Sequence[Word] = (),
                 rand_seed: int = 0,
                 syscall_injector: Optional[Callable[[str, int], Optional[Word]]] = None,
                 start_main: bool = True,
                 engine: Optional[str] = None,
                 heap_poison: bool = False) -> None:
        self.program = program
        self.instructions = program.instructions
        self.engine = engine if engine is not None else default_engine()
        if self.engine not in ENGINES:
            raise VMError("unknown engine %r (expected one of %s)"
                          % (self.engine, ", ".join(ENGINES)))
        if self.engine == "predecoded":
            (self._uops_fast, self._uops_traced,
             self._uops_rec) = decode_program(program)
        else:
            self._uops_fast = self._uops_traced = self._uops_rec = None
        self._code_len = len(self.instructions)
        #: Cached sorted runnable-tid list (predecoded engine only); None
        #: means stale.  Every thread-status mutation site invalidates it.
        self._runnable_cache: Optional[List[int]] = None
        #: Tids currently blocked in a sleep; lets the hot loop skip the
        #: all-threads sleeper scan when nobody is sleeping.
        self._sleeping: set = set()
        self.memory = Memory(heap_base=program.data_size,
                             poison_freed=heap_poison)
        self.memory.load_image(program.initial_data_image())
        self.scheduler = scheduler or RoundRobinScheduler()
        self.scheduler.attach(self)
        self.tools: List[Tool] = list(tools)
        self.threads: Dict[int, ThreadContext] = {}
        self.locks: Dict[int, Optional[int]] = {}
        #: addr -> {"gen": int, "waiting": set[tid], "released": set[tid]}
        self.barriers: Dict[int, dict] = {}
        self.next_tid = 0
        self.global_seq = 0
        self.output: List[Word] = []
        self.failure: Optional[dict] = None
        self.exit_code: Optional[int] = None
        self.stop_request = False
        self.breakpoints: set = set()
        self._bp_skip = False
        #: Exclusion-skip support for slice pinballs: (tid, pc) ->
        #: {arrival_index: exclusion record}; see install_exclusions().
        self._excl_watch: Dict[Tuple[int, int], Dict[int, dict]] = {}
        self._excl_arrivals: Dict[Tuple[int, int], int] = {}
        self.skipped_exclusions = 0
        self.rng = Lcg(rand_seed)
        self.inputs: List[Word] = list(inputs)
        self.input_pos = 0
        self.syscall_injector = syscall_injector
        self._time_base = 1_000_000
        self._last_clock = 0
        self._exit_requested = False
        self._last_tid: Optional[int] = None
        self._started = False
        self._cur_mem_writes: Optional[List[Tuple[int, Word]]] = None
        #: Fast record path (see set_recorder): the recorder object and a
        #: per-pc "can this instruction touch memory" bitmap.
        self._recorder = None
        self._rec_mem_pc: Optional[List[bool]] = None
        self._rec_reads: List[int] = []
        self._rec_writes: List[int] = []
        #: Selective-trace path (see set_selective): a sink-bound handler
        #: table from repro.vm.microops.decode_selective, or None.
        self._uops_sel = None
        self._event_reuse_ok = False
        self._scratch_event: Optional[InstrEvent] = None
        self._instr_tools: List[Tool] = []
        self._syscall_tools: List[Tool] = []
        self._step_tools: List[Tool] = []
        self._lifecycle_tools: List[Tool] = []
        if start_main:
            entry = program.resolve_symbol(program.entry_function)
            if entry is None:
                raise VMError("no entry function %r" % program.entry_function)
            self.create_thread(entry, 0, parent=None, notify=False)

    # -- tool management -----------------------------------------------------

    def add_tool(self, tool: Tool) -> Tool:
        self.tools.append(tool)
        if self._started:
            self._index_tools()
            tool.on_start(self)
        return tool

    def _index_tools(self) -> None:
        self._instr_tools = [t for t in self.tools if t.wants_instr_events]
        # When every subscribed tool consumes events synchronously
        # (``retains_instr_events`` False), the predecoded traced path may
        # recycle one scratch InstrEvent and hand over the raw def/use
        # lists without tuple conversion.  Any tool that might retain the
        # event (the default) forces fresh, immutable events.
        self._event_reuse_ok = bool(self._instr_tools) and all(
            not getattr(t, "retains_instr_events", True)
            for t in self._instr_tools)
        self._syscall_tools = [
            t for t in self.tools
            if type(t).on_syscall is not Tool.on_syscall]
        self._step_tools = [
            t for t in self.tools if type(t).on_step is not Tool.on_step]
        self._lifecycle_tools = [
            t for t in self.tools
            if type(t).on_thread_start is not Tool.on_thread_start
            or type(t).on_thread_exit is not Tool.on_thread_exit]

    def set_recorder(self, recorder) -> None:
        """Arm (or with ``None`` disarm) the fast record path.

        Instead of building an :class:`InstrEvent` per retired
        instruction, the run loop records the RLE schedule inline and
        calls ``recorder.on_mem`` only for instructions that actually
        touched memory — everything else executes through the untraced
        micro-op closures.  Requires the predecoded engine; the recorder
        must also be registered as a tool (for syscall/lifecycle events,
        which fire in untraced mode anyway).
        """
        if recorder is None:
            self._recorder = None
            self._rec_mem_pc = None
            return
        if self.engine != "predecoded":
            raise VMError("fast recording requires the predecoded engine")
        if self._excl_watch:
            raise VMError("cannot record over installed exclusions")
        self._rec_mem_pc = [instr.op in _MEM_OPCODES
                            for instr in self.instructions]
        # Scratch address lists reused across steps (cleared after each
        # on_mem delivery) — the record path allocates nothing per step.
        self._rec_reads: List[int] = []
        self._rec_writes: List[int] = []
        self._recorder = recorder

    def set_selective(self, table) -> None:
        """Arm (or with ``None`` disarm) the selective-trace path.

        ``table`` comes from :func:`repro.vm.microops.decode_selective`:
        a sink-bound handler per pc that executes at untraced speed and
        reports only the event classes the sink watches.  This is how the
        re-execution slicer replays a pinball (or a checkpoint-bounded
        window of one) while recording a pc stream or bare memory
        addresses instead of full instruction events.  Requires the
        predecoded engine; mutually exclusive with exclusion skips (the
        reexec path never sees slice pinballs) and ignored while a
        recorder or per-instruction tools are attached.
        """
        if table is None:
            self._uops_sel = None
            return
        if self.engine != "predecoded":
            raise VMError("selective tracing requires the predecoded engine")
        if self._excl_watch:
            raise VMError(
                "cannot trace selectively over installed exclusions")
        if len(table) != self._code_len:
            raise VMError("selective table does not match the program")
        self._uops_sel = table

    # -- thread management -----------------------------------------------------

    def create_thread(self, func_addr: int, arg: Word,
                      parent: Optional[int], notify: bool = True) -> ThreadContext:
        tid = self.next_tid
        self.next_tid += 1
        stack_base = ADDRESS_SPACE_TOP - 64 - tid * STACK_SIZE
        thread = ThreadContext(tid, func_addr, stack_base)
        function = self.program.function_at(func_addr)
        func_name = function.name if function else "<anon>"
        # Caller-style setup: arg then return-address sentinel on the stack.
        sp = thread.regs["sp"]
        sp -= 1
        self.memory.write(sp, arg)
        arg_addr = sp
        sp -= 1
        self.memory.write(sp, EXIT_SENTINEL)
        thread.regs["sp"] = sp
        thread.push_frame(func_name, -1, EXIT_SENTINEL)
        self.threads[tid] = thread
        self._runnable_cache = None
        self.scheduler.on_thread_created(tid)
        # Attribute the argument write to the spawning instruction so the
        # slicer sees the parent->child dependence through the arg slot.
        if self._cur_mem_writes is not None:
            self._cur_mem_writes.append((arg_addr, arg))
        if notify and self._lifecycle_tools:
            for tool in self._lifecycle_tools:
                tool.on_thread_start(tid, parent, func_addr, arg)
        return thread

    def _finish_thread(self, thread: ThreadContext) -> None:
        thread.status = ThreadStatus.FINISHED
        self._runnable_cache = None
        thread.exit_value = thread.regs["r0"]
        self.scheduler.on_thread_finished(thread.tid)
        self.wake_blocked(("join", thread.tid))
        for tool in self._lifecycle_tools:
            tool.on_thread_exit(thread.tid, thread.exit_value)

    def barrier_arrive(self, addr: int, needed: int, thread):
        """One thread arrives at barrier ``addr`` expecting ``needed``.

        Returns None (proceed) or the BLOCK sentinel.  The n-th arrival
        marks the other waiters *released* and wakes them; a released
        thread's retry passes straight through (generation semantics, so
        the barrier is immediately reusable)."""
        from repro.vm.syscalls import BLOCK
        state = self.barriers.setdefault(
            addr, {"gen": 0, "waiting": set(), "released": set()})
        if thread.tid in state["released"]:
            state["released"].discard(thread.tid)
            return None
        state["waiting"].add(thread.tid)
        if len(state["waiting"]) >= needed:
            state["released"] = set(state["waiting"]) - {thread.tid}
            state["waiting"] = set()
            state["gen"] += 1
            self.wake_blocked(("barrier", addr))
            return None
        thread.block_reason = ("barrier", addr)
        return BLOCK

    def wake_blocked(self, reason: tuple) -> None:
        for thread in self.threads.values():
            if (thread.status == ThreadStatus.BLOCKED
                    and thread.block_reason == reason):
                thread.status = ThreadStatus.RUNNABLE
                thread.block_reason = None
                self._runnable_cache = None
                self._sleeping.discard(thread.tid)

    def note_sleeper(self, tid: int) -> None:
        """A thread just entered a sleep-block (called by ``sys_sleep``)."""
        self._sleeping.add(tid)
        self._runnable_cache = None

    def _wake_sleepers(self) -> None:
        if not self._sleeping:
            return
        woken = []
        for tid in self._sleeping:
            thread = self.threads.get(tid)
            if (thread is not None
                    and thread.status == ThreadStatus.BLOCKED
                    and thread.block_reason
                    and thread.block_reason[0] == "sleep"):
                if thread.block_reason[1] <= self.global_seq:
                    thread.status = ThreadStatus.RUNNABLE
                    thread.block_reason = None
                    woken.append(tid)
            else:
                woken.append(tid)   # stale entry (woken elsewhere)
        if woken:
            self._sleeping.difference_update(woken)
            self._runnable_cache = None

    def runnable_tids(self) -> List[int]:
        self._wake_sleepers()
        return [tid for tid, thread in sorted(self.threads.items())
                if thread.status == ThreadStatus.RUNNABLE]

    def _runnable_cached(self) -> List[int]:
        """Hot-loop variant of :meth:`runnable_tids`.

        Content-identical to a fresh :meth:`runnable_tids` call at every
        step — the :class:`~repro.vm.scheduler.RandomScheduler` indexes
        into this list, so a stale cache would silently change recorded
        interleavings.  Every status mutation site resets the cache."""
        if self._sleeping:
            self._wake_sleepers()
        cache = self._runnable_cache
        if cache is None:
            cache = [tid for tid, thread in sorted(self.threads.items())
                     if thread.status == ThreadStatus.RUNNABLE]
            self._runnable_cache = cache
        return cache

    def live_threads(self) -> List[int]:
        return [tid for tid, thread in sorted(self.threads.items())
                if thread.status != ThreadStatus.FINISHED]

    # -- nondeterminism sources --------------------------------------------------

    def next_input(self) -> Word:
        if self.input_pos < len(self.inputs):
            value = self.inputs[self.input_pos]
            self.input_pos += 1
            return value
        return 0

    def clock(self) -> int:
        candidate = self._time_base + self.global_seq + self.rng.next(7)
        self._last_clock = max(candidate, self._last_clock + 1)
        return self._last_clock

    def record_failure(self, code: int, thread: ThreadContext) -> None:
        self.failure = {
            "tid": thread.tid,
            "pc": thread.pc - 1,   # pc already advanced past the sys instr
            "code": code,
            "seq": self.global_seq,
            "tindex": thread.instr_count,
        }
        self._exit_requested = True
        self.exit_code = 1

    def request_exit(self, code: int) -> None:
        self._exit_requested = True
        self.exit_code = code

    # -- main loop -----------------------------------------------------------------

    @property
    def finished(self) -> bool:
        if self._exit_requested:
            return True
        return all(t.status == ThreadStatus.FINISHED
                   for t in self.threads.values())

    def run(self, max_steps: Optional[int] = None) -> RunResult:
        """Run until program end, exit/failure, ``max_steps``, or stop request."""
        if not self._started:
            self._started = True
            self._index_tools()
            for tool in self.tools:
                tool.on_start(self)
            for tid, thread in sorted(self.threads.items()):
                for tool in self._lifecycle_tools:
                    tool.on_thread_start(tid, None, thread.pc, 0)
        steps = 0
        retired = 0
        reason = "done"
        predecoded = self.engine == "predecoded"
        step_thread = self._step_thread_uop if predecoded else self._step_thread
        # Fast record path: RLE schedule recording is inlined into this
        # loop (no per-step tool call), mem-order marking happens only on
        # instructions whose opcode can touch memory, and the recorder's
        # periodic checkpoint triggers on *step count* (global_seq can
        # jump past sleep fast-forwards and must not drive the interval).
        recorder = self._recorder
        rec_on = (recorder is not None and predecoded
                  and not self._instr_tools)
        rec_tid = rec_count = rec_interval = rec_next = rec_base = 0
        rec_append = rec_on_mem = None
        rec_mem_pc = uops_rec = uops_fast = None
        rec_mr = rec_mw = None
        code_len = self._code_len
        if rec_on:
            rec_tid = recorder._run_tid
            rec_count = recorder._run_count
            rec_append = recorder.append_run
            rec_on_mem = recorder.on_mem
            rec_interval = recorder.checkpoint_interval
            rec_base = recorder.steps_done
            rec_next = recorder.next_checkpoint
            rec_mem_pc = self._rec_mem_pc
            uops_rec = self._uops_rec
            uops_fast = self._uops_fast
            rec_mr = self._rec_reads
            rec_mw = self._rec_writes
        # Selective-trace path (set_selective): like the record path, a
        # dedicated per-pc handler table inlined into this loop; mutually
        # exclusive with recording and with per-instruction tools.
        uops_sel = self._uops_sel
        sel_on = (uops_sel is not None and predecoded
                  and not self._instr_tools and recorder is None)
        # Observability: one hoisted local; while disabled the per-step
        # cost is a single local-bool test (context-switch counting), and
        # everything else is aggregated from per-run deltas after the
        # loop — no dict lookups or attribute loads in the hot path.
        obs_on = OBS.enabled
        obs_switches = 0
        obs_skips_before = self.skipped_exclusions
        # External code may have mutated thread state between run() calls
        # (debugger stepping, tests poking statuses): start from a clean
        # cache rather than trusting one across the API boundary.
        self._runnable_cache = None
        # Hot-loop hoists.  All of these are only ever *reassigned* between
        # run() calls (the debugger swaps self.breakpoints; from_snapshot
        # rebuilds self._sleeping); within a run they are mutated in place,
        # so per-run locals see every change while skipping an attribute
        # load per step.
        scheduler = self.scheduler
        threads = self.threads
        breakpoints = self.breakpoints
        sleeping = self._sleeping
        excl_watch = self._excl_watch
        scheduler_pick = scheduler.pick
        scheduler_commit = scheduler.commit
        while True:
            if self._exit_requested:
                reason = "exit"
                break
            if max_steps is not None and steps >= max_steps:
                reason = "limit"
                break
            if self.stop_request:
                self.stop_request = False
                reason = "stop"
                break
            if sleeping:
                # Only replay schedules can demand a sleeping thread run
                # now (sleep deadlines measured in global steps shift when
                # a slice pinball drops excluded steps): the recorded step
                # implies the thread was awake in the original run, so the
                # schedule is authoritative and we wake it.
                intended = scheduler.intended()
                if intended is not None:
                    thread = threads.get(intended)
                    if (thread is not None
                            and thread.status == ThreadStatus.BLOCKED
                            and thread.block_reason
                            and thread.block_reason[0] == "sleep"):
                        thread.status = ThreadStatus.RUNNABLE
                        thread.block_reason = None
                        sleeping.discard(intended)
                        self._runnable_cache = None
                self._wake_sleepers()
            if predecoded:
                # Inlined _runnable_cached (sleeper wake handled above).
                runnable = self._runnable_cache
                if runnable is None:
                    runnable = [tid for tid, thread in sorted(threads.items())
                                if thread.status == ThreadStatus.RUNNABLE]
                    self._runnable_cache = runnable
            else:
                runnable = [tid for tid, thread in sorted(threads.items())
                            if thread.status == ThreadStatus.RUNNABLE]
            if not runnable:
                if self.finished:
                    reason = "done"
                    break
                # If nothing is runnable but some thread is sleeping,
                # fast-forward the step clock to the earliest wake-up
                # (deterministic: replay reaches the same state and takes
                # the same jump).  Only sleeper-free blockage is deadlock.
                wakes = [t.block_reason[1] for t in self.threads.values()
                         if t.status == ThreadStatus.BLOCKED
                         and t.block_reason and t.block_reason[0] == "sleep"]
                if wakes:
                    self.global_seq = max(self.global_seq, min(wakes))
                    self._wake_sleepers()
                    continue
                raise DeadlockError(
                    "deadlock: %d threads blocked" % len(self.live_threads()))
            tid = scheduler_pick(runnable, self._last_tid)
            thread = threads[tid]
            if breakpoints and thread.pc in breakpoints and not self._bp_skip:
                self.stop_request = False
                reason = "breakpoint"
                break
            self._bp_skip = False
            if obs_on and tid != self._last_tid and self._last_tid is not None:
                obs_switches += 1
            if excl_watch and self._try_exclusion_skip(thread):
                scheduler_commit(tid)
                self._last_tid = tid
                for tool in self._step_tools:
                    tool.on_step(tid)
                steps += 1
                self.global_seq += 1
                continue
            scheduler_commit(tid)
            self._last_tid = tid
            for tool in self._step_tools:
                tool.on_step(tid)
            if rec_on:
                if tid == rec_tid and rec_count:
                    rec_count += 1
                else:
                    if rec_count:
                        rec_append(rec_tid, rec_count)
                    rec_tid = tid
                    rec_count = 1
                # Machine state here is "after rec_base + steps steps":
                # the pending step has been scheduled but not executed.
                if rec_interval and rec_base + steps >= rec_next:
                    recorder.capture(self, rec_base + steps)
                    rec_next = recorder.next_checkpoint
                # The record step, inlined (see _step_thread_record for
                # the readable form): untraced closures except where the
                # opcode can touch memory, with every table a loop local.
                pc = thread.pc
                if not 0 <= pc < code_len:
                    raise VMError("pc out of range", tid=tid, pc=pc)
                if rec_mem_pc[pc]:
                    if uops_rec[pc](self, thread, rec_mr, rec_mw):
                        if rec_mr or rec_mw:
                            rec_on_mem(tid, thread.instr_count,
                                       rec_mr, rec_mw, pc)
                            del rec_mr[:]
                            del rec_mw[:]
                        thread.instr_count += 1
                        retired += 1
                    elif rec_mr or rec_mw:   # defensive: blocked syscall
                        del rec_mr[:]
                        del rec_mw[:]
                elif uops_fast[pc](self, thread):
                    thread.instr_count += 1
                    retired += 1
            elif sel_on:
                pc = thread.pc
                if not 0 <= pc < code_len:
                    raise VMError("pc out of range", tid=tid, pc=pc)
                if uops_sel[pc](self, thread):
                    thread.instr_count += 1
                    retired += 1
            elif step_thread(thread):
                retired += 1
            steps += 1
            self.global_seq += 1
        if rec_on:
            recorder._run_tid = rec_tid
            recorder._run_count = rec_count
            recorder.steps_done = rec_base + steps
        if obs_on:
            OBS.add("vm.runs", 1)
            OBS.add("vm.steps", steps)
            OBS.add("vm.instructions_retired", retired)
            if self._instr_tools:
                OBS.add("vm.steps_traced", steps)
            elif rec_on:
                OBS.add("vm.steps_recorded", steps)
            elif sel_on:
                OBS.add("vm.steps_selective", steps)
            else:
                OBS.add("vm.steps_untraced", steps)
            OBS.add("vm.context_switches", obs_switches)
            skips = self.skipped_exclusions - obs_skips_before
            if skips:
                OBS.add("vm.exclusion_skips", skips)
            if reason == "breakpoint":
                OBS.add("vm.breakpoint_stops", 1)
        for tool in self.tools:
            tool.on_finish(self)
        return RunResult(reason=reason, steps=steps, retired=retired,
                         failure=self.failure)

    def step_over_breakpoint(self) -> None:
        """Allow the next step to execute even if it sits on a breakpoint."""
        self._bp_skip = True

    # -- exclusion regions (slice pinball replay) ---------------------------------

    def install_exclusions(self, exclusions: Sequence[dict]) -> None:
        """Arm code-exclusion skips for slice-pinball replay.

        Each record (produced by the relogger) describes one dynamic run of
        excluded instructions::

            {"tid": int, "start_pc": int, "start_arrival": int,
             "end_pc": int, "regs": [[name, value], ...],
             "mem": [[addr, value], ...], "frames": [frame snapshots]}

        When thread ``tid`` *arrives* at ``start_pc`` for the
        ``start_arrival``-th time (arrivals count both normal executions of
        that pc and skips), the machine teleports the thread to ``end_pc``
        and injects the recorded register/memory side effects — the
        excluded code is never executed, which is what makes slice-pinball
        replay fast (paper Section 4, Figure 6).
        """
        for record in exclusions:
            key = (int(record["tid"]), int(record["start_pc"]))
            self._excl_watch.setdefault(key, {})[
                int(record["start_arrival"])] = record

    def _try_exclusion_skip(self, thread) -> bool:
        key = (thread.tid, thread.pc)
        by_arrival = self._excl_watch.get(key)
        if by_arrival is None:
            return False
        arrival = self._excl_arrivals.get(key, 0) + 1
        self._excl_arrivals[key] = arrival
        record = by_arrival.get(arrival)
        if record is None:
            return False
        for name, value in record["regs"]:
            thread.regs[name] = value
        for addr, value in record["mem"]:
            self.memory.write(int(addr), value)
        if record.get("frames") is not None:
            from repro.vm.thread import Frame
            thread.frames = [
                Frame(func=f["func"], call_addr=f["call_addr"],
                      return_addr=f["return_addr"], frame_id=f["frame_id"],
                      fp_at_entry=f["fp_at_entry"])
                for f in record["frames"]]
        thread.pc = int(record["end_pc"])
        self.skipped_exclusions += 1
        return True

    # -- single instruction ----------------------------------------------------------

    def _step_thread(self, thread: ThreadContext) -> bool:
        """Execute one instruction of ``thread``; False if it blocked."""
        pc = thread.pc
        if not 0 <= pc < len(self.instructions):
            raise VMError("pc out of range", tid=thread.tid, pc=pc)
        instr = self.instructions[pc]
        tracing = bool(self._instr_tools)
        reg_reads: Optional[List[Tuple[str, Word]]] = [] if tracing else None
        reg_writes: Optional[List[Tuple[str, Word]]] = [] if tracing else None
        mem_reads: Optional[List[Tuple[int, Word]]] = [] if tracing else None
        mem_writes: Optional[List[Tuple[int, Word]]] = [] if tracing else None
        self._cur_mem_writes = mem_writes
        # Frame id *before* execution: a call instruction belongs to the
        # caller's frame (the control-dependence tracker relies on this).
        frame_id = thread.frames[-1].frame_id if thread.frames else -1

        retired = self._execute(thread, instr, pc, reg_reads, reg_writes,
                                mem_reads, mem_writes)
        self._cur_mem_writes = None
        if not retired:
            return False
        if tracing:
            event = InstrEvent(
                seq=self.global_seq,
                tid=thread.tid,
                tindex=thread.instr_count,
                addr=pc,
                instr=instr,
                reg_reads=tuple(reg_reads),
                reg_writes=tuple(reg_writes),
                mem_reads=tuple(mem_reads),
                mem_writes=tuple(mem_writes),
                frame_id=frame_id,
            )
            for tool in self._instr_tools:
                tool.on_instr(event)
        thread.instr_count += 1
        return True

    def _step_thread_uop(self, thread: ThreadContext) -> bool:
        """Predecoded-engine step: one micro-op closure call per instruction.

        Untraced (no per-instruction tool attached): no def/use lists, no
        event object — the handler mutates machine/thread state directly.
        Traced: the handler appends def/use pairs in exactly the order the
        legacy interpreter would, and the resulting
        :class:`~repro.vm.hooks.InstrEvent` is indistinguishable from the
        seed engine's (the differential tests assert this).
        """
        pc = thread.pc
        if not 0 <= pc < self._code_len:
            raise VMError("pc out of range", tid=thread.tid, pc=pc)
        if not self._instr_tools:
            if self._uops_fast[pc](self, thread):
                thread.instr_count += 1
                return True
            return False
        reg_reads: List[Tuple[str, Word]] = []
        reg_writes: List[Tuple[str, Word]] = []
        mem_reads: List[Tuple[int, Word]] = []
        mem_writes: List[Tuple[int, Word]] = []
        self._cur_mem_writes = mem_writes
        frame_id = thread.frames[-1].frame_id if thread.frames else -1
        retired = self._uops_traced[pc](self, thread, reg_reads, reg_writes,
                                        mem_reads, mem_writes)
        self._cur_mem_writes = None
        if not retired:
            return False
        if self._event_reuse_ok:
            # All subscribed tools consume the event synchronously: reuse
            # one scratch event and pass the raw lists (same contents and
            # order as the tuples; tools only read them during on_instr).
            event = self._scratch_event
            if event is None:
                event = self._scratch_event = InstrEvent(
                    0, 0, 0, 0, None, (), (), (), (), -1)
            event.seq = self.global_seq
            event.tid = thread.tid
            event.tindex = thread.instr_count
            event.addr = pc
            event.instr = self.instructions[pc]
            event.reg_reads = reg_reads
            event.reg_writes = reg_writes
            event.mem_reads = mem_reads
            event.mem_writes = mem_writes
            event.frame_id = frame_id
        else:
            event = InstrEvent(
                seq=self.global_seq,
                tid=thread.tid,
                tindex=thread.instr_count,
                addr=pc,
                instr=self.instructions[pc],
                reg_reads=tuple(reg_reads),
                reg_writes=tuple(reg_writes),
                mem_reads=tuple(mem_reads),
                mem_writes=tuple(mem_writes),
                frame_id=frame_id,
            )
        for tool in self._instr_tools:
            tool.on_instr(event)
        thread.instr_count += 1
        return True

    def _step_thread_record(self, thread: ThreadContext) -> bool:
        """Fast-record step: untraced closures except where memory moves.

        Instructions that cannot touch memory run through the untraced
        fast closures exactly as a tool-free replay would; memory-capable
        instructions run their record micro-op, which deposits bare
        touched *addresses* (all the recorder's access-order edge
        detection needs) into two scratch lists reused across steps.
        """
        pc = thread.pc
        if not 0 <= pc < self._code_len:
            raise VMError("pc out of range", tid=thread.tid, pc=pc)
        if not self._rec_mem_pc[pc]:
            if self._uops_fast[pc](self, thread):
                thread.instr_count += 1
                return True
            return False
        mem_reads = self._rec_reads
        mem_writes = self._rec_writes
        retired = self._uops_rec[pc](self, thread, mem_reads, mem_writes)
        if not retired:
            if mem_reads or mem_writes:     # defensive: blocked syscall
                del mem_reads[:]
                del mem_writes[:]
            return False
        if mem_reads or mem_writes:
            self._recorder.on_mem(thread.tid, thread.instr_count,
                                  mem_reads, mem_writes, pc)
            del mem_reads[:]
            del mem_writes[:]
        thread.instr_count += 1
        return True

    # Operand evaluation helpers -----------------------------------------------------

    def _reg_read(self, thread, name, reg_reads) -> Word:
        value = thread.regs[name]
        if reg_reads is not None:
            reg_reads.append((name, value))
        return value

    def _reg_write(self, thread, name, value, reg_writes) -> None:
        thread.regs[name] = value
        if reg_writes is not None:
            reg_writes.append((name, value))

    def _src(self, thread, operand, reg_reads) -> Word:
        if isinstance(operand, Reg):
            return self._reg_read(thread, operand.name, reg_reads)
        if isinstance(operand, Imm):
            return operand.value
        raise VMError("bad source operand %r" % (operand,), tid=thread.tid)

    def _mem_addr(self, thread, operand: Mem, reg_reads) -> int:
        base = self._reg_read(thread, operand.base.name, reg_reads)
        return int(base) + operand.offset

    def _load(self, addr: int, mem_reads) -> Word:
        value = self.memory.read(addr)
        if mem_reads is not None:
            mem_reads.append((addr, value))
        return value

    def _store(self, addr: int, value: Word, mem_writes) -> None:
        self.memory.write(addr, value)
        if mem_writes is not None:
            mem_writes.append((addr, value))

    # The interpreter proper ------------------------------------------------------------

    def _execute(self, thread, instr, pc, reg_reads, reg_writes,
                 mem_reads, mem_writes) -> bool:
        op = instr.op
        ops = instr.operands

        if op == Opcode.MOV:
            value = self._src(thread, ops[1], reg_reads)
            self._reg_write(thread, ops[0].name, value, reg_writes)
            thread.pc = pc + 1
        elif op == Opcode.LD:
            addr = self._mem_addr(thread, ops[1], reg_reads)
            value = self._load(addr, mem_reads)
            self._reg_write(thread, ops[0].name, value, reg_writes)
            thread.pc = pc + 1
        elif op == Opcode.ST:
            addr = self._mem_addr(thread, ops[0], reg_reads)
            value = self._src(thread, ops[1], reg_reads)
            self._store(addr, value, mem_writes)
            thread.pc = pc + 1
        elif op == Opcode.LEA:
            target = ops[1]
            value = target.value if isinstance(target, Imm) else self._src(
                thread, target, reg_reads)
            self._reg_write(thread, ops[0].name, value, reg_writes)
            thread.pc = pc + 1
        elif op == Opcode.BINOP:
            a = self._src(thread, ops[1], reg_reads)
            b = self._src(thread, ops[2], reg_reads)
            value = _apply_binop(instr.subop, a, b, thread, pc)
            self._reg_write(thread, ops[0].name, value, reg_writes)
            thread.pc = pc + 1
        elif op == Opcode.UNOP:
            a = self._src(thread, ops[1], reg_reads)
            value = _apply_unop(instr.subop, a)
            self._reg_write(thread, ops[0].name, value, reg_writes)
            thread.pc = pc + 1
        elif op == Opcode.JMP:
            thread.pc = int(ops[0].value)
        elif op == Opcode.BR:
            cond = self._reg_read(thread, ops[0].name, reg_reads)
            thread.pc = int(ops[1].value) if cond != 0 else pc + 1
        elif op == Opcode.BRZ:
            cond = self._reg_read(thread, ops[0].name, reg_reads)
            thread.pc = int(ops[1].value) if cond == 0 else pc + 1
        elif op == Opcode.IJMP:
            target = int(self._reg_read(thread, ops[0].name, reg_reads))
            self._check_code_addr(target, thread)
            thread.pc = target
        elif op in (Opcode.CALL, Opcode.ICALL):
            if op == Opcode.CALL:
                target = int(ops[0].value)
            else:
                target = int(self._reg_read(thread, ops[0].name, reg_reads))
            self._check_code_addr(target, thread)
            sp = int(self._reg_read(thread, "sp", reg_reads)) - 1
            if sp <= thread.stack_limit:
                raise VMError("stack overflow", tid=thread.tid, pc=pc)
            self._store(sp, pc + 1, mem_writes)
            self._reg_write(thread, "sp", sp, reg_writes)
            function = self.program.function_at(target)
            thread.push_frame(function.name if function else "<anon>",
                              pc, pc + 1)
            thread.pc = target
        elif op == Opcode.RET:
            sp = int(self._reg_read(thread, "sp", reg_reads))
            ret_addr = int(self._load(sp, mem_reads))
            self._reg_write(thread, "sp", sp + 1, reg_writes)
            thread.pop_frame()
            if ret_addr == EXIT_SENTINEL:
                thread.pc = pc + 1
                self._finish_thread(thread)
            else:
                self._check_code_addr(ret_addr, thread)
                thread.pc = ret_addr
        elif op == Opcode.PUSH:
            value = self._src(thread, ops[0], reg_reads)
            sp = int(self._reg_read(thread, "sp", reg_reads)) - 1
            if sp <= thread.stack_limit:
                raise VMError("stack overflow", tid=thread.tid, pc=pc)
            self._store(sp, value, mem_writes)
            self._reg_write(thread, "sp", sp, reg_writes)
            thread.pc = pc + 1
        elif op == Opcode.POP:
            sp = int(self._reg_read(thread, "sp", reg_reads))
            value = self._load(sp, mem_reads)
            self._reg_write(thread, ops[0].name, value, reg_writes)
            self._reg_write(thread, "sp", sp + 1, reg_writes)
            thread.pc = pc + 1
        elif op == Opcode.SYS:
            return self._do_syscall(thread, instr, pc, reg_reads, reg_writes)
        elif op == Opcode.HALT:
            thread.pc = pc + 1
            self.request_exit(0)
        elif op == Opcode.NOP:
            thread.pc = pc + 1
        else:
            raise VMError("unimplemented opcode %r" % op,
                          tid=thread.tid, pc=pc)
        return True

    def _check_code_addr(self, target: int, thread) -> None:
        if not 0 <= target < len(self.instructions):
            raise VMError("control transfer to bad address %d" % target,
                          tid=thread.tid, pc=thread.pc)

    def _do_syscall(self, thread, instr, pc, reg_reads, reg_writes) -> bool:
        name = instr.subop
        handler = SYSCALLS.get(name)
        if handler is None:
            raise VMError("unknown syscall %r" % name,
                          tid=thread.tid, pc=pc)
        args = tuple(thread.regs["r%d" % i] for i in range(4))
        if reg_reads is not None:
            for index in range(4):
                reg_reads.append(("r%d" % index, args[index]))
        thread.pc = pc + 1

        injected = False
        if name in NONDET_SYSCALLS and self.syscall_injector is not None:
            result = self.syscall_injector(name, thread.tid)
            if result is not None:
                injected = True
            else:
                result = handler(self, thread)
        else:
            result = handler(self, thread)

        if result is BLOCK:
            thread.pc = pc           # retry when woken
            thread.status = ThreadStatus.BLOCKED
            self._runnable_cache = None
            return False
        if result is not None:
            self._reg_write(thread, "r0", result, reg_writes)
        if self._syscall_tools:
            event = SyscallEvent(
                seq=self.global_seq, tid=thread.tid,
                tindex=thread.instr_count, addr=pc, name=name,
                args=args, result=result, injected=injected)
            for tool in self._syscall_tools:
                tool.on_syscall(event)
        return True

    # -- snapshot / restore -----------------------------------------------------------

    def snapshot(self) -> MachineSnapshot:
        """Full architectural state, JSON-serializable."""
        return MachineSnapshot({
            "program": self.program.name,
            "memory": self.memory.snapshot(),
            "threads": [t.snapshot() for _, t in sorted(self.threads.items())],
            "locks": [[addr, owner] for addr, owner in sorted(self.locks.items())],
            "barriers": [
                [addr, state["gen"], sorted(state["waiting"]),
                 sorted(state["released"])]
                for addr, state in sorted(self.barriers.items())],
            "next_tid": self.next_tid,
            "rng_state": self.rng.state,
            "inputs": list(self.inputs),
            "input_pos": self.input_pos,
            "time_base": self._time_base,
            "last_clock": self._last_clock,
            "last_tid": self._last_tid,
        })

    @classmethod
    def from_snapshot(cls, program: Program, snap: MachineSnapshot,
                      scheduler: Optional[Scheduler] = None,
                      tools: Sequence[Tool] = (),
                      syscall_injector=None,
                      engine: Optional[str] = None) -> "Machine":
        payload = snap.to_dict()
        machine = cls(program, scheduler=scheduler, tools=tools,
                      syscall_injector=syscall_injector, start_main=False,
                      engine=engine)
        machine.memory = Memory.from_snapshot(payload["memory"])
        machine.threads = {}
        for tsnap in payload["threads"]:
            thread = ThreadContext.from_snapshot(tsnap)
            machine.threads[thread.tid] = thread
        machine._sleeping = {
            tid for tid, thread in machine.threads.items()
            if thread.status == ThreadStatus.BLOCKED and thread.block_reason
            and thread.block_reason[0] == "sleep"}
        machine._runnable_cache = None
        machine.locks = {
            int(addr): (int(owner) if owner is not None else None)
            for addr, owner in payload["locks"]}
        machine.barriers = {
            int(addr): {"gen": int(gen),
                        "waiting": {int(t) for t in waiting},
                        "released": {int(t) for t in released}}
            for addr, gen, waiting, released in payload.get("barriers", [])}
        machine.next_tid = payload["next_tid"]
        machine.rng.state = payload["rng_state"]
        machine.inputs = list(payload["inputs"])
        machine.input_pos = payload["input_pos"]
        machine._time_base = payload["time_base"]
        machine._last_clock = payload.get("last_clock", 0)
        machine._last_tid = payload.get("last_tid")
        return machine

    def reset_counters(self) -> None:
        """Zero region-relative counters (at the start of a logged region).

        Deliberately does NOT touch ``_last_tid``: the scheduler must
        continue seamlessly across the region boundary, or the recorded
        region would diverge from the same seed's uninterrupted run.
        Pending sleep deadlines are rebased to the new clock for the same
        reason.  Call this *before* snapshotting so the snapshot is
        consistent with a region-relative step clock.
        """
        elapsed = self.global_seq
        self.global_seq = 0
        for thread in self.threads.values():
            thread.instr_count = 0
            if (thread.status == ThreadStatus.BLOCKED and thread.block_reason
                    and thread.block_reason[0] == "sleep"):
                wake = max(0, thread.block_reason[1] - elapsed)
                thread.block_reason = ("sleep", wake)

    # -- debugger conveniences ----------------------------------------------------------

    def read_global(self, name: str) -> Word:
        var = self.program.globals.get(name)
        if var is None:
            raise VMError("unknown global %r" % name)
        return self.memory.read(var.addr)

    def read_local(self, tid: int, name: str) -> Word:
        thread = self.threads[tid]
        frame = thread.current_frame()
        if frame is None:
            raise VMError("thread %d has no frames" % tid)
        function = self.program.functions.get(frame.func)
        if function is None:
            raise VMError("unknown function %r" % (frame.func,))
        if name in function.reg_locals:
            return thread.regs[function.reg_locals[name]]
        if name in function.local_offsets:
            offset = function.local_offsets[name]
            return self.memory.read(int(thread.regs["fp"]) + offset)
        raise VMError("unknown local %r in %s" % (name, frame.func))


def _apply_binop(subop: str, a: Word, b: Word, thread, pc) -> Word:
    if subop == "add":
        return a + b
    if subop == "sub":
        return a - b
    if subop == "mul":
        return a * b
    if subop == "div":
        if b == 0:
            raise VMError("division by zero", tid=thread.tid, pc=pc)
        if isinstance(a, int) and isinstance(b, int):
            quotient = abs(a) // abs(b)
            return quotient if (a >= 0) == (b >= 0) else -quotient
        return a / b
    if subop == "mod":
        if b == 0:
            raise VMError("modulo by zero", tid=thread.tid, pc=pc)
        return int(a) - int(b) * (abs(int(a)) // abs(int(b))) * (
            1 if (a >= 0) == (b >= 0) else -1)
    if subop == "and":
        return int(a) & int(b)
    if subop == "or":
        return int(a) | int(b)
    if subop == "xor":
        return int(a) ^ int(b)
    if subop == "shl":
        return int(a) << int(b)
    if subop == "shr":
        return int(a) >> int(b)
    if subop == "eq":
        return int(a == b)
    if subop == "ne":
        return int(a != b)
    if subop == "lt":
        return int(a < b)
    if subop == "le":
        return int(a <= b)
    if subop == "gt":
        return int(a > b)
    if subop == "ge":
        return int(a >= b)
    raise VMError("unknown binop %r" % subop, tid=thread.tid, pc=pc)


def _apply_unop(subop: str, a: Word) -> Word:
    if subop == "neg":
        return -a
    if subop == "not":
        return int(not a)
    if subop == "int":
        return int(a)
    if subop == "float":
        return float(a)
    raise VMError("unknown unop %r" % subop)
