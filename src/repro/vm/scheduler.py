"""Thread schedulers: the VM's single biggest source of nondeterminism.

The machine asks the scheduler for a tid before every instruction, so the
interleaving is at single-instruction granularity — fine enough for any
data race to manifest.  Schedulers provided:

* :class:`RoundRobinScheduler` — deterministic quantum-based rotation.
* :class:`RandomScheduler` — seeded random preemption; different seeds give
  different interleavings, which is how tests shake out races.
* :class:`RecordedScheduler` — follows the run-length-encoded schedule from
  a pinball; this is what makes replay deterministic.
* :class:`PriorityScheduler` — strict priorities with dynamic updates; the
  Maple-style active scheduler uses it to force target interleavings.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.vm.errors import ReplayDivergence


class Scheduler:
    """Interface: pick the next thread to run one instruction."""

    def pick(self, runnable: Sequence[int], last: Optional[int]) -> int:
        """Return the tid to run next.

        ``runnable`` is the sorted list of runnable tids (never empty);
        ``last`` is the previously run tid (or None at start).  The machine
        may *discard* a pick (e.g. the chosen thread sits on a breakpoint),
        so replay-critical schedulers must only consume state in
        :meth:`commit`.
        """
        raise NotImplementedError

    def commit(self, tid: int) -> None:
        """The machine confirms ``tid`` actually took the step."""

    def attach(self, machine) -> None:
        """Called once by the machine that will use this scheduler.

        Schedulers that need to inspect thread state (e.g. the Maple-style
        active scheduler peeking at upcoming pcs) keep the reference."""

    def intended(self) -> Optional[int]:
        """The tid this scheduler will pick next, if predetermined.

        Only replay schedulers return a value.  The machine uses it to
        wake a sleeping thread the schedule is about to run: a recorded
        step implies the thread was awake at this point in the original
        run, and sleep deadlines measured in global steps shift when a
        slice pinball drops excluded steps."""
        return None

    def on_thread_created(self, tid: int) -> None:
        """Notification hook; schedulers may ignore it."""

    def on_thread_finished(self, tid: int) -> None:
        """Notification hook; schedulers may ignore it."""


class RoundRobinScheduler(Scheduler):
    """Run each thread for ``quantum`` instructions, then rotate."""

    def __init__(self, quantum: int = 50) -> None:
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.quantum = quantum
        self._remaining = quantum
        self._current: Optional[int] = None

    def pick(self, runnable: Sequence[int], last: Optional[int]) -> int:
        if (last is not None and last in runnable and last == self._current
                and self._remaining > 0):
            return last
        if last is None or last not in runnable:
            return runnable[0]
        # Rotate: next runnable tid greater than last, else wrap.
        for tid in runnable:
            if tid > last:
                return tid
        return runnable[0]

    def commit(self, tid: int) -> None:
        if tid == self._current:
            self._remaining -= 1
        else:
            self._current = tid
            self._remaining = self.quantum - 1


class RandomScheduler(Scheduler):
    """Seeded random preemption with probability ``switch_prob`` per step."""

    def __init__(self, seed: int = 0, switch_prob: float = 0.05) -> None:
        self._rng = random.Random(seed)
        self.switch_prob = switch_prob
        self.seed = seed

    def pick(self, runnable: Sequence[int], last: Optional[int]) -> int:
        if (last is not None and last in runnable
                and self._rng.random() >= self.switch_prob):
            return last
        return runnable[self._rng.randrange(len(runnable))]


class RecordedScheduler(Scheduler):
    """Replay a run-length-encoded schedule ``[(tid, count), ...]``.

    Raises :class:`ReplayDivergence` if the recorded tid is not runnable —
    which, for a well-formed pinball replayed on the same program, cannot
    happen (the property tests assert this).
    """

    def __init__(self, schedule: Sequence[Tuple[int, int]]) -> None:
        self._schedule: List[Tuple[int, int]] = [
            (int(tid), int(count)) for tid, count in schedule]
        self._index = 0
        # O(1) per-step state: the current run's tid and how many of its
        # steps remain.  pick/commit/intended are called (at least) once
        # per machine step, so they must not re-walk the RLE list.
        self._cur_tid: Optional[int] = None
        self._remaining = 0
        self._advance()

    def _advance(self) -> None:
        """Load the next non-empty run into the O(1) cursor."""
        schedule = self._schedule
        index = self._index
        while index < len(schedule):
            tid, count = schedule[index]
            if count > 0:
                self._index = index
                self._cur_tid = tid
                self._remaining = count
                return
            index += 1
        self._index = index
        self._cur_tid = None
        self._remaining = 0

    def pick(self, runnable: Sequence[int], last: Optional[int]) -> int:
        tid = self._cur_tid
        if tid is None:
            raise ReplayDivergence("recorded schedule exhausted")
        if tid not in runnable:
            raise ReplayDivergence(
                "recorded tid %d not runnable (runnable=%s)"
                % (tid, list(runnable)))
        return tid

    def commit(self, tid: int) -> None:
        if tid != self._cur_tid:
            raise ReplayDivergence(
                "commit of tid %d does not match schedule" % tid)
        self._remaining -= 1
        if self._remaining == 0:
            self._index += 1
            self._advance()

    def intended(self) -> Optional[int]:
        return self._cur_tid

    @property
    def exhausted(self) -> bool:
        return self._cur_tid is None


class PriorityScheduler(Scheduler):
    """Strict-priority scheduling with dynamically adjustable priorities.

    Higher number wins; ties broken by lower tid.  The Maple active
    scheduler manipulates priorities (and an optional per-step callback)
    to steer execution toward a predicted buggy interleaving.
    """

    def __init__(self, priorities: Optional[Dict[int, int]] = None,
                 before_pick: Optional[Callable[[Sequence[int]], None]] = None) -> None:
        self.priorities: Dict[int, int] = dict(priorities or {})
        self.before_pick = before_pick

    def set_priority(self, tid: int, priority: int) -> None:
        self.priorities[tid] = priority

    def pick(self, runnable: Sequence[int], last: Optional[int]) -> int:
        if self.before_pick is not None:
            self.before_pick(runnable)
        return max(runnable, key=lambda tid: (self.priorities.get(tid, 0), -tid))


class ScheduleRecorder:
    """Accumulates an RLE schedule ``[(tid, count), ...]`` as steps happen."""

    def __init__(self) -> None:
        self.runs: List[Tuple[int, int]] = []

    def record(self, tid: int) -> None:
        if self.runs and self.runs[-1][0] == tid:
            last_tid, count = self.runs[-1]
            self.runs[-1] = (last_tid, count + 1)
        else:
            self.runs.append((tid, 1))

    def total(self) -> int:
        return sum(count for _, count in self.runs)
