"""Predecoded micro-op execution engine.

At :class:`~repro.vm.machine.Machine` construction the program's flat
instruction list is compiled — once per :class:`~repro.isa.program.Program`,
cached on the program object — into two parallel handler tables:

* ``fast[pc](machine, thread) -> bool`` — the *untraced* path.  Operands,
  immediates, jump targets, register names and callee functions are
  resolved at decode time, so executing an instruction is one closure call
  with no opcode dispatch, no ``isinstance`` tests on operands, and no
  def/use list plumbing at all.  This is the path replay takes whenever no
  per-instruction tool is attached (the analog of Pin-only speed).
* ``traced[pc](machine, thread, rr, rw, mr, mw) -> bool`` — the *traced*
  path.  Same pre-resolved semantics, but every register read/write and
  memory read/write is appended to the supplied lists in exactly the order
  the seed interpreter (:meth:`Machine._execute`) produced them, so
  :class:`~repro.vm.hooks.InstrEvent` streams are bit-for-bit identical
  between engines (the differential tests assert this).
* ``rec[pc](machine, thread, mr, mw) -> bool`` — the *record* path,
  present only for opcodes in :data:`MEM_OPCODES` (``None`` elsewhere).
  The fast recorder needs just the memory *addresses* an instruction
  touched (access-order edges carry no values), so these closures run at
  untraced speed plus one bare-``int`` append per access: no tuples, no
  register def/use plumbing.  Opcodes without a dedicated record shape
  (SYS, fallbacks) wrap their traced closure and strip the addresses out.
* ``sel[pc](machine, thread) -> bool`` — the *selective* path
  (:func:`decode_selective`), the re-execution slicer's fourth table
  variant.  Unlike the three tables above it is bound to a *sink* object
  rather than cached on the program: only the event classes the sink
  watches pay any per-step cost, everything else executes through the
  untraced closure unchanged.  Two sink modes exist — ``"flow"``
  (per-retire pc stream plus the few execution-time facts offline
  analysis cannot recover: branch region ends, indirect-jump targets,
  syscall result presence, save/restore stack traffic) and ``"mem"``
  (memory addresses only, for replaying a bounded window of the region
  on demand).

All handlers return True iff the instruction retired (False: a syscall
blocked and will be retried).  Instructions the decoder does not recognize
fall back to a closure that delegates to the machine's legacy
``_execute`` — decoding never changes observable behavior, including the
error behavior of malformed operand combinations.

The handler tables are keyed by the *identity* of ``program.instructions``
so a relinked or mutated program is transparently re-decoded.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.isa.instructions import Instr, Mem, Opcode
from repro.vm.errors import VMError
from repro.vm.thread import EXIT_SENTINEL

FastHandler = Callable[..., bool]
TracedHandler = Callable[..., bool]
RecordHandler = Callable[..., bool]

_CACHE_ATTR = "_microop_tables"

#: Opcodes whose handlers can touch memory.  SYS is included because
#: ``spawn`` writes the child's argument slot through
#: ``Machine._cur_mem_writes`` (see create_thread).  Only these pcs get
#: a record handler; the fast record path runs everything else untraced.
MEM_OPCODES = frozenset((
    Opcode.LD, Opcode.ST, Opcode.PUSH, Opcode.POP,
    Opcode.CALL, Opcode.ICALL, Opcode.RET, Opcode.SYS,
))

#: Opcodes whose handlers can *write* memory (LD/POP/RET only read it;
#: POP and RET write registers).  The flow-mode selective table reports
#: these pcs' written addresses through ``sink.on_wset`` so a scaffold
#: pass can collect the region's written-address set.  SYS is handled
#: separately (its write arrives via ``Machine._cur_mem_writes``).
_WRITING_MEM_OPCODES = frozenset((
    Opcode.ST, Opcode.PUSH, Opcode.CALL, Opcode.ICALL,
))


def decode_program(program) -> Tuple[List[FastHandler], List[TracedHandler],
                                     List[Optional[RecordHandler]]]:
    """Return (and cache on ``program``) the fast/traced/record tables."""
    cached = getattr(program, _CACHE_ATTR, None)
    if cached is not None and cached[0] is program.instructions:
        return cached[1], cached[2], cached[3]
    instructions = program.instructions
    code_len = len(instructions)
    fast_table: List[FastHandler] = []
    traced_table: List[TracedHandler] = []
    rec_table: List[Optional[RecordHandler]] = []
    for pc, instr in enumerate(instructions):
        try:
            fast, traced = _decode_instr(program, instr, pc, code_len)
        except Exception:
            # Unknown shape: preserve the seed interpreter's behavior
            # (including its runtime errors) by delegating per execution.
            fast, traced = _make_fallback(instr, pc)
        fast_table.append(fast)
        traced_table.append(traced)
        rec_table.append(_record_handler(program, instr, pc, code_len,
                                         traced))
    try:
        setattr(program, _CACHE_ATTR,
                (instructions, fast_table, traced_table, rec_table))
    except AttributeError:
        pass   # exotic program object without a __dict__; just don't cache
    return fast_table, traced_table, rec_table


def _make_fallback(instr: Instr, pc: int):
    def fast(machine, thread) -> bool:
        return machine._execute(thread, instr, pc, None, None, None, None)

    def traced(machine, thread, rr, rw, mr, mw) -> bool:
        return machine._execute(thread, instr, pc, rr, rw, mr, mw)

    return fast, traced


# -- arithmetic micro-op kernels ---------------------------------------------
#
# Shared 2-arg kernels for the subops whose semantics need no error context;
# div/mod get dedicated closures because they raise VMError with tid/pc.

def _k_add(a, b):
    return a + b


def _k_sub(a, b):
    return a - b


def _k_mul(a, b):
    return a * b


def _k_and(a, b):
    return int(a) & int(b)


def _k_or(a, b):
    return int(a) | int(b)


def _k_xor(a, b):
    return int(a) ^ int(b)


def _k_shl(a, b):
    return int(a) << int(b)


def _k_shr(a, b):
    return int(a) >> int(b)


def _k_eq(a, b):
    return int(a == b)


def _k_ne(a, b):
    return int(a != b)


def _k_lt(a, b):
    return int(a < b)


def _k_le(a, b):
    return int(a <= b)


def _k_gt(a, b):
    return int(a > b)


def _k_ge(a, b):
    return int(a >= b)


_SIMPLE_BINOPS = {
    "add": _k_add, "sub": _k_sub, "mul": _k_mul,
    "and": _k_and, "or": _k_or, "xor": _k_xor,
    "shl": _k_shl, "shr": _k_shr,
    "eq": _k_eq, "ne": _k_ne, "lt": _k_lt, "le": _k_le,
    "gt": _k_gt, "ge": _k_ge,
}


def _make_div_kernel(pc: int):
    def div(a, b, thread):
        if b == 0:
            raise VMError("division by zero", tid=thread.tid, pc=pc)
        if isinstance(a, int) and isinstance(b, int):
            quotient = abs(a) // abs(b)
            return quotient if (a >= 0) == (b >= 0) else -quotient
        return a / b
    return div


def _make_mod_kernel(pc: int):
    def mod(a, b, thread):
        if b == 0:
            raise VMError("modulo by zero", tid=thread.tid, pc=pc)
        return int(a) - int(b) * (abs(int(a)) // abs(int(b))) * (
            1 if (a >= 0) == (b >= 0) else -1)
    return mod


def _k_neg(a):
    return -a


def _k_not(a):
    return int(not a)


def _k_int(a):
    return int(a)


def _k_float(a):
    return float(a)


_UNOPS = {"neg": _k_neg, "not": _k_not, "int": _k_int, "float": _k_float}


# -- the decoder -------------------------------------------------------------

def _decode_instr(program, instr: Instr, pc: int, code_len: int):
    op = instr.op
    ops = instr.operands
    kinds = instr.operand_kinds()
    next_pc = pc + 1

    if op == Opcode.MOV or op == Opcode.LEA:
        # After linking, a LEA's label operand is an Imm address — both
        # opcodes reduce to an immediate-load or register-copy shape.
        if kinds == "ri":
            return _decode_mov_imm(ops[0].name, ops[1].value, next_pc)
        if kinds == "rr":
            return _decode_mov_reg(ops[0].name, ops[1].name, next_pc)
        raise ValueError("undecodable %s shape %r" % (op, kinds))
    if op == Opcode.LD:
        return _decode_ld(ops[0].name, ops[1], next_pc)
    if op == Opcode.ST:
        return _decode_st(ops[0], ops[1], kinds, next_pc)
    if op == Opcode.BINOP:
        return _decode_binop(instr.subop, ops[0].name, ops[1], ops[2],
                             kinds, pc, next_pc)
    if op == Opcode.UNOP:
        return _decode_unop(instr.subop, ops[0].name, ops[1], kinds,
                            next_pc)
    if op == Opcode.JMP:
        return _decode_jmp(int(ops[0].value))
    if op == Opcode.BR:
        return _decode_br(ops[0].name, int(ops[1].value), next_pc, False)
    if op == Opcode.BRZ:
        return _decode_br(ops[0].name, int(ops[1].value), next_pc, True)
    if op == Opcode.IJMP:
        return _decode_ijmp(ops[0].name, code_len)
    if op == Opcode.CALL:
        return _decode_call(program, int(ops[0].value), pc, code_len)
    if op == Opcode.ICALL:
        return _decode_icall(program, ops[0].name, pc, code_len)
    if op == Opcode.RET:
        return _decode_ret(next_pc, code_len)
    if op == Opcode.PUSH:
        return _decode_push(ops[0], kinds, pc, next_pc)
    if op == Opcode.POP:
        return _decode_pop(ops[0].name, next_pc)
    if op == Opcode.SYS:
        return _decode_sys(instr, pc)
    if op == Opcode.HALT:
        return _decode_halt(next_pc)
    if op == Opcode.NOP:
        return _decode_nop(next_pc)
    raise ValueError("undecodable opcode %r" % (op,))


# MOV / LEA ------------------------------------------------------------------

def _decode_mov_imm(rd: str, value, next_pc: int):
    def fast(machine, thread) -> bool:
        thread.regs[rd] = value
        thread.pc = next_pc
        return True

    def traced(machine, thread, rr, rw, mr, mw) -> bool:
        thread.regs[rd] = value
        rw.append((rd, value))
        thread.pc = next_pc
        return True

    return fast, traced


def _decode_mov_reg(rd: str, rs: str, next_pc: int):
    def fast(machine, thread) -> bool:
        regs = thread.regs
        regs[rd] = regs[rs]
        thread.pc = next_pc
        return True

    def traced(machine, thread, rr, rw, mr, mw) -> bool:
        regs = thread.regs
        value = regs[rs]
        rr.append((rs, value))
        regs[rd] = value
        rw.append((rd, value))
        thread.pc = next_pc
        return True

    return fast, traced


# LD / ST --------------------------------------------------------------------

def _decode_ld(rd: str, mem: Mem, next_pc: int):
    rb = mem.base.name
    offset = mem.offset

    def fast(machine, thread) -> bool:
        regs = thread.regs
        value = machine.memory.read(int(regs[rb]) + offset)
        regs[rd] = value
        thread.pc = next_pc
        return True

    def traced(machine, thread, rr, rw, mr, mw) -> bool:
        regs = thread.regs
        base = regs[rb]
        rr.append((rb, base))
        addr = int(base) + offset
        value = machine.memory.read(addr)
        mr.append((addr, value))
        regs[rd] = value
        rw.append((rd, value))
        thread.pc = next_pc
        return True

    return fast, traced


def _decode_st(mem: Mem, src, kinds: str, next_pc: int):
    rb = mem.base.name
    offset = mem.offset
    if kinds == "mi":
        value = src.value

        def fast(machine, thread) -> bool:
            machine.memory.write(int(thread.regs[rb]) + offset, value)
            thread.pc = next_pc
            return True

        def traced(machine, thread, rr, rw, mr, mw) -> bool:
            base = thread.regs[rb]
            rr.append((rb, base))
            addr = int(base) + offset
            machine.memory.write(addr, value)
            mw.append((addr, value))
            thread.pc = next_pc
            return True

        return fast, traced
    if kinds == "mr":
        rs = src.name

        def fast(machine, thread) -> bool:
            regs = thread.regs
            machine.memory.write(int(regs[rb]) + offset, regs[rs])
            thread.pc = next_pc
            return True

        def traced(machine, thread, rr, rw, mr, mw) -> bool:
            regs = thread.regs
            base = regs[rb]
            rr.append((rb, base))
            value = regs[rs]
            rr.append((rs, value))
            addr = int(base) + offset
            machine.memory.write(addr, value)
            mw.append((addr, value))
            thread.pc = next_pc
            return True

        return fast, traced
    raise ValueError("undecodable st shape %r" % (kinds,))


# BINOP / UNOP ---------------------------------------------------------------

def _decode_binop(subop, rd: str, a, b, kinds: str, pc: int, next_pc: int):
    if kinds not in ("rrr", "rri", "rir", "rii"):
        raise ValueError("undecodable binop shape %r" % (kinds,))
    a_reg = kinds[1] == "r"
    b_reg = kinds[2] == "r"

    kernel = _SIMPLE_BINOPS.get(subop)
    if kernel is None:
        if subop == "div":
            kernel3 = _make_div_kernel(pc)
        elif subop == "mod":
            kernel3 = _make_mod_kernel(pc)
        else:
            raise ValueError("undecodable binop subop %r" % (subop,))
        return _decode_binop3(kernel3, rd, a, b, a_reg, b_reg, next_pc)

    if a_reg and b_reg:
        ra, rb = a.name, b.name

        def fast(machine, thread) -> bool:
            regs = thread.regs
            regs[rd] = kernel(regs[ra], regs[rb])
            thread.pc = next_pc
            return True

        def traced(machine, thread, rr, rw, mr, mw) -> bool:
            regs = thread.regs
            va = regs[ra]
            rr.append((ra, va))
            vb = regs[rb]
            rr.append((rb, vb))
            value = kernel(va, vb)
            regs[rd] = value
            rw.append((rd, value))
            thread.pc = next_pc
            return True

        return fast, traced
    if a_reg:
        ra, vb = a.name, b.value

        def fast(machine, thread) -> bool:
            regs = thread.regs
            regs[rd] = kernel(regs[ra], vb)
            thread.pc = next_pc
            return True

        def traced(machine, thread, rr, rw, mr, mw) -> bool:
            regs = thread.regs
            va = regs[ra]
            rr.append((ra, va))
            value = kernel(va, vb)
            regs[rd] = value
            rw.append((rd, value))
            thread.pc = next_pc
            return True

        return fast, traced
    if b_reg:
        va, rb = a.value, b.name

        def fast(machine, thread) -> bool:
            regs = thread.regs
            regs[rd] = kernel(va, regs[rb])
            thread.pc = next_pc
            return True

        def traced(machine, thread, rr, rw, mr, mw) -> bool:
            regs = thread.regs
            vb = regs[rb]
            rr.append((rb, vb))
            value = kernel(va, vb)
            regs[rd] = value
            rw.append((rd, value))
            thread.pc = next_pc
            return True

        return fast, traced
    # Both immediates: constant-fold when the kernel cannot raise on these
    # inputs; otherwise evaluate at runtime (preserves seed error behavior).
    try:
        folded = kernel(a.value, b.value)
    except Exception:
        va, vb = a.value, b.value

        def fast(machine, thread) -> bool:
            thread.regs[rd] = kernel(va, vb)
            thread.pc = next_pc
            return True

        def traced(machine, thread, rr, rw, mr, mw) -> bool:
            value = kernel(va, vb)
            thread.regs[rd] = value
            rw.append((rd, value))
            thread.pc = next_pc
            return True

        return fast, traced
    return _decode_mov_imm(rd, folded, next_pc)


def _decode_binop3(kernel3, rd: str, a, b, a_reg: bool, b_reg: bool,
                   next_pc: int):
    """div/mod: the kernel needs the thread for VMError context."""
    if a_reg and b_reg:
        ra, rb = a.name, b.name

        def fast(machine, thread) -> bool:
            regs = thread.regs
            regs[rd] = kernel3(regs[ra], regs[rb], thread)
            thread.pc = next_pc
            return True

        def traced(machine, thread, rr, rw, mr, mw) -> bool:
            regs = thread.regs
            va = regs[ra]
            rr.append((ra, va))
            vb = regs[rb]
            rr.append((rb, vb))
            value = kernel3(va, vb, thread)
            regs[rd] = value
            rw.append((rd, value))
            thread.pc = next_pc
            return True

        return fast, traced
    if a_reg:
        ra, vb = a.name, b.value

        def fast(machine, thread) -> bool:
            regs = thread.regs
            regs[rd] = kernel3(regs[ra], vb, thread)
            thread.pc = next_pc
            return True

        def traced(machine, thread, rr, rw, mr, mw) -> bool:
            regs = thread.regs
            va = regs[ra]
            rr.append((ra, va))
            value = kernel3(va, vb, thread)
            regs[rd] = value
            rw.append((rd, value))
            thread.pc = next_pc
            return True

        return fast, traced
    if b_reg:
        va, rb = a.value, b.name

        def fast(machine, thread) -> bool:
            regs = thread.regs
            regs[rd] = kernel3(va, regs[rb], thread)
            thread.pc = next_pc
            return True

        def traced(machine, thread, rr, rw, mr, mw) -> bool:
            regs = thread.regs
            vb = regs[rb]
            rr.append((rb, vb))
            value = kernel3(va, vb, thread)
            regs[rd] = value
            rw.append((rd, value))
            thread.pc = next_pc
            return True

        return fast, traced
    va, vb = a.value, b.value

    def fast(machine, thread) -> bool:
        thread.regs[rd] = kernel3(va, vb, thread)
        thread.pc = next_pc
        return True

    def traced(machine, thread, rr, rw, mr, mw) -> bool:
        value = kernel3(va, vb, thread)
        thread.regs[rd] = value
        rw.append((rd, value))
        thread.pc = next_pc
        return True

    return fast, traced


def _decode_unop(subop, rd: str, a, kinds: str, next_pc: int):
    kernel = _UNOPS.get(subop)
    if kernel is None:
        raise ValueError("undecodable unop subop %r" % (subop,))
    if kinds == "rr":
        ra = a.name

        def fast(machine, thread) -> bool:
            regs = thread.regs
            regs[rd] = kernel(regs[ra])
            thread.pc = next_pc
            return True

        def traced(machine, thread, rr, rw, mr, mw) -> bool:
            regs = thread.regs
            va = regs[ra]
            rr.append((ra, va))
            value = kernel(va)
            regs[rd] = value
            rw.append((rd, value))
            thread.pc = next_pc
            return True

        return fast, traced
    if kinds == "ri":
        try:
            folded = kernel(a.value)
        except Exception:
            va = a.value

            def fast(machine, thread) -> bool:
                thread.regs[rd] = kernel(va)
                thread.pc = next_pc
                return True

            def traced(machine, thread, rr, rw, mr, mw) -> bool:
                value = kernel(va)
                thread.regs[rd] = value
                rw.append((rd, value))
                thread.pc = next_pc
                return True

            return fast, traced
        return _decode_mov_imm(rd, folded, next_pc)
    raise ValueError("undecodable unop shape %r" % (kinds,))


# Control transfer -----------------------------------------------------------

def _decode_jmp(target: int):
    def fast(machine, thread) -> bool:
        thread.pc = target
        return True

    def traced(machine, thread, rr, rw, mr, mw) -> bool:
        thread.pc = target
        return True

    return fast, traced


def _decode_br(rc: str, target: int, next_pc: int, branch_if_zero: bool):
    if branch_if_zero:
        def fast(machine, thread) -> bool:
            thread.pc = target if thread.regs[rc] == 0 else next_pc
            return True

        def traced(machine, thread, rr, rw, mr, mw) -> bool:
            cond = thread.regs[rc]
            rr.append((rc, cond))
            thread.pc = target if cond == 0 else next_pc
            return True
    else:
        def fast(machine, thread) -> bool:
            thread.pc = target if thread.regs[rc] != 0 else next_pc
            return True

        def traced(machine, thread, rr, rw, mr, mw) -> bool:
            cond = thread.regs[rc]
            rr.append((rc, cond))
            thread.pc = target if cond != 0 else next_pc
            return True

    return fast, traced


def _decode_ijmp(rt: str, code_len: int):
    def fast(machine, thread) -> bool:
        target = int(thread.regs[rt])
        if not 0 <= target < code_len:
            raise VMError("control transfer to bad address %d" % target,
                          tid=thread.tid, pc=thread.pc)
        thread.pc = target
        return True

    def traced(machine, thread, rr, rw, mr, mw) -> bool:
        value = thread.regs[rt]
        rr.append((rt, value))
        target = int(value)
        if not 0 <= target < code_len:
            raise VMError("control transfer to bad address %d" % target,
                          tid=thread.tid, pc=thread.pc)
        thread.pc = target
        return True

    return fast, traced


def _decode_call(program, target: int, pc: int, code_len: int):
    ret_pc = pc + 1
    target_ok = 0 <= target < code_len
    if target_ok:
        function = program.function_at(target)
        func_name = function.name if function else "<anon>"
    else:
        func_name = "<anon>"

    def fast(machine, thread) -> bool:
        if not target_ok:
            raise VMError("control transfer to bad address %d" % target,
                          tid=thread.tid, pc=thread.pc)
        regs = thread.regs
        sp = int(regs["sp"]) - 1
        if sp <= thread.stack_limit:
            raise VMError("stack overflow", tid=thread.tid, pc=pc)
        machine.memory.write(sp, ret_pc)
        regs["sp"] = sp
        thread.push_frame(func_name, pc, ret_pc)
        thread.pc = target
        return True

    def traced(machine, thread, rr, rw, mr, mw) -> bool:
        if not target_ok:
            raise VMError("control transfer to bad address %d" % target,
                          tid=thread.tid, pc=thread.pc)
        regs = thread.regs
        sp0 = regs["sp"]
        rr.append(("sp", sp0))
        sp = int(sp0) - 1
        if sp <= thread.stack_limit:
            raise VMError("stack overflow", tid=thread.tid, pc=pc)
        machine.memory.write(sp, ret_pc)
        mw.append((sp, ret_pc))
        regs["sp"] = sp
        rw.append(("sp", sp))
        thread.push_frame(func_name, pc, ret_pc)
        thread.pc = target
        return True

    return fast, traced


def _decode_icall(program, rt: str, pc: int, code_len: int):
    ret_pc = pc + 1
    function_at = program.function_at

    def fast(machine, thread) -> bool:
        regs = thread.regs
        target = int(regs[rt])
        if not 0 <= target < code_len:
            raise VMError("control transfer to bad address %d" % target,
                          tid=thread.tid, pc=thread.pc)
        sp = int(regs["sp"]) - 1
        if sp <= thread.stack_limit:
            raise VMError("stack overflow", tid=thread.tid, pc=pc)
        machine.memory.write(sp, ret_pc)
        regs["sp"] = sp
        function = function_at(target)
        thread.push_frame(function.name if function else "<anon>",
                          pc, ret_pc)
        thread.pc = target
        return True

    def traced(machine, thread, rr, rw, mr, mw) -> bool:
        regs = thread.regs
        value = regs[rt]
        rr.append((rt, value))
        target = int(value)
        if not 0 <= target < code_len:
            raise VMError("control transfer to bad address %d" % target,
                          tid=thread.tid, pc=thread.pc)
        sp0 = regs["sp"]
        rr.append(("sp", sp0))
        sp = int(sp0) - 1
        if sp <= thread.stack_limit:
            raise VMError("stack overflow", tid=thread.tid, pc=pc)
        machine.memory.write(sp, ret_pc)
        mw.append((sp, ret_pc))
        regs["sp"] = sp
        rw.append(("sp", sp))
        function = function_at(target)
        thread.push_frame(function.name if function else "<anon>",
                          pc, ret_pc)
        thread.pc = target
        return True

    return fast, traced


def _decode_ret(next_pc: int, code_len: int):
    def fast(machine, thread) -> bool:
        regs = thread.regs
        sp = int(regs["sp"])
        ret_addr = int(machine.memory.read(sp))
        regs["sp"] = sp + 1
        thread.pop_frame()
        if ret_addr == EXIT_SENTINEL:
            thread.pc = next_pc
            machine._finish_thread(thread)
        else:
            if not 0 <= ret_addr < code_len:
                raise VMError(
                    "control transfer to bad address %d" % ret_addr,
                    tid=thread.tid, pc=thread.pc)
            thread.pc = ret_addr
        return True

    def traced(machine, thread, rr, rw, mr, mw) -> bool:
        regs = thread.regs
        sp0 = regs["sp"]
        rr.append(("sp", sp0))
        sp = int(sp0)
        raw = machine.memory.read(sp)
        mr.append((sp, raw))
        ret_addr = int(raw)
        regs["sp"] = sp + 1
        rw.append(("sp", sp + 1))
        thread.pop_frame()
        if ret_addr == EXIT_SENTINEL:
            thread.pc = next_pc
            machine._finish_thread(thread)
        else:
            if not 0 <= ret_addr < code_len:
                raise VMError(
                    "control transfer to bad address %d" % ret_addr,
                    tid=thread.tid, pc=thread.pc)
            thread.pc = ret_addr
        return True

    return fast, traced


# Stack ----------------------------------------------------------------------

def _decode_push(src, kinds: str, pc: int, next_pc: int):
    if kinds == "i":
        value = src.value

        def fast(machine, thread) -> bool:
            regs = thread.regs
            sp = int(regs["sp"]) - 1
            if sp <= thread.stack_limit:
                raise VMError("stack overflow", tid=thread.tid, pc=pc)
            machine.memory.write(sp, value)
            regs["sp"] = sp
            thread.pc = next_pc
            return True

        def traced(machine, thread, rr, rw, mr, mw) -> bool:
            regs = thread.regs
            sp0 = regs["sp"]
            rr.append(("sp", sp0))
            sp = int(sp0) - 1
            if sp <= thread.stack_limit:
                raise VMError("stack overflow", tid=thread.tid, pc=pc)
            machine.memory.write(sp, value)
            mw.append((sp, value))
            regs["sp"] = sp
            rw.append(("sp", sp))
            thread.pc = next_pc
            return True

        return fast, traced
    if kinds == "r":
        rs = src.name

        def fast(machine, thread) -> bool:
            regs = thread.regs
            value = regs[rs]
            sp = int(regs["sp"]) - 1
            if sp <= thread.stack_limit:
                raise VMError("stack overflow", tid=thread.tid, pc=pc)
            machine.memory.write(sp, value)
            regs["sp"] = sp
            thread.pc = next_pc
            return True

        def traced(machine, thread, rr, rw, mr, mw) -> bool:
            regs = thread.regs
            value = regs[rs]
            rr.append((rs, value))
            sp0 = regs["sp"]
            rr.append(("sp", sp0))
            sp = int(sp0) - 1
            if sp <= thread.stack_limit:
                raise VMError("stack overflow", tid=thread.tid, pc=pc)
            machine.memory.write(sp, value)
            mw.append((sp, value))
            regs["sp"] = sp
            rw.append(("sp", sp))
            thread.pc = next_pc
            return True

        return fast, traced
    raise ValueError("undecodable push shape %r" % (kinds,))


def _decode_pop(rd: str, next_pc: int):
    def fast(machine, thread) -> bool:
        regs = thread.regs
        sp = int(regs["sp"])
        regs[rd] = machine.memory.read(sp)
        regs["sp"] = sp + 1
        thread.pc = next_pc
        return True

    def traced(machine, thread, rr, rw, mr, mw) -> bool:
        regs = thread.regs
        sp0 = regs["sp"]
        rr.append(("sp", sp0))
        sp = int(sp0)
        value = machine.memory.read(sp)
        mr.append((sp, value))
        regs[rd] = value
        rw.append((rd, value))
        regs["sp"] = sp + 1
        rw.append(("sp", sp + 1))
        thread.pc = next_pc
        return True

    return fast, traced


# SYS / HALT / NOP -----------------------------------------------------------

def _decode_sys(instr: Instr, pc: int):
    def fast(machine, thread) -> bool:
        return machine._do_syscall(thread, instr, pc, None, None)

    def traced(machine, thread, rr, rw, mr, mw) -> bool:
        return machine._do_syscall(thread, instr, pc, rr, rw)

    return fast, traced


def _decode_halt(next_pc: int):
    def fast(machine, thread) -> bool:
        thread.pc = next_pc
        machine.request_exit(0)
        return True

    def traced(machine, thread, rr, rw, mr, mw) -> bool:
        thread.pc = next_pc
        machine.request_exit(0)
        return True

    return fast, traced


def _decode_nop(next_pc: int):
    def fast(machine, thread) -> bool:
        thread.pc = next_pc
        return True

    def traced(machine, thread, rr, rw, mr, mw) -> bool:
        thread.pc = next_pc
        return True

    return fast, traced


# -- record handlers ----------------------------------------------------------
#
# The fast record path (Machine._step_thread_record) only needs the memory
# addresses an instruction touched, in access order — the recorder's edge
# detection never looks at values.  Each handler is the untraced closure
# plus a bare-int append; anything without a dedicated shape below wraps
# its traced closure and strips the addresses out afterwards.

def _record_handler(program, instr: Instr, pc: int, code_len: int,
                    traced) -> Optional[RecordHandler]:
    if instr.op not in MEM_OPCODES:
        return None
    try:
        ops = instr.operands
        kinds = instr.operand_kinds()
        next_pc = pc + 1
        if instr.op == Opcode.LD:
            return _rec_ld(ops[0].name, ops[1], next_pc)
        if instr.op == Opcode.ST:
            return _rec_st(ops[0], ops[1], kinds, next_pc)
        if instr.op == Opcode.PUSH:
            return _rec_push(ops[0], kinds, pc, next_pc)
        if instr.op == Opcode.POP:
            return _rec_pop(ops[0].name, next_pc)
        if instr.op == Opcode.CALL:
            return _rec_call(program, int(ops[0].value), pc, code_len)
        if instr.op == Opcode.ICALL:
            return _rec_icall(program, ops[0].name, pc, code_len)
        if instr.op == Opcode.RET:
            return _rec_ret(next_pc, code_len)
    except Exception:
        pass    # undecodable shape: the traced wrapper preserves behavior
    return _rec_from_traced(traced)


def _rec_from_traced(traced) -> RecordHandler:
    """Record handler for SYS and fallback shapes: run the traced closure
    against throwaway lists (plus ``_cur_mem_writes``, where ``spawn``
    deposits the child's argument-slot write) and keep only addresses."""
    def rec(machine, thread, mr, mw) -> bool:
        rr: list = []
        rw: list = []
        tmr: list = []
        tmw: list = []
        machine._cur_mem_writes = tmw
        retired = traced(machine, thread, rr, rw, tmr, tmw)
        machine._cur_mem_writes = None
        if retired:
            for addr, _value in tmr:
                mr.append(addr)
            for addr, _value in tmw:
                mw.append(addr)
        return retired
    return rec


def _rec_ld(rd: str, mem: Mem, next_pc: int) -> RecordHandler:
    rb = mem.base.name
    offset = mem.offset

    def rec(machine, thread, mr, mw) -> bool:
        regs = thread.regs
        addr = int(regs[rb]) + offset
        regs[rd] = machine.memory.read(addr)
        mr.append(addr)
        thread.pc = next_pc
        return True

    return rec


def _rec_st(mem: Mem, src, kinds: str, next_pc: int) -> RecordHandler:
    rb = mem.base.name
    offset = mem.offset
    if kinds == "mi":
        value = src.value

        def rec(machine, thread, mr, mw) -> bool:
            addr = int(thread.regs[rb]) + offset
            machine.memory.write(addr, value)
            mw.append(addr)
            thread.pc = next_pc
            return True

        return rec
    if kinds == "mr":
        rs = src.name

        def rec(machine, thread, mr, mw) -> bool:
            regs = thread.regs
            addr = int(regs[rb]) + offset
            machine.memory.write(addr, regs[rs])
            mw.append(addr)
            thread.pc = next_pc
            return True

        return rec
    raise ValueError("undecodable st shape %r" % (kinds,))


def _rec_push(src, kinds: str, pc: int, next_pc: int) -> RecordHandler:
    if kinds == "i":
        value = src.value

        def rec(machine, thread, mr, mw) -> bool:
            regs = thread.regs
            sp = int(regs["sp"]) - 1
            if sp <= thread.stack_limit:
                raise VMError("stack overflow", tid=thread.tid, pc=pc)
            machine.memory.write(sp, value)
            mw.append(sp)
            regs["sp"] = sp
            thread.pc = next_pc
            return True

        return rec
    if kinds == "r":
        rs = src.name

        def rec(machine, thread, mr, mw) -> bool:
            regs = thread.regs
            value = regs[rs]
            sp = int(regs["sp"]) - 1
            if sp <= thread.stack_limit:
                raise VMError("stack overflow", tid=thread.tid, pc=pc)
            machine.memory.write(sp, value)
            mw.append(sp)
            regs["sp"] = sp
            thread.pc = next_pc
            return True

        return rec
    raise ValueError("undecodable push shape %r" % (kinds,))


def _rec_pop(rd: str, next_pc: int) -> RecordHandler:
    def rec(machine, thread, mr, mw) -> bool:
        regs = thread.regs
        sp = int(regs["sp"])
        regs[rd] = machine.memory.read(sp)
        mr.append(sp)
        regs["sp"] = sp + 1
        thread.pc = next_pc
        return True

    return rec


def _rec_call(program, target: int, pc: int, code_len: int) -> RecordHandler:
    ret_pc = pc + 1
    target_ok = 0 <= target < code_len
    if target_ok:
        function = program.function_at(target)
        func_name = function.name if function else "<anon>"
    else:
        func_name = "<anon>"

    def rec(machine, thread, mr, mw) -> bool:
        if not target_ok:
            raise VMError("control transfer to bad address %d" % target,
                          tid=thread.tid, pc=thread.pc)
        regs = thread.regs
        sp = int(regs["sp"]) - 1
        if sp <= thread.stack_limit:
            raise VMError("stack overflow", tid=thread.tid, pc=pc)
        machine.memory.write(sp, ret_pc)
        mw.append(sp)
        regs["sp"] = sp
        thread.push_frame(func_name, pc, ret_pc)
        thread.pc = target
        return True

    return rec


def _rec_icall(program, rt: str, pc: int, code_len: int) -> RecordHandler:
    ret_pc = pc + 1
    function_at = program.function_at

    def rec(machine, thread, mr, mw) -> bool:
        regs = thread.regs
        target = int(regs[rt])
        if not 0 <= target < code_len:
            raise VMError("control transfer to bad address %d" % target,
                          tid=thread.tid, pc=thread.pc)
        sp = int(regs["sp"]) - 1
        if sp <= thread.stack_limit:
            raise VMError("stack overflow", tid=thread.tid, pc=pc)
        machine.memory.write(sp, ret_pc)
        mw.append(sp)
        regs["sp"] = sp
        function = function_at(target)
        thread.push_frame(function.name if function else "<anon>",
                          pc, ret_pc)
        thread.pc = target
        return True

    return rec


def _rec_ret(next_pc: int, code_len: int) -> RecordHandler:
    def rec(machine, thread, mr, mw) -> bool:
        regs = thread.regs
        sp = int(regs["sp"])
        ret_addr = int(machine.memory.read(sp))
        mr.append(sp)
        regs["sp"] = sp + 1
        thread.pop_frame()
        if ret_addr == EXIT_SENTINEL:
            thread.pc = next_pc
            machine._finish_thread(thread)
        else:
            if not 0 <= ret_addr < code_len:
                raise VMError(
                    "control transfer to bad address %d" % ret_addr,
                    tid=thread.tid, pc=thread.pc)
            thread.pc = ret_addr
        return True

    return rec


# -- selective handlers --------------------------------------------------------
#
# The re-execution slicer's table variant (see the module docstring).  The
# tables are *sink-bound*: every closure captures the sink's callbacks at
# decode time, so arming a table on a machine adds zero per-step dispatch
# beyond what the sink asked to observe.  They are therefore never cached
# on the program object.

SelectiveHandler = Callable[..., bool]


def decode_selective(program, sink) -> List[SelectiveHandler]:
    """Compile the selective table for ``sink`` (mode ``"flow"`` / ``"mem"``).

    A flow sink provides ``save_addrs``/``restore_addrs`` (static
    save/restore candidate pcs) and the callbacks ``on_step(tid, pc)``
    (every retire, first), then per class: ``on_branch(tid, pc)``,
    ``on_ijmp(tid, pc, target)``, ``on_sys(tid, wrote_r0)``,
    ``on_save(tid, pc, stack_addr, value, frame_id)``,
    ``on_restore(tid, pc, stack_addr, value, frame_id)`` and
    ``on_ret(tid, frame_id)`` (``frame_id`` is pre-execution, matching
    :class:`~repro.vm.hooks.InstrEvent`), plus ``on_wset(addr)`` —
    called once per memory address *written* by a non-save retire (save
    pcs report their slot through ``on_save``), giving the sink the
    region's written-address set without any ordering or attribution.
    A mem sink provides only
    ``on_mem(tid, tindex, reads, writes)``; the address lists are scratch
    buffers reused across steps, so the sink must copy what it keeps.

    Raises :class:`ValueError` for instructions the decoder cannot give a
    dedicated shape — selective tracing has no fallback path because its
    consumer (the reexec slicer) must also *statically* derive the
    instruction's register defs/uses, which an opaque shape cannot supply.
    """
    mode = sink.mode
    instructions = program.instructions
    code_len = len(instructions)
    table: List[SelectiveHandler] = []
    if mode == "mem":
        on_mem = sink.on_mem
        mr: List[int] = []
        mw: List[int] = []
        for pc, instr in enumerate(instructions):
            try:
                _fast, traced = _decode_instr(program, instr, pc, code_len)
            except Exception:
                raise ValueError(
                    "selective decode: undecodable instruction at pc %d (%r)"
                    % (pc, instr.op))
            if instr.op in MEM_OPCODES:
                rec = _record_handler(program, instr, pc, code_len, traced)
                table.append(_sel_mem(rec, on_mem, mr, mw))
            else:
                table.append(_fast)
        return table
    if mode != "flow":
        raise ValueError("unknown selective mode %r" % (mode,))
    on_step = sink.on_step
    on_wset = sink.on_wset
    save_addrs = sink.save_addrs
    restore_addrs = sink.restore_addrs
    wmr: List[int] = []
    wmw: List[int] = []
    for pc, instr in enumerate(instructions):
        try:
            fast, traced = _decode_instr(program, instr, pc, code_len)
        except Exception:
            raise ValueError(
                "selective decode: undecodable instruction at pc %d (%r)"
                % (pc, instr.op))
        op = instr.op
        if op == Opcode.BR or op == Opcode.BRZ:
            table.append(_sel_flow_branch(fast, pc, on_step, sink.on_branch))
        elif op == Opcode.IJMP:
            table.append(_sel_flow_ijmp(fast, pc, on_step, sink.on_ijmp))
        elif op == Opcode.SYS:
            table.append(_sel_flow_sys(traced, pc, on_step, sink.on_sys,
                                       on_wset))
        elif op == Opcode.RET:
            table.append(_sel_flow_ret(fast, pc, on_step, sink.on_ret))
        elif (op == Opcode.PUSH and pc in save_addrs
                and instr.operand_kinds() == "r"):
            table.append(_sel_flow_save(fast, pc, instr.operands[0].name,
                                        on_step, sink.on_save))
        elif op == Opcode.POP and pc in restore_addrs:
            table.append(_sel_flow_restore(fast, pc, on_step,
                                           sink.on_restore))
        elif op in _WRITING_MEM_OPCODES:
            rec = _record_handler(program, instr, pc, code_len, traced)
            table.append(_sel_flow_write(rec, pc, on_step, on_wset,
                                         wmr, wmw))
        else:
            table.append(_sel_flow_plain(fast, pc, on_step))
    return table


def _sel_mem(rec, on_mem, mr, mw) -> SelectiveHandler:
    def sel(machine, thread) -> bool:
        retired = rec(machine, thread, mr, mw)
        if mr or mw:
            if retired:
                on_mem(thread.tid, thread.instr_count, mr, mw)
            del mr[:]
            del mw[:]
        return retired
    return sel


def _sel_flow_plain(fast, pc, on_step) -> SelectiveHandler:
    def sel(machine, thread) -> bool:
        fast(machine, thread)
        on_step(thread.tid, pc)
        return True
    return sel


def _sel_flow_branch(fast, pc, on_step, on_branch) -> SelectiveHandler:
    def sel(machine, thread) -> bool:
        fast(machine, thread)
        tid = thread.tid
        on_step(tid, pc)
        on_branch(tid, pc)
        return True
    return sel


def _sel_flow_ijmp(fast, pc, on_step, on_ijmp) -> SelectiveHandler:
    def sel(machine, thread) -> bool:
        fast(machine, thread)
        tid = thread.tid
        on_step(tid, pc)
        on_ijmp(tid, pc, thread.pc)
        return True
    return sel


def _sel_flow_sys(traced, pc, on_step, on_sys, on_wset) -> SelectiveHandler:
    def sel(machine, thread) -> bool:
        rr: list = []
        rw: list = []
        tmw: list = []
        # spawn deposits the child's argument-slot write here (the SYS
        # traced closure itself never touches its mem lists).
        machine._cur_mem_writes = tmw
        retired = traced(machine, thread, rr, rw, rr, rw)
        machine._cur_mem_writes = None
        if retired:
            tid = thread.tid
            on_step(tid, pc)
            on_sys(tid, bool(rw))
            for addr, _value in tmw:
                on_wset(addr)
        return retired
    return sel


def _sel_flow_write(rec, pc, on_step, on_wset, mr, mw) -> SelectiveHandler:
    def sel(machine, thread) -> bool:
        retired = rec(machine, thread, mr, mw)
        if retired:
            on_step(thread.tid, pc)
            for addr in mw:
                on_wset(addr)
        del mr[:]
        del mw[:]
        return retired
    return sel


def _sel_flow_ret(fast, pc, on_step, on_ret) -> SelectiveHandler:
    def sel(machine, thread) -> bool:
        frames = thread.frames
        frame_id = frames[-1].frame_id if frames else -1
        fast(machine, thread)
        tid = thread.tid
        on_step(tid, pc)
        on_ret(tid, frame_id)
        return True
    return sel


def _sel_flow_save(fast, pc, rs, on_step, on_save) -> SelectiveHandler:
    def sel(machine, thread) -> bool:
        frames = thread.frames
        frame_id = frames[-1].frame_id if frames else -1
        value = thread.regs[rs]
        fast(machine, thread)
        tid = thread.tid
        # Post-execution sp is exactly the slot the push wrote.
        on_step(tid, pc)
        on_save(tid, pc, int(thread.regs["sp"]), value, frame_id)
        return True
    return sel


def _sel_flow_restore(fast, pc, on_step, on_restore) -> SelectiveHandler:
    def sel(machine, thread) -> bool:
        frames = thread.frames
        frame_id = frames[-1].frame_id if frames else -1
        sp = int(thread.regs["sp"])
        value = machine.memory.read(sp)
        fast(machine, thread)
        tid = thread.tid
        on_step(tid, pc)
        on_restore(tid, pc, sp, value, frame_id)
        return True
    return sel
