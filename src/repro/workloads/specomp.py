"""SPECOMP-like call-dense numeric kernels (Figure 13 substrate).

Five kernels standing in for ammp, apsi, galgel, mgrid and wupwise from
SPECOMP 2001.  What matters for the Figure 13 experiment is not the exact
physics but the *code shape*: hot loops that keep loop-carried values in
callee-saved registers while calling helper functions two or three levels
deep.  Every such call saves and restores the registers the callee uses,
so a backward slice that crosses the call returns through save/restore
pairs — the spurious-dependence source the pruning of Section 5.2 removes.

Each kernel runs the main thread plus one worker (the paper used the
'medium'/'test' OpenMP configurations; thread count is not the variable of
interest for Figure 13) and scales linearly in ``units``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.isa.program import Program
from repro.lang import compile_source


@dataclass
class SpecOmpKernel:
    name: str
    description: str
    source_template: str
    defaults: dict = field(default_factory=dict)

    def source(self, units: int = 40, **overrides) -> str:
        params = dict(self.defaults)
        params.update({"units": units})
        params.update(overrides)
        return self.source_template % params

    def build(self, units: int = 40, **overrides) -> Program:
        return compile_source(self.source(units, **overrides),
                              name=self.name)


_SPMD_MAIN = r"""
int main() {
    int t; int acc;
    t = spawn(worker, 1);
    acc = worker(0);
    acc = acc + join(t);
    print(acc);
    return 0;
}
"""

_AMMP = r"""
int atoms[128];
int forces[128];
int energy;

int pair_force(int a, int b) {
    int d; int f;
    d = atoms[a %% 128] - atoms[b %% 128];
    if (d < 0) { d = 0 - d; }
    f = 1000 / (d + 1);
    return f;
}

int accumulate(int i, int f) {
    int old;
    old = forces[i %% 128];
    forces[i %% 128] = old + f;
    return old + f;
}

int worker(int wid) {
    int u; int i; int f; int e; int nb;
    e = 0;
    for (u = 0; u < %(units)d; u = u + 1) {
        i = (u + wid * 64) %% 128;
        atoms[i] = (atoms[i] + u * 3 + 7) %% 512;
        nb = (i + 1) %% 128;
        f = pair_force(i, nb);
        e = e + accumulate(i, f);
    }
    energy = energy + e;
    return e %% 1000;
}
""" + _SPMD_MAIN

_APSI = r"""
float temp[128];
float wind[128];
float pollution;

float advect(int i, float dt) {
    float flux;
    flux = wind[i %% 128] * dt;
    return flux * 0.5;
}

float diffuse(int i, float coeff) {
    float lap;
    lap = temp[(i + 1) %% 128] - temp[i %% 128] * 2.0
        + temp[(i + 127) %% 128];
    return lap * coeff;
}

int worker(int wid) {
    int u; int i; float dt; float delta; float acc;
    dt = 0.1;
    acc = 0.0;
    for (u = 0; u < %(units)d; u = u + 1) {
        i = (u + wid * 64) %% 128;
        wind[i] = 1.0 + (u %% 5) * 0.2;
        delta = advect(i, dt) + diffuse(i, 0.01);
        temp[i] = temp[i] + delta;
        acc = acc + delta;
    }
    pollution = pollution + acc;
    return u;
}
""" + _SPMD_MAIN

_GALGEL = r"""
float velocity[128];
float vorticity[128];
float circulation;

float curl(int i) {
    float c;
    c = velocity[(i + 1) %% 128] - velocity[(i + 127) %% 128];
    return c * 0.5;
}

float galerkin_coeff(int mode, float v) {
    float basis;
    basis = (mode %% 8) * 0.125;
    return v * basis + 0.001;
}

float project(int i, int mode) {
    float c; float g;
    c = curl(i);
    g = galerkin_coeff(mode, c);
    return g;
}

int worker(int wid) {
    int u; int i; float w; float acc;
    acc = 0.0;
    for (u = 0; u < %(units)d; u = u + 1) {
        i = (u + wid * 64) %% 128;
        velocity[i] = velocity[i] * 0.95 + 0.05 * (u %% 9);
        w = project(i, u);
        vorticity[i] = w;
        acc = acc + w;
    }
    circulation = circulation + acc;
    return u;
}
""" + _SPMD_MAIN

_MGRID = r"""
float fine[130];
float coarse[66];
float residual_norm;

float restrict_point(int i) {
    float r;
    r = fine[2 * (i %% 64) + 1] * 0.5
      + fine[2 * (i %% 64)] * 0.25
      + fine[2 * (i %% 64) + 2] * 0.25;
    return r;
}

float relax_point(int i, float rhs) {
    float nb;
    nb = (coarse[i %% 64] + coarse[(i %% 64) + 2]) * 0.5;
    return nb + rhs * 0.1;
}

float vcycle_step(int i) {
    float r; float c;
    r = restrict_point(i);
    c = relax_point(i, r);
    return c;
}

int worker(int wid) {
    int u; int i; float v; float acc;
    acc = 0.0;
    for (u = 0; u < %(units)d; u = u + 1) {
        i = (u + wid * 32) %% 64;
        fine[i * 2 + 1] = fine[i * 2 + 1] * 0.9 + 0.01 * (u %% 11);
        v = vcycle_step(i);
        coarse[(i %% 64) + 1] = v;
        acc = acc + v;
    }
    residual_norm = residual_norm + acc;
    return u;
}
""" + _SPMD_MAIN

_WUPWISE = r"""
int su3[144];
int plaquette;

int gamma_mul(int a, int b) {
    int p;
    p = (su3[a %% 144] * su3[b %% 144] + 1) %% 65536;
    return p;
}

int wilson_term(int site) {
    int fwd; int bwd;
    fwd = gamma_mul(site, site + 1);
    bwd = gamma_mul(site + 143, site);
    return (fwd + bwd) %% 65536;
}

int worker(int wid) {
    int u; int s; int w; int acc;
    acc = 0;
    for (u = 0; u < %(units)d; u = u + 1) {
        s = (u + wid * 72) %% 144;
        su3[s] = (su3[s] * 5 + u + 3) %% 65536;
        w = wilson_term(s);
        acc = (acc + w) %% 1000000;
    }
    plaquette = plaquette + acc;
    return acc %% 1000;
}
""" + _SPMD_MAIN


SPECOMP_KERNELS: Dict[str, SpecOmpKernel] = {
    "ammp": SpecOmpKernel(
        "ammp", "Molecular dynamics (pairwise forces)", _AMMP),
    "apsi": SpecOmpKernel(
        "apsi", "Air pollution / meteorology (advection-diffusion)", _APSI),
    "galgel": SpecOmpKernel(
        "galgel", "Fluid dynamics via Galerkin projection", _GALGEL),
    "mgrid": SpecOmpKernel(
        "mgrid", "Multigrid solver (restrict/relax V-cycle steps)", _MGRID),
    "wupwise": SpecOmpKernel(
        "wupwise", "Lattice QCD (Wilson-Dirac operator)", _WUPWISE),
}


def get_specomp(name: str) -> SpecOmpKernel:
    try:
        return SPECOMP_KERNELS[name]
    except KeyError:
        raise KeyError("unknown SPECOMP kernel %r (have: %s)"
                       % (name, sorted(SPECOMP_KERNELS)))
