"""Workload helpers: phase markers for locating buggy regions.

The bug workloads print distinctive sentinel values at phase boundaries
(end of warm-up, start of the racy phase).  ``find_marker_skip`` measures
the main thread's instruction count at a marker under a given seed, which
becomes the ``skip`` of a buggy-region :class:`~repro.pinplay.regions.RegionSpec`
— the reproduction of "fast-forward to the buggy region".  Measuring is
cheap: it only listens to syscall events, no per-instruction tracing.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.isa.program import Program
from repro.vm.hooks import SyscallEvent, Tool
from repro.vm.machine import Machine
from repro.vm.scheduler import Scheduler

#: Sentinel printed when the warm-up phase completes.
MARKER_WARMUP_DONE = -1000001
#: Sentinel printed right before the racy phase begins.
MARKER_RACY_PHASE = -1000002


class PhaseMarkerTool(Tool):
    """Records the main-thread instruction count at each marker print."""

    def __init__(self) -> None:
        self.marks: Dict[int, int] = {}

    def on_syscall(self, event: SyscallEvent) -> None:
        if event.name == "print" and event.tid == 0:
            value = event.args[0]
            if isinstance(value, int) and value <= MARKER_WARMUP_DONE + 10:
                self.marks.setdefault(int(value), event.tindex)


def find_marker_skip(program: Program, scheduler: Scheduler,
                     marker: int = MARKER_WARMUP_DONE,
                     inputs: Sequence = (),
                     max_steps: int = 50_000_000) -> Optional[int]:
    """Main-thread instruction count when ``marker`` is printed, or None.

    Run this with a scheduler configured identically (same type, same
    seed) to the one you will pass to the logger: the measured count is
    then a valid ``skip`` for that recording run, because execution is a
    pure function of the scheduling seed and inputs.
    """
    tool = PhaseMarkerTool()
    machine = Machine(program, scheduler=scheduler, tools=[tool],
                      inputs=inputs)
    machine.run(max_steps=max_steps)
    count = tool.marks.get(marker)
    return count + 1 if count is not None else None
