"""Workload programs for the evaluation, all written in MiniC.

Three families, matching the paper's experimental setup:

* :mod:`~repro.workloads.bugs` — analogs of the three real data-race bugs
  of Table 1 (pbzip2, Aget, Mozilla), with a controllable warm-up phase so
  both the whole-program regions of Table 3 and the buggy regions of
  Table 2 are meaningful;
* :mod:`~repro.workloads.parsec` — eight multithreaded kernels standing in
  for the PARSEC apps/kernels of Figures 11, 12 and 14, with a ``units``
  parameter that scales the main-thread region length;
* :mod:`~repro.workloads.specomp` — five call-dense numeric kernels
  standing in for the SPECOMP programs of Figure 13 (deep call chains
  maximize save/restore pairs, the pruning opportunity);
* :mod:`~repro.workloads.pointers` — pointer-chasing kernels over
  heap-allocated structs (linked lists, binary trees, a chained hash
  table) plus two heap-bug analogs (use-after-free under poison mode,
  dangling pointer after free-list reuse).
"""

from repro.workloads.bugs import BUG_WORKLOADS, BugWorkload, get_bug
from repro.workloads.parsec import PARSEC_KERNELS, ParsecKernel, get_parsec
from repro.workloads.pointers import (
    POINTER_BUGS,
    POINTER_KERNELS,
    PointerBug,
    PointerKernel,
    get_pointer,
    get_pointer_bug,
)
from repro.workloads.specomp import SPECOMP_KERNELS, SpecOmpKernel, get_specomp
from repro.workloads.util import PhaseMarkerTool, find_marker_skip

__all__ = [
    "BUG_WORKLOADS",
    "BugWorkload",
    "PARSEC_KERNELS",
    "POINTER_BUGS",
    "POINTER_KERNELS",
    "ParsecKernel",
    "PhaseMarkerTool",
    "PointerBug",
    "PointerKernel",
    "SPECOMP_KERNELS",
    "SpecOmpKernel",
    "find_marker_skip",
    "get_bug",
    "get_parsec",
    "get_pointer",
    "get_pointer_bug",
    "get_specomp",
]
