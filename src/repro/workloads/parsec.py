"""PARSEC-like multithreaded kernels (Figures 11, 12, 14 substrate).

Eight kernels standing in for the five "apps" and three "kernels" the
paper evaluates (PARSEC 2.1, 4-threaded runs, 'native' input).  Each
kernel follows the paper's measurement setup:

* ``nthreads`` guest threads are all active inside the measured region
  (main participates as worker 0, so a region of length *L* main-thread
  instructions contains roughly ``nthreads``×*L* instructions in total —
  the paper reports 3-4x for 4 threads);
* ``units`` scales the per-thread work linearly, which is how the
  region-length sweeps (10M..1B instructions in the paper; scaled down
  for an interpreted substrate) are produced;
* work is mostly thread-local array computation, with occasional shared
  accumulator updates under a lock — the access pattern that keeps
  pinballs small relative to region length.

The computations are *themed* after the originals (option pricing for
blackscholes, annealing swaps for canneal, chunk hashing for dedup, ...)
so their instruction mixes differ; they are not the original algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.isa.program import Program
from repro.lang import compile_source


@dataclass
class ParsecKernel:
    """One scalable multithreaded kernel."""

    name: str
    kind: str                    # "app" | "kernel", as PARSEC classifies
    description: str
    source_template: str
    defaults: dict = field(default_factory=dict)

    def source(self, units: int = 50, nthreads: int = 4, **overrides) -> str:
        params = dict(self.defaults)
        params.update({"units": units, "nworkers": nthreads - 1})
        params.update(overrides)
        return self.source_template % params

    def build(self, units: int = 50, nthreads: int = 4,
              **overrides) -> Program:
        return compile_source(self.source(units, nthreads, **overrides),
                              name=self.name)


_COMMON_MAIN = r"""
int main() {
    int tids[8];
    int i; int acc;
    for (i = 0; i < %(nworkers)d; i = i + 1) {
        tids[i] = spawn(worker, i + 1);
    }
    acc = worker(0);
    for (i = 0; i < %(nworkers)d; i = i + 1) {
        acc = acc + join(tids[i]);
    }
    print(acc);
    return 0;
}
"""

_BLACKSCHOLES = r"""
float prices[256];
float results[256];
int total_mut;
float total;

float price_one(float s, float k, float t) {
    float d1; float d2; float v;
    d1 = (s / k + t * 0.02) / (t * 0.3);
    d2 = d1 - t * 0.3;
    v = s * d1 - k * d2;
    if (v < 0.0) { v = 0.0 - v; }
    return v;
}

int worker(int wid) {
    int u; int i; float sum;
    sum = 0.0;
    for (u = 0; u < %(units)d; u = u + 1) {
        i = (u * 7 + wid * 31) %% 256;
        prices[i] = 10.0 + i;
        results[i] = price_one(prices[i], 12.5, 1.0 + u %% 4);
        sum = sum + results[i];
    }
    lock(&total_mut);
    total = total + sum;
    unlock(&total_mut);
    return 1;
}
""" + _COMMON_MAIN

_BODYTRACK = r"""
int particles[128];
int weights[128];
int best_mut;
int best;

int likelihood(int p, int obs) {
    int d;
    d = p - obs;
    if (d < 0) { d = 0 - d; }
    return 1000 - d;
}

int worker(int wid) {
    int u; int i; int w; int localbest;
    localbest = 0;
    for (u = 0; u < %(units)d; u = u + 1) {
        i = (u + wid * 16) %% 128;
        particles[i] = (particles[i] * 13 + u) %% 997;
        w = likelihood(particles[i], 500);
        weights[i] = w;
        if (w > localbest) { localbest = w; }
    }
    lock(&best_mut);
    if (localbest > best) { best = localbest; }
    unlock(&best_mut);
    return 1;
}
""" + _COMMON_MAIN

_CANNEAL = r"""
int netlist[256];
int cost_mut;
int cost;

int swap_gain(int a, int b) {
    int ca; int cb;
    ca = netlist[a %% 256];
    cb = netlist[b %% 256];
    return ca - cb;
}

int worker(int wid) {
    int u; int a; int b; int gain; int localcost;
    localcost = 0;
    for (u = 0; u < %(units)d; u = u + 1) {
        a = rand(256);
        b = rand(256);
        gain = swap_gain(a, b);
        if (gain > 0) {
            netlist[a %% 256] = netlist[b %% 256];
            localcost = localcost + gain;
        } else {
            localcost = localcost - gain;
        }
    }
    lock(&cost_mut);
    cost = cost + localcost;
    unlock(&cost_mut);
    return 1;
}
""" + _COMMON_MAIN

_DEDUP = r"""
int chunks[128];
int table[64];
int dup_mut;
int dups;

int hash_chunk(int v) {
    int h;
    h = v * 2654435761;
    h = (h ^ (h >> 13)) & 1048575;
    return h;
}

int worker(int wid) {
    int u; int i; int h; int slot; int localdups;
    localdups = 0;
    for (u = 0; u < %(units)d; u = u + 1) {
        i = (u * 3 + wid * 41) %% 128;
        chunks[i] = u * 17 + wid;
        h = hash_chunk(chunks[i]);
        slot = h %% 64;
        if (table[slot] == h) {
            localdups = localdups + 1;
        } else {
            table[slot] = h;
        }
    }
    lock(&dup_mut);
    dups = dups + localdups;
    unlock(&dup_mut);
    return 1;
}
""" + _COMMON_MAIN

_FERRET = r"""
int db[256];
int query[16];
int rank_mut;
int rank_total;

int distance(int base, int q) {
    int i; int d; int sum;
    sum = 0;
    for (i = 0; i < 4; i = i + 1) {
        d = db[(base + i) %% 256] - query[(q + i) %% 16];
        if (d < 0) { d = 0 - d; }
        sum = sum + d;
    }
    return sum;
}

int worker(int wid) {
    int u; int best; int d; int localsum;
    localsum = 0;
    for (u = 0; u < %(units)d; u = u + 1) {
        db[(u + wid * 61) %% 256] = u * 5 + wid;
        d = distance(u %% 256, wid);
        best = d %% 100;
        localsum = localsum + best;
    }
    lock(&rank_mut);
    rank_total = rank_total + localsum;
    unlock(&rank_mut);
    return 1;
}
""" + _COMMON_MAIN

_FLUIDANIMATE = r"""
float grid[256];
int cell_mut;
float momentum;

int worker(int wid) {
    int u; int i; float nb; float localm;
    localm = 0.0;
    for (u = 0; u < %(units)d; u = u + 1) {
        i = (u + wid * 64) %% 254 + 1;
        nb = (grid[i - 1] + grid[i + 1]) * 0.5;
        grid[i] = grid[i] * 0.9 + nb * 0.1 + 0.001;
        localm = localm + grid[i];
    }
    lock(&cell_mut);
    momentum = momentum + localm;
    unlock(&cell_mut);
    return 1;
}
""" + _COMMON_MAIN

_STREAMCLUSTER = r"""
int points[256];
int centers[8];
int assign_mut;
int moved;

int nearest(int p) {
    int c; int best; int bestd; int d;
    best = 0;
    bestd = 1000000;
    for (c = 0; c < 8; c = c + 1) {
        d = points[p] - centers[c];
        if (d < 0) { d = 0 - d; }
        if (d < bestd) { bestd = d; best = c; }
    }
    return best;
}

int worker(int wid) {
    int u; int p; int c; int localmoved;
    localmoved = 0;
    for (u = 0; u < %(units)d; u = u + 1) {
        p = (u + wid * 64) %% 256;
        points[p] = (points[p] + u * 7) %% 4096;
        c = nearest(p);
        if (c != points[p] %% 8) { localmoved = localmoved + 1; }
    }
    lock(&assign_mut);
    moved = moved + localmoved;
    unlock(&assign_mut);
    return 1;
}
""" + _COMMON_MAIN

_SWAPTIONS = r"""
float rates[64];
int sum_mut;
float price_sum;

float simulate_path(int seed, float r0) {
    float r; int i;
    r = r0;
    for (i = 0; i < 3; i = i + 1) {
        r = r + (seed %% 7) * 0.001 - 0.002;
        if (r < 0.0) { r = 0.001; }
    }
    return r;
}

int worker(int wid) {
    int u; int s; float r; float localsum;
    localsum = 0.0;
    for (u = 0; u < %(units)d; u = u + 1) {
        s = rand(1000);
        rates[(u + wid) %% 64] = 0.05 + (s %% 10) * 0.001;
        r = simulate_path(s, rates[(u + wid) %% 64]);
        localsum = localsum + r;
    }
    lock(&sum_mut);
    price_sum = price_sum + localsum;
    unlock(&sum_mut);
    return 1;
}
""" + _COMMON_MAIN


PARSEC_KERNELS: Dict[str, ParsecKernel] = {
    "blackscholes": ParsecKernel(
        "blackscholes", "app",
        "Black-Scholes option pricing over a portfolio",
        _BLACKSCHOLES),
    "bodytrack": ParsecKernel(
        "bodytrack", "app",
        "Particle-filter body tracking (likelihood weighting)",
        _BODYTRACK),
    "canneal": ParsecKernel(
        "canneal", "kernel",
        "Simulated-annealing netlist placement (randomized swaps)",
        _CANNEAL),
    "dedup": ParsecKernel(
        "dedup", "kernel",
        "Chunk hashing and deduplication pipeline",
        _DEDUP),
    "ferret": ParsecKernel(
        "ferret", "app",
        "Content-based similarity search (feature distances)",
        _FERRET),
    "fluidanimate": ParsecKernel(
        "fluidanimate", "app",
        "Grid-based fluid simulation (neighbor relaxation)",
        _FLUIDANIMATE),
    "streamcluster": ParsecKernel(
        "streamcluster", "kernel",
        "Online k-median clustering (nearest-center assignment)",
        _STREAMCLUSTER),
    "swaptions": ParsecKernel(
        "swaptions", "app",
        "Monte-Carlo swaption pricing (HJM-style paths)",
        _SWAPTIONS),
}


def get_parsec(name: str) -> ParsecKernel:
    try:
        return PARSEC_KERNELS[name]
    except KeyError:
        raise KeyError("unknown PARSEC kernel %r (have: %s)"
                       % (name, sorted(PARSEC_KERNELS)))
