"""Analogs of the three real concurrency bugs of Table 1.

Each workload reproduces the *shape* of the original bug — the threads
involved, the unsynchronized accesses, the root cause and the symptom —
on our substrate:

* **pbzip2** — "a data race on variable ``fifo->mut`` between the main
  thread and the compressor threads": main tears the queue down while
  compressor threads still use it (use-after-destroy).
* **Aget** — "a data race on variable ``bwritten`` between downloader
  threads and the signal handler thread": the handler does an unlocked
  read-modify-write of the progress counter, losing concurrent locked
  updates.
* **mozilla** — "one thread destroys a hash table, and another thread
  crashes in ``js_SweepScriptFilenames`` when accessing this hash table".

Every program has a ``warmup`` parameter: the instructions executed before
the racy phase, standing in for all the execution a novice programmer
records when capturing from program start (Table 3) versus a focused buggy
region (Table 2).  Phase-boundary markers are printed so the buggy-region
skip can be measured with :func:`~repro.workloads.util.find_marker_skip`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.program import Program
from repro.lang import compile_source
from repro.pinplay.logger import record_region
from repro.pinplay.pinball import Pinball
from repro.pinplay.regions import RegionSpec
from repro.vm.scheduler import RandomScheduler
from repro.workloads.util import (
    MARKER_RACY_PHASE,
    MARKER_WARMUP_DONE,
    find_marker_skip,
)


@dataclass
class BugWorkload:
    """One buggy program, plus what's needed to expose and region it."""

    name: str
    description: str
    bug_analog_of: str
    source_template: str
    failure_code: int
    #: Default scale parameters substituted into the template.
    defaults: dict = field(default_factory=dict)
    switch_prob: float = 0.25

    def source(self, warmup: Optional[int] = None, **overrides) -> str:
        params = dict(self.defaults)
        if warmup is not None:
            params["warmup"] = warmup
        params.update(overrides)
        return self.source_template % params

    def build(self, warmup: Optional[int] = None, **overrides) -> Program:
        return compile_source(self.source(warmup, **overrides),
                              name=self.name)

    def expose(self, program: Program, seeds=range(64),
               region: Optional[RegionSpec] = None
               ) -> Tuple[Optional[Pinball], Optional[int]]:
        """Search seeds for a failing schedule; record it as a pinball.

        Returns (pinball, seed); (None, None) if no seed failed.
        """
        for seed in seeds:
            pinball = record_region(
                program,
                RandomScheduler(seed=seed, switch_prob=self.switch_prob),
                region or RegionSpec())
            failure = pinball.meta.get("failure")
            if failure and failure["code"] == self.failure_code:
                return pinball, seed
        return None, None

    def buggy_region_skip(self, program: Program, seed: int) -> int:
        """Measure the skip that starts the region at the racy phase."""
        skip = find_marker_skip(
            program,
            RandomScheduler(seed=seed, switch_prob=self.switch_prob),
            marker=MARKER_RACY_PHASE)
        if skip is None:
            raise RuntimeError("racy-phase marker not reached")
        return skip


_PBZIP2_SOURCE = r"""
int fifo_q[64];
int fifo_head; int fifo_tail;
int fifo_mut;
int fifo_valid;
int consumed;
int warmup_sink;

int compressor(int iters) {
    int i; int v;
    for (i = 0; i < iters; i = i + 1) {
        assert(fifo_valid == 1, 101);
        lock(&fifo_mut);
        if (fifo_head < fifo_tail) {
            v = fifo_q[fifo_head %% 64];
            fifo_head = fifo_head + 1;
            consumed = consumed + v;
        }
        unlock(&fifo_mut);
        yield();
    }
    return 0;
}

int main() {
    int t1; int t2; int i;
    for (i = 0; i < %(warmup)d; i = i + 1) {
        warmup_sink = warmup_sink + (i ^ (i >> 3));
    }
    print(-1000001);
    fifo_valid = 1;
    for (i = 0; i < 48; i = i + 1) {
        fifo_q[i %% 64] = i + 1;
        fifo_tail = fifo_tail + 1;
    }
    print(-1000002);
    t1 = spawn(compressor, %(iters)d);
    t2 = spawn(compressor, %(iters)d);
    for (i = 0; i < %(teardown_work)d; i = i + 1) {
        warmup_sink = warmup_sink + i;
    }
    fifo_valid = 0;
    fifo_mut = -1;
    join(t1);
    join(t2);
    print(consumed);
    return 0;
}
"""

_AGET_SOURCE = r"""
int bwritten;
int bw_mut;
int warmup_sink;

int downloader(int iters) {
    int i;
    for (i = 0; i < iters; i = i + 1) {
        lock(&bw_mut);
        bwritten = bwritten + 1;
        unlock(&bw_mut);
    }
    return 0;
}

int sighandler(int rounds) {
    int i; int tmp;
    for (i = 0; i < rounds; i = i + 1) {
        tmp = bwritten;
        sleep(%(handler_window)d);
        bwritten = tmp;
        yield();
    }
    return 0;
}

int main() {
    int d1; int d2; int h; int i;
    for (i = 0; i < %(warmup)d; i = i + 1) {
        warmup_sink = warmup_sink + (i * 3 %% 17);
    }
    print(-1000001);
    print(-1000002);
    d1 = spawn(downloader, %(iters)d);
    d2 = spawn(downloader, %(iters)d);
    h = spawn(sighandler, %(handler_rounds)d);
    join(d1);
    join(d2);
    join(h);
    print(bwritten);
    assert(bwritten == 2 * %(iters)d, 102);
    return 0;
}
"""

_MOZILLA_SOURCE = r"""
int script_table[32];
int table_alive;
int sweep_sum;
int warmup_sink;

int destroyer(int work) {
    int i; int spin;
    spin = 0;
    for (i = 0; i < work; i = i + 1) {
        spin = spin + (i & 31);
    }
    table_alive = 0;
    for (i = 0; i < 32; i = i + 1) {
        script_table[i] = -7777;
    }
    return spin;
}

int sweeper(int unused) {
    int i; int v;
    for (i = 0; i < 32; i = i + 1) {
        v = script_table[i];
        assert(table_alive == 1, 103);
        sweep_sum = sweep_sum + v;
        yield();
    }
    return 0;
}

int main() {
    int td; int ts; int i;
    for (i = 0; i < %(warmup)d; i = i + 1) {
        warmup_sink = warmup_sink + (i & 255);
    }
    print(-1000001);
    table_alive = 1;
    for (i = 0; i < 32; i = i + 1) {
        script_table[i] = i * i;
    }
    print(-1000002);
    td = spawn(destroyer, %(destroy_work)d);
    ts = spawn(sweeper, 0);
    join(td);
    join(ts);
    print(sweep_sum);
    return 0;
}
"""


BUG_WORKLOADS = {
    "pbzip2": BugWorkload(
        name="pbzip2",
        description="Parallel file compressor (analog of ver. 0.9.4)",
        bug_analog_of=("Data race on fifo->mut between main thread and the "
                       "compressor threads (use of the queue mutex after "
                       "main destroys it)"),
        source_template=_PBZIP2_SOURCE,
        failure_code=101,
        defaults={"warmup": 400, "iters": 30, "teardown_work": 120},
    ),
    "aget": BugWorkload(
        name="aget",
        description="Parallel downloader (analog of ver. 0.57)",
        bug_analog_of=("Data race on bwritten between downloader threads "
                       "and the signal handler thread (handler's unlocked "
                       "read-modify-write loses locked updates)"),
        source_template=_AGET_SOURCE,
        failure_code=102,
        defaults={"warmup": 400, "iters": 20, "handler_rounds": 1,
                  "handler_window": 10},
    ),
    "mozilla": BugWorkload(
        name="mozilla",
        description="Web browser JS engine (analog of ver. 1.9.1)",
        bug_analog_of=("Data race on rt->scriptFilenameTable: one thread "
                       "destroys the hash table, another crashes sweeping "
                       "it (js_SweepScriptFilenames)"),
        source_template=_MOZILLA_SOURCE,
        failure_code=103,
        defaults={"warmup": 400, "destroy_work": 60},
    ),
}


def get_bug(name: str) -> BugWorkload:
    try:
        return BUG_WORKLOADS[name]
    except KeyError:
        raise KeyError("unknown bug workload %r (have: %s)"
                       % (name, sorted(BUG_WORKLOADS)))
