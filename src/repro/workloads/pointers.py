"""Pointer-chasing workloads over heap-allocated structs.

A fourth workload family, exercising the struct/heap/recursion surface
of MiniC the way the PARSEC family exercises arrays and locks:

* **kernels** — scalable multithreaded pointer chasers built on
  ``new``/``delete`` and ``->`` field access: per-worker linked lists
  (``list_chase``), recursively built and summed binary search trees
  (``tree_sum``), and a struct-based chained hash table (``hashchain``
  — the Mozilla Table-1 analog's hash table rewritten natively with
  heap-allocated chain entries instead of a flat int array);
* **bug analogs** — two more Table-1-style heap bugs: a use-after-free
  where a walker races a reaper freeing the list out from under it
  (``uaf_chase``, needs the allocator's poison-on-free mode so the
  stale read is loud), and a dangling pointer read through a struct
  field after the allocator reuses the freed block for a fresh object
  (``dangle_reuse``, needs no poison — deterministic free-list reuse
  by exact size makes the recycled object land at the old address).

Kernels mirror :class:`~repro.workloads.parsec.ParsecKernel`'s
interface (``units`` scales per-thread work, ``nthreads`` counts active
threads, main participates as worker 0); bug analogs mirror
:class:`~repro.workloads.bugs.BugWorkload` (warmup phase, phase
markers, ``expose()`` seed search) with one extension: a workload can
demand heap poisoning, which ``expose`` threads through
:func:`~repro.pinplay.logger.record_region` so the flag rides in the
pinball and replays reproduce the poisoned reads exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.isa.program import Program
from repro.lang import compile_source
from repro.pinplay.logger import record_region
from repro.pinplay.pinball import Pinball
from repro.pinplay.regions import RegionSpec
from repro.vm.scheduler import RandomScheduler
from repro.workloads.bugs import BugWorkload


@dataclass
class PointerKernel:
    """One scalable multithreaded pointer-chasing kernel."""

    name: str
    description: str
    source_template: str
    defaults: dict = field(default_factory=dict)

    def source(self, units: int = 50, nthreads: int = 4, **overrides) -> str:
        params = dict(self.defaults)
        params.update({"units": units, "nworkers": nthreads - 1})
        params.update(overrides)
        return self.source_template % params

    def build(self, units: int = 50, nthreads: int = 4,
              **overrides) -> Program:
        return compile_source(self.source(units, nthreads, **overrides),
                              name=self.name)


@dataclass
class PointerBug(BugWorkload):
    """A heap-bug analog; may require the allocator's poison mode."""

    heap_poison: bool = False

    def expose(self, program: Program, seeds=range(64),
               region: Optional[RegionSpec] = None
               ) -> Tuple[Optional[Pinball], Optional[int]]:
        """Like :meth:`BugWorkload.expose`, with poison mode threaded
        through to the recording machine."""
        for seed in seeds:
            pinball = record_region(
                program,
                RandomScheduler(seed=seed, switch_prob=self.switch_prob),
                region or RegionSpec(),
                heap_poison=self.heap_poison)
            failure = pinball.meta.get("failure")
            if failure and failure["code"] == self.failure_code:
                return pinball, seed
        return None, None


_PTR_MAIN = r"""
int main() {
    int tids[8];
    int i; int acc;
    for (i = 0; i < %(nworkers)d; i = i + 1) {
        tids[i] = spawn(worker, i + 1);
    }
    acc = worker(0);
    for (i = 0; i < %(nworkers)d; i = i + 1) {
        acc = acc + join(tids[i]);
    }
    print(total);
    print(acc);
    return 0;
}
"""

_LIST_CHASE = r"""
struct Node { int value; struct Node* next; };

int acc_mut;
int total;

int worker(int wid) {
    struct Node* head; struct Node* n; struct Node* nx;
    int u; int sum;
    head = 0;
    for (u = 0; u < %(units)d; u = u + 1) {
        n = new Node;
        n->value = u * 3 + wid;
        n->next = head;
        head = n;
    }
    sum = 0;
    n = head;
    while (n != 0) {
        sum = sum + n->value;
        n = n->next;
    }
    n = head;
    while (n != 0) {
        nx = n->next;
        delete n;
        n = nx;
    }
    lock(&acc_mut);
    total = total + sum;
    unlock(&acc_mut);
    return 1;
}
""" + _PTR_MAIN

_TREE_SUM = r"""
struct Tree { int key; struct Tree* left; struct Tree* right; };

int acc_mut;
int total;

struct Tree* insert(struct Tree* t, int key) {
    if (t == 0) {
        t = new Tree;
        t->key = key;
        t->left = 0;
        t->right = 0;
        return t;
    }
    if (key < t->key) {
        t->left = insert(t->left, key);
    } else {
        t->right = insert(t->right, key);
    }
    return t;
}

int sum_tree(struct Tree* t) {
    if (t == 0) { return 0; }
    return t->key + sum_tree(t->left) + sum_tree(t->right);
}

int drop_tree(struct Tree* t) {
    if (t == 0) { return 0; }
    drop_tree(t->left);
    drop_tree(t->right);
    delete t;
    return 1;
}

int worker(int wid) {
    struct Tree* root;
    int u; int sum;
    root = 0;
    for (u = 0; u < %(units)d; u = u + 1) {
        root = insert(root, (u * 37 + wid * 101) %% 1024);
    }
    sum = sum_tree(root);
    drop_tree(root);
    lock(&acc_mut);
    total = total + sum;
    unlock(&acc_mut);
    return 1;
}
""" + _PTR_MAIN

_HASHCHAIN = r"""
struct Entry { int key; int value; struct Entry* next; };

struct Entry* buckets[64];
int table_mut;
int acc_mut;
int total;

int htput(int key, int value) {
    int b; struct Entry* e;
    b = key %% 64;
    e = buckets[b];
    while (e != 0) {
        if (e->key == key) {
            e->value = e->value + value;
            return 0;
        }
        e = e->next;
    }
    e = new Entry;
    e->key = key;
    e->value = value;
    e->next = buckets[b];
    buckets[b] = e;
    return 1;
}

int htget(int key) {
    int b; struct Entry* e;
    b = key %% 64;
    e = buckets[b];
    while (e != 0) {
        if (e->key == key) { return e->value; }
        e = e->next;
    }
    return 0;
}

int worker(int wid) {
    int u; int k; int sum;
    sum = 0;
    for (u = 0; u < %(units)d; u = u + 1) {
        k = (u * 13 + wid * 57) %% 192;
        lock(&table_mut);
        htput(k, u %% 9 + 1);
        sum = sum + htget(k);
        unlock(&table_mut);
    }
    lock(&acc_mut);
    total = total + sum;
    unlock(&acc_mut);
    return 1;
}
""" + _PTR_MAIN

_UAF_CHASE_SOURCE = r"""
struct Node { int value; struct Node* next; };

struct Node* head;
int poison;
int walked;
int warmup_sink;

int walker(int rounds) {
    struct Node* n; struct Node* nx;
    int r; int v;
    for (r = 0; r < rounds; r = r + 1) {
        n = head;
        while (n != 0) {
            v = n->value;
            nx = n->next;
            assert(v != poison, 104);
            walked = walked + v;
            yield();
            if (nx > 0) { n = nx; } else { n = 0; }
        }
    }
    return 0;
}

int reaper(int work) {
    struct Node* n; struct Node* nx;
    int i; int spin;
    spin = 0;
    for (i = 0; i < work; i = i + 1) {
        spin = spin + (i & 31);
    }
    n = head;
    while (n != 0) {
        nx = n->next;
        delete n;
        n = nx;
    }
    return spin;
}

int main() {
    struct Node* n;
    int tw; int tr; int i;
    poison = 0 - 559038737;
    for (i = 0; i < %(warmup)d; i = i + 1) {
        warmup_sink = warmup_sink + (i ^ (i >> 2));
    }
    print(-1000001);
    head = 0;
    for (i = 0; i < %(nodes)d; i = i + 1) {
        n = new Node;
        n->value = i + 1;
        n->next = head;
        head = n;
    }
    print(-1000002);
    tw = spawn(walker, %(rounds)d);
    tr = spawn(reaper, %(reap_work)d);
    join(tw);
    join(tr);
    print(walked);
    return 0;
}
"""

_DANGLE_REUSE_SOURCE = r"""
struct Slot { int tag; int payload; };

struct Slot* shared;
struct Slot* fresh;
int observed;
int warmup_sink;

int reader(int rounds) {
    struct Slot* q;
    int r; int t; int v;
    q = shared;
    for (r = 0; r < rounds; r = r + 1) {
        t = q->tag;
        v = q->payload;
        assert(t == 7, 105);
        observed = observed + v;
        yield();
    }
    return 0;
}

int recycler(int work) {
    int i; int spin;
    spin = 0;
    for (i = 0; i < work; i = i + 1) {
        spin = spin + (i * 3 & 63);
    }
    delete shared;
    fresh = new Slot;
    fresh->tag = 9;
    fresh->payload = 1;
    return spin;
}

int main() {
    int tr; int tc; int i;
    for (i = 0; i < %(warmup)d; i = i + 1) {
        warmup_sink = warmup_sink + (i * 5 %% 23);
    }
    print(-1000001);
    shared = new Slot;
    shared->tag = 7;
    shared->payload = 42;
    print(-1000002);
    tr = spawn(reader, %(rounds)d);
    tc = spawn(recycler, %(recycle_work)d);
    join(tr);
    join(tc);
    print(observed);
    return 0;
}
"""


POINTER_KERNELS: Dict[str, PointerKernel] = {
    "list_chase": PointerKernel(
        "list_chase",
        "Per-worker linked lists: build, chase-sum, then delete",
        _LIST_CHASE),
    "tree_sum": PointerKernel(
        "tree_sum",
        "Binary search trees: recursive insert, recursive sum, "
        "recursive teardown",
        _TREE_SUM),
    "hashchain": PointerKernel(
        "hashchain",
        "Chained hash table with heap-allocated struct entries "
        "(the Mozilla analog's table, rewritten natively)",
        _HASHCHAIN),
}

POINTER_BUGS: Dict[str, PointerBug] = {
    "uaf_chase": PointerBug(
        name="uaf_chase",
        description="Linked-list walker racing a reaper's deletes",
        bug_analog_of=("Use-after-free: one thread frees the list's nodes "
                       "while another still chases them; with "
                       "poison-on-free the stale read returns HEAP_POISON "
                       "and the symptom assert fires"),
        source_template=_UAF_CHASE_SOURCE,
        failure_code=104,
        defaults={"warmup": 400, "nodes": 24, "rounds": 3,
                  "reap_work": 150},
        heap_poison=True,
    ),
    "dangle_reuse": PointerBug(
        name="dangle_reuse",
        description="Dangling struct pointer read after block reuse",
        bug_analog_of=("Dangling pointer: the allocator's exact-size "
                       "free list hands the freed Slot's address to a "
                       "fresh allocation, so a stale pointer reads the "
                       "new object's fields (realloc-style reuse)"),
        source_template=_DANGLE_REUSE_SOURCE,
        failure_code=105,
        defaults={"warmup": 400, "rounds": 24, "recycle_work": 35},
        heap_poison=False,
    ),
}


def get_pointer(name: str) -> PointerKernel:
    try:
        return POINTER_KERNELS[name]
    except KeyError:
        raise KeyError("unknown pointer kernel %r (have: %s)"
                       % (name, sorted(POINTER_KERNELS)))


def get_pointer_bug(name: str) -> PointerBug:
    try:
        return POINTER_BUGS[name]
    except KeyError:
        raise KeyError("unknown pointer bug %r (have: %s)"
                       % (name, sorted(POINTER_BUGS)))
