"""MiniC code generator: AST to linked mini-ISA program.

Calling convention (see :mod:`repro.lang.symbols` for layout):

* caller pushes arguments right-to-left, executes ``call``, then pops the
  arguments with ``add sp, sp, nargs``; the result arrives in ``r0``;
* callee prologue: ``push fp; mov fp, sp; sub sp, sp, n_stack;
  push r4..r7`` (only the callee-saved registers the function uses);
* callee epilogue (single exit point): ``pop r7..r4; mov sp, fp; pop fp;
  ret``.

The prologue/epilogue pushes/pops are exactly the *save/restore pairs*
whose spurious dependences the slicer prunes (paper Section 5.2) — note
``push fp``/``pop fp`` forms a pair too.

Expression evaluation uses ``r0``..``r2`` as a register stack with ``r3``
as spill scratch; when an expression is deeper than three live values, the
generator spills to the machine stack, so arbitrarily deep expressions
compile.  Dense integer ``switch`` statements lower to a data-segment jump
table dispatched with ``ijmp`` (paper Section 5.1); sparse ones lower to a
compare chain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.isa.instructions import Imm, Instr, Label, Mem, Opcode, Reg
from repro.isa.program import DataDef, Function, GlobalVar, Program
from repro.lang import ast
from repro.lang.errors import CompileError
from repro.lang.symbols import (FunctionLayout, LocalSlot, StructField,
                                build_struct_table, is_struct_value,
                                layout_function, type_size)

#: Syscall builtins: name -> (number of args, produces result).
BUILTINS = {
    "spawn": (2, True),
    "join": (1, True),
    "lock": (1, False),
    "unlock": (1, False),
    "print": (1, False),
    "input": (0, True),
    "rand": (1, True),
    "time": (0, True),
    "malloc": (1, True),
    "free": (1, False),
    "assert": (2, False),
    "yield": (0, False),
    "sleep": (1, False),
    "barrier": (2, False),
    "exit": (1, False),
}

#: Switch lowers to a jump table when it has at least this many cases ...
JUMP_TABLE_MIN_CASES = 3
#: ... and the table would be at most this many times larger than the cases.
JUMP_TABLE_MAX_SPARSITY = 3

_EVAL_REGS = ("r0", "r1", "r2")
_SCRATCH = "r3"

_BINOP_MAP = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
    "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
    "==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
}


class _FunctionCompiler:
    """Compiles one function body into an instruction list."""

    def __init__(self, module: "ModuleCompiler", func: ast.FuncDef) -> None:
        self.module = module
        self.func = func
        if is_struct_value(func.return_type, module.structs):
            raise CompileError(
                "function %r cannot return a struct by value "
                "(return a pointer)" % func.name, func.line)
        self.layout: FunctionLayout = layout_function(func, module.structs)
        self.instrs: List[Instr] = []
        self.labels: Dict[str, int] = {}
        self._label_counter = 0
        self._cur_line = func.line
        #: Stack of (break_label, continue_label-or-None).
        self._loop_stack: List[Tuple[str, Optional[str]]] = []
        self.epilogue_label = self._new_label("epilogue")

    # -- emission helpers ---------------------------------------------------

    def emit(self, op: str, *operands, subop: Optional[str] = None) -> Instr:
        instr = Instr(op, tuple(operands), subop=subop, line=self._cur_line)
        self.instrs.append(instr)
        return instr

    def _new_label(self, hint: str = "L") -> str:
        label = "%s_%d" % (hint, self._label_counter)
        self._label_counter += 1
        return label

    def _place_label(self, label: str) -> None:
        if label in self.labels:
            raise CompileError("internal: duplicate label %r" % label)
        self.labels[label] = len(self.instrs)

    def _reg(self, depth: int) -> Reg:
        return Reg(_EVAL_REGS[min(depth, len(_EVAL_REGS) - 1)])

    # -- static types ---------------------------------------------------------

    def _static_type(self, expr: ast.Expr) -> str:
        """Best-effort compile-time type of ``expr`` as a type string.

        Pointers end with ``"*"``; struct values are the bare struct
        name.  Legacy programs that traffic raw addresses in ``int``s
        stay legal: dereferencing a non-pointer yields ``"int"`` rather
        than an error.  The only hard failures are struct misuse
        (diagnosed in :meth:`_member_field`).
        """
        if isinstance(expr, ast.NumberLit):
            return "float" if isinstance(expr.value, float) else "int"
        if isinstance(expr, ast.VarRef):
            slot = self.layout.slots.get(expr.name)
            if slot is not None:
                if slot.array_size is not None:
                    return slot.type_name + "*"
                return slot.type_name
            gtype = self.module.global_types.get(expr.name)
            if gtype is not None:
                var = self.module.global_vars.get(expr.name)
                if var is not None and var.is_array:
                    return gtype + "*"
                return gtype
            if expr.name in self.module.function_names:
                return "int*"
            return "int"
        if isinstance(expr, ast.FuncRef):
            return "int*"
        if isinstance(expr, ast.Unary):
            if expr.op == "*":
                return self._peel_pointer(self._static_type(expr.operand))
            if expr.op == "&":
                return self._static_type(expr.operand) + "*"
            return "int"
        if isinstance(expr, ast.Member):
            return self._member_field(expr).type_name
        if isinstance(expr, ast.New):
            return expr.type_name + "*"
        if isinstance(expr, ast.SizeOf):
            return "int"
        if isinstance(expr, ast.Index):
            return self._peel_pointer(self._static_type(expr.base))
        if isinstance(expr, ast.Call):
            if expr.name in BUILTINS:
                return "int*" if expr.name == "malloc" else "int"
            return self.module.signatures.get(expr.name, "int")
        if isinstance(expr, ast.Binary):
            left = self._static_type(expr.left)
            right = self._static_type(expr.right)
            if expr.op in ("+", "-") and left.endswith("*"):
                return left
            if expr.op == "+" and right.endswith("*"):
                return right
            if "float" in (left, right):
                return "float"
            return "int"
        if isinstance(expr, ast.Conditional):
            return self._static_type(expr.then)
        return "int"

    @staticmethod
    def _peel_pointer(type_name: str) -> str:
        """Pointee (or array element) type; lenient for int-as-address:
        dereferencing an ``int`` holding a raw address stays ``int``."""
        return type_name[:-1] if type_name.endswith("*") else type_name

    def _member_field(self, expr: ast.Member) -> StructField:
        """Resolve ``base.f`` / ``base->f`` to its field, or diagnose."""
        base_type = self._static_type(expr.base)
        structs = self.module.structs
        if expr.arrow:
            if not base_type.endswith("*"):
                raise CompileError(
                    "'->%s' applied to non-pointer value of type %r"
                    % (expr.name, base_type), expr.line, expr.col)
            layout = structs.get(base_type[:-1])
            if layout is None:
                raise CompileError(
                    "'->%s' through pointer to non-struct type %r"
                    % (expr.name, base_type), expr.line, expr.col)
        else:
            layout = structs.get(base_type)
            if layout is None:
                if base_type.endswith("*"):
                    raise CompileError(
                        "'.%s' applied to pointer of type %r (use '->%s')"
                        % (expr.name, base_type, expr.name),
                        expr.line, expr.col)
                raise CompileError(
                    "'.%s' applied to non-struct value of type %r"
                    % (expr.name, base_type), expr.line, expr.col)
        field = layout.fields.get(expr.name)
        if field is None:
            raise CompileError(
                "struct %s has no field %r" % (layout.name, expr.name),
                expr.line, expr.col)
        return field

    # -- top level -----------------------------------------------------------

    def compile(self) -> Function:
        body = self.func.body or ast.Block()
        self._cur_line = self.func.line
        # Prologue.
        self.emit(Opcode.PUSH, Reg("fp"))
        self.emit(Opcode.MOV, Reg("fp"), Reg("sp"))
        if self.layout.stack_words:
            self.emit(Opcode.BINOP, Reg("sp"), Reg("sp"),
                      Imm(self.layout.stack_words), subop="sub")
        for reg in self.layout.used_callee_saved:
            self.emit(Opcode.PUSH, Reg(reg))
        # Body.
        self._stmt(body)
        # Fall-through return value 0.
        self._cur_line = None
        self.emit(Opcode.MOV, Reg("r0"), Imm(0))
        # Epilogue.
        self._place_label(self.epilogue_label)
        for reg in reversed(self.layout.used_callee_saved):
            self.emit(Opcode.POP, Reg(reg))
        self.emit(Opcode.MOV, Reg("sp"), Reg("fp"))
        self.emit(Opcode.POP, Reg("fp"))
        self.emit(Opcode.RET)

        function = Function(
            name=self.func.name,
            instrs=self.instrs,
            params=[name for name in self.layout.params],
        )
        for slot in self.layout.slots.values():
            if slot.storage == "reg":
                function.reg_locals[slot.name] = slot.reg
            else:
                function.local_offsets[slot.name] = slot.offset
        return function

    # -- statements ------------------------------------------------------------

    def _stmt(self, stmt: ast.Stmt) -> None:
        self._cur_line = stmt.line or self._cur_line
        if isinstance(stmt, ast.Block):
            for child in stmt.body:
                self._stmt(child)
        elif isinstance(stmt, ast.LocalDecl):
            if stmt.init is not None:
                self._assign_to_name(stmt.name, stmt.init, stmt.line)
        elif isinstance(stmt, ast.Assign):
            self._assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, 0)
        elif isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.While):
            self._while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._for(stmt)
        elif isinstance(stmt, ast.Switch):
            self._switch(stmt)
        elif isinstance(stmt, ast.Break):
            if not self._loop_stack:
                raise CompileError("break outside loop/switch", stmt.line)
            self.emit(Opcode.JMP, Label(self._loop_stack[-1][0]))
        elif isinstance(stmt, ast.Continue):
            target = None
            for break_label, continue_label in reversed(self._loop_stack):
                if continue_label is not None:
                    target = continue_label
                    break
            if target is None:
                raise CompileError("continue outside loop", stmt.line)
            self.emit(Opcode.JMP, Label(target))
        elif isinstance(stmt, ast.Delete):
            target_type = self._static_type(stmt.target)
            if not target_type.endswith("*"):
                raise CompileError(
                    "delete of a non-pointer expression (type %r)"
                    % target_type, stmt.line, stmt.col)
            self._eval(stmt.target, 0)
            self.emit(Opcode.SYS, subop="free")
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value, 0)
            else:
                self.emit(Opcode.MOV, Reg("r0"), Imm(0))
            self.emit(Opcode.JMP, Label(self.epilogue_label))
        else:
            raise CompileError("unsupported statement %r" % type(stmt).__name__,
                               stmt.line)

    def _assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if (stmt.op is None
                and is_struct_value(self._static_type(target),
                                    self.module.structs)):
            self._assign_struct_copy(stmt)
            return
        if isinstance(target, ast.VarRef):
            value = stmt.value
            if stmt.op is not None:
                # Compound assignment to a name: re-reading the name is a
                # pure load, so plain desugaring is exact.
                value = ast.Binary(line=stmt.line, op=stmt.op,
                                   left=target, right=value)
            self._assign_to_name(target.name, value, stmt.line)
            return
        if isinstance(target, ast.Index):
            addr_eval = lambda depth: self._eval_addr_index(target, depth)
        elif isinstance(target, ast.Unary) and target.op == "*":
            addr_eval = lambda depth: self._eval(target.operand, depth)
        elif isinstance(target, ast.Member):
            addr_eval = lambda depth: self._eval_addr_of(target, depth)
        else:
            raise CompileError("bad assignment target", stmt.line)
        if stmt.op is None:
            if isinstance(target, ast.Member):
                # value in r0, struct base address in r1, static field
                # offset folded into the store's addressing mode.
                self._eval(stmt.value, 0)
                offset = self._member_addr(target, 1)
                self.emit(Opcode.ST, Mem(Reg("r1"), offset), Reg("r0"))
                return
            # value in r0, element address in r1.
            self._eval(stmt.value, 0)
            addr_eval(1)
            self.emit(Opcode.ST, Mem(Reg("r1")), Reg("r0"))
            return
        # Compound assignment through memory: the address (and any side
        # effects in it) must be evaluated exactly once.
        subop = _BINOP_MAP.get(stmt.op)
        if subop is None:
            raise CompileError("unknown operator %r=" % stmt.op, stmt.line)
        addr_eval(0)
        self.emit(Opcode.PUSH, Reg("r0"))
        self._eval(stmt.value, 0)
        self.emit(Opcode.POP, Reg("r1"))
        self.emit(Opcode.LD, Reg("r2"), Mem(Reg("r1")))
        self.emit(Opcode.BINOP, Reg("r0"), Reg("r2"), Reg("r0"),
                  subop=subop)
        self.emit(Opcode.ST, Mem(Reg("r1")), Reg("r0"))

    def _assign_to_name(self, name: str, value: ast.Expr, line: int) -> None:
        slot = self.layout.slots.get(name)
        self._eval(value, 0)
        if slot is not None:
            if slot.storage == "reg":
                self.emit(Opcode.MOV, Reg(slot.reg), Reg("r0"))
            else:
                if slot.array_size is not None:
                    raise CompileError("cannot assign to array %r" % name, line)
                self.emit(Opcode.ST, Mem(Reg("fp"), slot.offset), Reg("r0"))
            return
        var = self.module.global_vars.get(name)
        if var is not None:
            if var.is_array:
                raise CompileError("cannot assign to array %r" % name, line)
            self.emit(Opcode.LEA, Reg(_SCRATCH), Label(name))
            self.emit(Opcode.ST, Mem(Reg(_SCRATCH)), Reg("r0"))
            return
        raise CompileError("assignment to unknown variable %r" % name, line)

    def _assign_struct_copy(self, stmt: ast.Assign) -> None:
        """Whole-struct assignment: an unrolled word-by-word copy."""
        target_type = self._static_type(stmt.target)
        value_type = self._static_type(stmt.value)
        if value_type != target_type:
            raise CompileError(
                "cannot assign %r to struct %r" % (value_type, target_type),
                stmt.line)
        size = self.module.structs[target_type].size
        # Source struct address in r0, destination address in r1.
        self._eval_struct_addr(stmt.value, 0)
        self._eval_struct_addr(stmt.target, 1)
        for index in range(size):
            self.emit(Opcode.LD, Reg("r2"), Mem(Reg("r0"), index))
            self.emit(Opcode.ST, Mem(Reg("r1"), index), Reg("r2"))

    def _member_addr(self, expr: ast.Member, depth: int) -> int:
        """Struct base address of ``base.f`` / ``base->f`` into
        ``r{min(depth,2)}``; returns the field's static word offset
        (folded through nested ``.``-chains) for the caller's
        base+offset addressing mode."""
        field = self._member_field(expr)
        if expr.arrow:
            # The pointer's value *is* the struct base address.
            self._eval(expr.base, depth)
            return field.offset
        if isinstance(expr.base, ast.Member):
            return self._member_addr(expr.base, depth) + field.offset
        self._eval_struct_addr(expr.base, depth)
        return field.offset

    def _eval_struct_addr(self, expr: ast.Expr, depth: int) -> None:
        """Address of a struct-typed lvalue into ``r{min(depth,2)}``."""
        target = self._reg(depth)
        if isinstance(expr, ast.VarRef):
            slot = self.layout.slots.get(expr.name)
            if slot is not None:
                if slot.storage == "reg":
                    raise CompileError(
                        "internal: struct local %r in a register" % expr.name,
                        expr.line)
                self.emit(Opcode.BINOP, target, Reg("fp"), Imm(slot.offset),
                          subop="add")
                return
            if expr.name in self.module.global_vars:
                self.emit(Opcode.LEA, target, Label(expr.name))
                return
            raise CompileError("unknown variable %r" % expr.name, expr.line)
        if isinstance(expr, ast.Member):
            offset = self._member_addr(expr, depth)
            if offset:
                self.emit(Opcode.BINOP, target, target, Imm(offset),
                          subop="add")
            return
        if isinstance(expr, ast.Unary) and expr.op == "*":
            self._eval(expr.operand, depth)
            return
        if isinstance(expr, ast.Index):
            self._eval_addr_index(expr, depth)
            return
        raise CompileError("expected a struct lvalue", expr.line)

    def _if(self, stmt: ast.If) -> None:
        else_label = self._new_label("else")
        end_label = self._new_label("endif")
        self._eval(stmt.cond, 0)
        self.emit(Opcode.BRZ, Reg("r0"),
                  Label(else_label if stmt.otherwise else end_label))
        self._stmt(stmt.then)
        if stmt.otherwise is not None:
            self.emit(Opcode.JMP, Label(end_label))
            self._place_label(else_label)
            self._stmt(stmt.otherwise)
        self._place_label(end_label)

    def _while(self, stmt: ast.While) -> None:
        head = self._new_label("while")
        end = self._new_label("endwhile")
        self._place_label(head)
        self._cur_line = stmt.line
        self._eval(stmt.cond, 0)
        self.emit(Opcode.BRZ, Reg("r0"), Label(end))
        self._loop_stack.append((end, head))
        self._stmt(stmt.body)
        self._loop_stack.pop()
        self.emit(Opcode.JMP, Label(head))
        self._place_label(end)

    def _do_while(self, stmt: ast.DoWhile) -> None:
        head = self._new_label("do")
        cond_label = self._new_label("docond")
        end = self._new_label("enddo")
        self._place_label(head)
        self._loop_stack.append((end, cond_label))
        self._stmt(stmt.body)
        self._loop_stack.pop()
        self._place_label(cond_label)
        self._cur_line = stmt.line
        self._eval(stmt.cond, 0)
        self.emit(Opcode.BR, Reg("r0"), Label(head))
        self._place_label(end)

    def _for(self, stmt: ast.For) -> None:
        head = self._new_label("for")
        step_label = self._new_label("forstep")
        end = self._new_label("endfor")
        if stmt.init is not None:
            self._stmt(stmt.init)
        self._place_label(head)
        if stmt.cond is not None:
            self._cur_line = stmt.line
            self._eval(stmt.cond, 0)
            self.emit(Opcode.BRZ, Reg("r0"), Label(end))
        self._loop_stack.append((end, step_label))
        self._stmt(stmt.body)
        self._loop_stack.pop()
        self._place_label(step_label)
        if stmt.step is not None:
            self._cur_line = stmt.line
            self._stmt(stmt.step)
        self.emit(Opcode.JMP, Label(head))
        self._place_label(end)

    # -- switch ----------------------------------------------------------------

    def _switch(self, stmt: ast.Switch) -> None:
        end = self._new_label("endswitch")
        values = [case.value for case in stmt.cases if case.value is not None]
        has_default = any(case.value is None for case in stmt.cases)
        case_labels = {}
        default_label = end
        for case in stmt.cases:
            label = self._new_label(
                "case_%s" % ("default" if case.value is None else case.value))
            case_labels[id(case)] = label
            if case.value is None:
                default_label = label

        use_table = (
            len(values) >= JUMP_TABLE_MIN_CASES
            and len(set(values)) == len(values)
            and (max(values) - min(values) + 1)
            <= JUMP_TABLE_MAX_SPARSITY * len(values))

        self._eval(stmt.scrutinee, 0)
        if use_table:
            self._emit_jump_table(stmt, values, case_labels, default_label)
        else:
            for case in stmt.cases:
                if case.value is None:
                    continue
                self.emit(Opcode.BINOP, Reg("r1"), Reg("r0"),
                          Imm(case.value), subop="eq")
                self.emit(Opcode.BR, Reg("r1"),
                          Label(case_labels[id(case)]))
            self.emit(Opcode.JMP, Label(default_label))

        # Bodies in source order; fallthrough is preserved.
        self._loop_stack.append((end, None))
        for case in stmt.cases:
            self._place_label(case_labels[id(case)])
            for child in case.body:
                self._stmt(child)
        self._loop_stack.pop()
        self._place_label(end)

    def _emit_jump_table(self, stmt: ast.Switch, values: List[int],
                         case_labels: Dict[int, str],
                         default_label: str) -> None:
        low = min(values)
        high = max(values)
        table_name = "__jt_%s_%d" % (self.func.name, self.module.next_table_id())
        # Table entries: fully qualified code labels; holes go to default.
        label_for_value = {}
        for case in stmt.cases:
            if case.value is not None:
                label_for_value[case.value] = case_labels[id(case)]
        entries = []
        for value in range(low, high + 1):
            local = label_for_value.get(value, default_label)
            entries.append(Label("%s.%s" % (self.func.name, local)))
        self.module.program.add_data(DataDef(name=table_name, values=entries))

        # r0 holds the scrutinee.  Normalize, bounds-check, dispatch.
        self.emit(Opcode.BINOP, Reg("r0"), Reg("r0"), Imm(low), subop="sub")
        self.emit(Opcode.BINOP, Reg("r1"), Reg("r0"), Imm(0), subop="lt")
        self.emit(Opcode.BR, Reg("r1"), Label(default_label))
        self.emit(Opcode.BINOP, Reg("r1"), Reg("r0"),
                  Imm(high - low + 1), subop="ge")
        self.emit(Opcode.BR, Reg("r1"), Label(default_label))
        self.emit(Opcode.LEA, Reg("r1"), Label(table_name))
        self.emit(Opcode.BINOP, Reg("r1"), Reg("r1"), Reg("r0"), subop="add")
        self.emit(Opcode.LD, Reg("r1"), Mem(Reg("r1")))
        self.emit(Opcode.IJMP, Reg("r1"))

    # -- expressions --------------------------------------------------------------

    def _eval(self, expr: ast.Expr, depth: int) -> None:
        """Evaluate ``expr`` into ``r{min(depth, 2)}``."""
        self._cur_line = expr.line or self._cur_line
        target = self._reg(depth)
        if isinstance(expr, ast.NumberLit):
            self.emit(Opcode.MOV, target, Imm(expr.value))
        elif isinstance(expr, ast.VarRef):
            self._eval_varref(expr, target)
        elif isinstance(expr, ast.Index):
            self._eval_addr_index(expr, depth)
            self.emit(Opcode.LD, target, Mem(target))
        elif isinstance(expr, ast.Unary):
            self._eval_unary(expr, depth)
        elif isinstance(expr, ast.Binary):
            self._eval_binary(expr, depth)
        elif isinstance(expr, ast.Conditional):
            self._eval_conditional(expr, depth)
        elif isinstance(expr, ast.Call):
            self._eval_call(expr, depth)
        elif isinstance(expr, ast.Member):
            self._eval_member(expr, depth)
        elif isinstance(expr, ast.New):
            self._eval_new(expr, depth)
        elif isinstance(expr, ast.SizeOf):
            self.emit(Opcode.MOV, target,
                      Imm(type_size(expr.type_name, self.module.structs,
                                    expr.line, expr.col)))
        else:
            raise CompileError("unsupported expression %r" % type(expr).__name__,
                               expr.line)

    def _eval_member(self, expr: ast.Member, depth: int) -> None:
        """``base->f`` / ``base.f`` rvalue: base+offset load through the
        pointer register (a struct-valued field decays to its address)."""
        target = self._reg(depth)
        field = self._member_field(expr)
        offset = self._member_addr(expr, depth)
        if is_struct_value(field.type_name, self.module.structs):
            if offset:
                self.emit(Opcode.BINOP, target, target, Imm(offset),
                          subop="add")
            return
        self.emit(Opcode.LD, target, Mem(target, offset))

    def _eval_new(self, expr: ast.New, depth: int) -> None:
        """``new T`` — ``malloc(sizeof(struct T))`` through the syscall."""
        layout = self.module.structs.get(expr.type_name)
        if layout is None:
            raise CompileError("new of unknown struct %r" % expr.type_name,
                               expr.line, expr.col)
        call = ast.Call(line=expr.line, name="malloc",
                        args=[ast.NumberLit(line=expr.line,
                                            value=layout.size)])
        self._eval_builtin(call, depth, BUILTINS["malloc"])

    def _eval_varref(self, expr: ast.VarRef, target: Reg) -> None:
        slot = self.layout.slots.get(expr.name)
        if slot is not None:
            if slot.storage == "reg":
                self.emit(Opcode.MOV, target, Reg(slot.reg))
            elif (slot.array_size is not None
                    or is_struct_value(slot.type_name, self.module.structs)):
                # Array and struct-value names decay to their base address.
                self.emit(Opcode.BINOP, target, Reg("fp"), Imm(slot.offset),
                          subop="add")
            else:
                self.emit(Opcode.LD, target, Mem(Reg("fp"), slot.offset))
            return
        var = self.module.global_vars.get(expr.name)
        if var is not None:
            gtype = self.module.global_types.get(expr.name, "int")
            self.emit(Opcode.LEA, target, Label(expr.name))
            if not var.is_array and not is_struct_value(gtype,
                                                       self.module.structs):
                self.emit(Opcode.LD, target, Mem(target))
            return
        if expr.name in self.module.function_names:
            self.emit(Opcode.LEA, target, Label(expr.name))
            return
        raise CompileError("unknown variable %r" % expr.name, expr.line)

    def _eval_addr_index(self, expr: ast.Index, depth: int) -> None:
        """Element address of ``base[index]`` into ``r{min(depth,2)}``.

        Struct elements scale the index by the element word size.
        """
        target = self._reg(depth)
        element = self._peel_pointer(self._static_type(expr.base))
        scale = type_size(element, self.module.structs, expr.line)
        self._eval_addr_base(expr.base, depth)
        if (isinstance(expr.index, ast.NumberLit)
                and isinstance(expr.index.value, int)):
            if expr.index.value:
                self.emit(Opcode.BINOP, target, target,
                          Imm(expr.index.value * scale), subop="add")
            return

        def combine(dest, left, right):
            if scale != 1:
                self.emit(Opcode.BINOP, right, right, Imm(scale), subop="mul")
            self.emit(Opcode.BINOP, dest, left, right, subop="add")

        self._eval_spillsafe(expr.index, depth, combine)

    def _eval_addr_base(self, base: ast.Expr, depth: int) -> None:
        """Base address of an indexable expression into ``r{min(depth,2)}``."""
        target = self._reg(depth)
        if isinstance(base, ast.VarRef):
            slot = self.layout.slots.get(base.name)
            if slot is not None:
                if slot.storage == "reg":
                    # A register scalar used as a pointer base.
                    self.emit(Opcode.MOV, target, Reg(slot.reg))
                elif slot.array_size is not None:
                    self.emit(Opcode.BINOP, target, Reg("fp"),
                              Imm(slot.offset), subop="add")
                else:
                    self.emit(Opcode.LD, target, Mem(Reg("fp"), slot.offset))
                return
            var = self.module.global_vars.get(base.name)
            if var is not None:
                self.emit(Opcode.LEA, target, Label(base.name))
                if not var.is_array:
                    # A scalar global used as a pointer: load its value.
                    self.emit(Opcode.LD, target, Mem(target))
                return
            raise CompileError("unknown variable %r" % base.name, base.line)
        # Arbitrary pointer expression.
        self._eval(base, depth)

    def _eval_addr_of(self, expr: ast.Expr, depth: int) -> None:
        """``&expr`` — the address of an lvalue into ``r{min(depth,2)}``."""
        target = self._reg(depth)
        if isinstance(expr, ast.VarRef):
            slot = self.layout.slots.get(expr.name)
            if slot is not None:
                if slot.storage == "reg":
                    raise CompileError(
                        "internal: address taken of register local %r"
                        % expr.name, expr.line)
                self.emit(Opcode.BINOP, target, Reg("fp"), Imm(slot.offset),
                          subop="add")
                return
            if expr.name in self.module.global_vars:
                self.emit(Opcode.LEA, target, Label(expr.name))
                return
            raise CompileError("unknown variable %r" % expr.name, expr.line)
        if isinstance(expr, ast.Index):
            self._eval_addr_index(expr, depth)
            return
        if isinstance(expr, ast.Unary) and expr.op == "*":
            self._eval(expr.operand, depth)
            return
        if isinstance(expr, ast.Member):
            offset = self._member_addr(expr, depth)
            if offset:
                self.emit(Opcode.BINOP, target, target, Imm(offset),
                          subop="add")
            return
        raise CompileError("cannot take address of this expression", expr.line)

    def _eval_unary(self, expr: ast.Unary, depth: int) -> None:
        target = self._reg(depth)
        if expr.op == "&":
            self._eval_addr_of(expr.operand, depth)
            return
        if expr.op == "*":
            self._eval(expr.operand, depth)
            self.emit(Opcode.LD, target, Mem(target))
            return
        self._eval(expr.operand, depth)
        if expr.op == "-":
            self.emit(Opcode.UNOP, target, target, subop="neg")
        elif expr.op == "!":
            self.emit(Opcode.UNOP, target, target, subop="not")
        elif expr.op == "~":
            self.emit(Opcode.BINOP, target, target, Imm(-1), subop="xor")
        else:
            raise CompileError("unknown unary %r" % expr.op, expr.line)

    def _eval_binary(self, expr: ast.Binary, depth: int) -> None:
        target = self._reg(depth)
        if expr.op == "&&":
            done = self._new_label("andend")
            self._eval(expr.left, depth)
            self.emit(Opcode.BINOP, target, target, Imm(0), subop="ne")
            self.emit(Opcode.BRZ, target, Label(done))
            self._eval(expr.right, depth)
            self.emit(Opcode.BINOP, target, target, Imm(0), subop="ne")
            self._place_label(done)
            return
        if expr.op == "||":
            done = self._new_label("orend")
            self._eval(expr.left, depth)
            self.emit(Opcode.BINOP, target, target, Imm(0), subop="ne")
            self.emit(Opcode.BR, target, Label(done))
            self._eval(expr.right, depth)
            self.emit(Opcode.BINOP, target, target, Imm(0), subop="ne")
            self._place_label(done)
            return
        subop = _BINOP_MAP.get(expr.op)
        if subop is None:
            raise CompileError("unknown operator %r" % expr.op, expr.line)
        # Constant right operand: use an immediate, the common fast shape.
        if isinstance(expr.right, ast.NumberLit):
            self._eval(expr.left, depth)
            self.emit(Opcode.BINOP, target, target, Imm(expr.right.value),
                      subop=subop)
            return
        self._eval(expr.left, depth)
        self._eval_spillsafe(expr.right, depth, lambda dest, a, b: self.emit(
            Opcode.BINOP, dest, a, b, subop=subop))

    def _eval_spillsafe(self, right: ast.Expr, depth: int, combine) -> None:
        """Evaluate ``right`` while ``r{min(depth,2)}`` holds the live left
        value, then call ``combine(dest_reg, left_src, right_src)``.

        Below the register-stack limit the right operand lands in the next
        eval register.  At the limit, the left value is spilled to the
        machine stack and reloaded into the scratch register — the compiled
        code stays correct at any expression depth.
        """
        left = self._reg(depth)
        if depth < len(_EVAL_REGS) - 1:
            right_reg = self._reg(depth + 1)
            self._eval(right, depth + 1)
            combine(left, left, right_reg)
            return
        self.emit(Opcode.PUSH, left)
        self._eval(right, depth)        # right value now in `left`'s register
        self.emit(Opcode.LD, Reg(_SCRATCH), Mem(Reg("sp")))
        self.emit(Opcode.BINOP, Reg("sp"), Reg("sp"), Imm(1), subop="add")
        combine(left, Reg(_SCRATCH), left)

    def _eval_conditional(self, expr: ast.Conditional, depth: int) -> None:
        target = self._reg(depth)
        else_label = self._new_label("ternelse")
        end_label = self._new_label("ternend")
        self._eval(expr.cond, depth)
        self.emit(Opcode.BRZ, target, Label(else_label))
        self._eval(expr.then, depth)
        self.emit(Opcode.JMP, Label(end_label))
        self._place_label(else_label)
        self._eval(expr.otherwise, depth)
        self._place_label(end_label)

    # -- calls ----------------------------------------------------------------------

    def _eval_call(self, expr: ast.Call, depth: int) -> None:
        target = self._reg(depth)
        builtin = BUILTINS.get(expr.name)
        if builtin is not None:
            self._eval_builtin(expr, depth, builtin)
            return
        if expr.name not in self.module.function_names:
            raise CompileError("call to unknown function %r" % expr.name,
                               expr.line)
        live = [Reg(name) for name in _EVAL_REGS[:min(depth, len(_EVAL_REGS))]
                if name != target.name]
        for reg in live:
            self.emit(Opcode.PUSH, reg)
        # Args right-to-left so arg 0 ends at the top of the stack.  A
        # struct-by-value argument pushes all its words (last word first,
        # so the callee sees them ascending from its parameter slot).
        arg_words = 0
        for arg in reversed(expr.args):
            arg_type = self._static_type(arg)
            if is_struct_value(arg_type, self.module.structs):
                size = self.module.structs[arg_type].size
                self._eval_struct_addr(arg, 0)
                for index in reversed(range(size)):
                    self.emit(Opcode.LD, Reg("r1"), Mem(Reg("r0"), index))
                    self.emit(Opcode.PUSH, Reg("r1"))
                arg_words += size
                continue
            self._eval(arg, 0)
            self.emit(Opcode.PUSH, Reg("r0"))
            arg_words += 1
        self.emit(Opcode.CALL, Label(expr.name))
        if arg_words:
            self.emit(Opcode.BINOP, Reg("sp"), Reg("sp"),
                      Imm(arg_words), subop="add")
        if target.name != "r0":
            self.emit(Opcode.MOV, target, Reg("r0"))
        for reg in reversed(live):
            self.emit(Opcode.POP, reg)

    def _eval_builtin(self, expr: ast.Call, depth: int,
                      builtin: Tuple[int, bool]) -> None:
        nargs, has_result = builtin
        if len(expr.args) != nargs:
            raise CompileError(
                "%s() takes %d argument(s), got %d"
                % (expr.name, nargs, len(expr.args)), expr.line)
        target = self._reg(depth)
        live = [Reg(name) for name in _EVAL_REGS[:min(depth, len(_EVAL_REGS))]
                if name != target.name]
        for reg in live:
            self.emit(Opcode.PUSH, reg)
        # Arguments go to r0..r{n-1}; evaluate right-to-left through the
        # stack so earlier arg registers are not clobbered.
        if nargs == 1:
            self._eval(expr.args[0], 0)
        elif nargs == 2:
            self._eval(expr.args[1], 0)
            self.emit(Opcode.PUSH, Reg("r0"))
            self._eval(expr.args[0], 0)
            self.emit(Opcode.POP, Reg("r1"))
        # spawn's first argument must be a function name.
        if expr.name == "spawn":
            first = expr.args[0]
            is_func = (isinstance(first, ast.VarRef)
                       and first.name in self.module.function_names)
            if not is_func and not isinstance(
                    first, (ast.Index, ast.Unary, ast.Member)):
                raise CompileError("spawn() needs a function or pointer",
                                   expr.line)
        self.emit(Opcode.SYS, subop=expr.name)
        if has_result and target.name != "r0":
            self.emit(Opcode.MOV, target, Reg("r0"))
        for reg in reversed(live):
            self.emit(Opcode.POP, reg)


class ModuleCompiler:
    """Compiles a full translation unit into a linked :class:`Program`."""

    def __init__(self, unit: ast.TranslationUnit, name: str = "a.out") -> None:
        self.unit = unit
        self.program = Program(name=name)
        self.global_vars: Dict[str, GlobalVar] = {}
        self.global_types: Dict[str, str] = {}
        self.function_names = {func.name for func in unit.functions}
        self.signatures: Dict[str, str] = {
            func.name: func.return_type for func in unit.functions}
        self.structs = build_struct_table(unit.structs)
        self._table_id = 0

    def next_table_id(self) -> int:
        self._table_id += 1
        return self._table_id

    def compile(self) -> Program:
        for decl in self.unit.globals:
            if decl.type_name == "void":
                raise CompileError("global %r cannot have type void"
                                   % decl.name, decl.line)
            element = type_size(decl.type_name, self.structs, decl.line)
            size = (decl.array_size or 1) * element
            init = None
            if decl.init is not None:
                if len(decl.init) > size:
                    raise CompileError(
                        "initialiser longer than array %r" % decl.name,
                        decl.line)
                init = list(decl.init)
            var = GlobalVar(name=decl.name, size=size, init=init,
                            is_array=decl.array_size is not None)
            self.program.add_global(var)
            self.global_vars[decl.name] = var
            self.global_types[decl.name] = decl.type_name

        labels_by_function: Dict[str, Dict[str, int]] = {}
        for func in self.unit.functions:
            compiler = _FunctionCompiler(self, func)
            function = compiler.compile()
            self.program.add_function(function)
            labels_by_function[func.name] = compiler.labels

        if "main" not in self.program.functions:
            raise CompileError("no main() function")
        return self.program.link(labels_by_function)
