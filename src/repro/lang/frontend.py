"""One-call MiniC frontend: source text to a linked, runnable program."""

from __future__ import annotations

from repro.isa.program import Program
from repro.lang.codegen import ModuleCompiler
from repro.lang.parser import parse


def compile_source(source: str, name: str = "a.out") -> Program:
    """Compile MiniC ``source`` into a linked :class:`Program`.

    Raises :class:`~repro.lang.errors.CompileError` on any lexical,
    syntactic, or semantic problem; the error message carries the source
    line.
    """
    unit = parse(source)
    return ModuleCompiler(unit, name=name).compile()
