"""Compilation error type shared by the MiniC lexer, parser and codegen."""

from __future__ import annotations

from typing import Optional


class CompileError(Exception):
    """A MiniC compilation failure with source position information."""

    def __init__(self, message: str, line: Optional[int] = None,
                 col: Optional[int] = None) -> None:
        location = ""
        if line is not None:
            location = " at line %d" % line
            if col is not None:
                location += ":%d" % col
        super().__init__(message + location)
        self.line = line
        self.col = col
