"""MiniC abstract syntax tree node definitions.

Every node carries the source line it starts on; the code generator copies
that line onto every instruction it emits for the node, building the line
table the debugger and statement-level slicer rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

Number = Union[int, float]


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

@dataclass
class Expr:
    line: int = 0


@dataclass
class NumberLit(Expr):
    value: Number = 0


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class Index(Expr):
    """``base[index]`` — base is an array variable or pointer expression."""
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Unary(Expr):
    """``-e``, ``!e``, ``*e`` (deref), ``&lvalue`` (address-of), ``~e``."""
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Call(Expr):
    """A user-function call or builtin (spawn/lock/print/...)."""
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class FuncRef(Expr):
    """A bare function name used as a value (e.g. ``spawn(worker, 1)``)."""
    name: str = ""


@dataclass
class Conditional(Expr):
    """``cond ? a : b``."""
    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    otherwise: Optional[Expr] = None


@dataclass
class Member(Expr):
    """``base.field`` (``arrow=False``) or ``base->field`` (``arrow=True``).

    ``col`` is the column of the field-name token, so struct-misuse
    diagnostics can point at the offending token.
    """
    base: Optional[Expr] = None
    name: str = ""
    arrow: bool = False
    col: int = 0


@dataclass
class New(Expr):
    """``new T`` — heap-allocate one ``struct T``; sugar for
    ``malloc(sizeof(struct T))``."""
    type_name: str = ""
    col: int = 0


@dataclass
class SizeOf(Expr):
    """``sizeof(type)`` — resolved to a word-count immediate in codegen."""
    type_name: str = ""
    col: int = 0


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    body: List[Stmt] = field(default_factory=list)


@dataclass
class LocalDecl(Stmt):
    """``int x;`` / ``int x = e;`` / ``int a[10];`` inside a function."""
    type_name: str = "int"
    name: str = ""
    array_size: Optional[int] = None
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    """``target = value`` where target is VarRef, Index, or Unary('*').

    ``op`` carries the compound-assignment operator (``"+"`` for ``+=``
    and so on); None for a plain assignment.  ``x++`` / ``x--`` desugar to
    compound assignments with a literal 1.
    """
    target: Optional[Expr] = None
    value: Optional[Expr] = None
    op: Optional[str] = None


@dataclass
class DoWhile(Stmt):
    """``do body while (cond);`` — body executes at least once."""
    body: Optional[Stmt] = None
    cond: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: Optional[Stmt] = None


@dataclass
class SwitchCase:
    """One ``case value:`` arm; ``value is None`` is the default arm."""
    value: Optional[int] = None
    body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Switch(Stmt):
    scrutinee: Optional[Expr] = None
    cases: List[SwitchCase] = field(default_factory=list)


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Delete(Stmt):
    """``delete p;`` — free the heap object ``p`` points to; sugar for
    ``free(p)`` with a pointer-type check at compile time."""
    target: Optional[Expr] = None
    col: int = 0


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------

@dataclass
class GlobalDecl:
    """``int g;`` / ``float f = 1.5;`` / ``int a[8] = {1,2,3};``"""
    type_name: str = "int"
    name: str = ""
    array_size: Optional[int] = None
    init: Optional[List[Number]] = None
    line: int = 0


@dataclass
class FuncDef:
    name: str = ""
    return_type: str = "int"
    params: List[Tuple[str, str]] = field(default_factory=list)  # (type, name)
    body: Optional[Block] = None
    line: int = 0


@dataclass
class StructDecl:
    """``struct Name { type field; ... };`` — fields are (type, name)
    pairs; field types may be scalars, pointers, or other structs
    (by value, giving nested cumulative offsets)."""
    name: str = ""
    fields: List[Tuple[str, str]] = field(default_factory=list)
    line: int = 0


@dataclass
class TranslationUnit:
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)
    structs: List[StructDecl] = field(default_factory=list)
