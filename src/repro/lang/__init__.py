"""MiniC: a small C-like language compiled to the mini-ISA.

The workloads, bug analogs, and examples are all written in MiniC rather
than raw assembly, because the paper's two precision problems only arise in
*compiled* code:

* ``switch`` statements with dense integer cases lower to a jump table
  dispatched through an indirect jump (``ijmp``), so the statically built
  CFG misses successor edges (paper Section 5.1, Figure 7);
* scalar locals are register-allocated into callee-saved registers
  ``r4``..``r7``, which functions save and restore with ``push``/``pop``
  pairs at entry/exit, creating the spurious save/restore data dependences
  the paper prunes (Section 5.2, Figure 8).

Language summary::

    int g;  float f;  int table[8];          // globals (arrays allowed)
    struct Node {                            // struct declarations:
        int value;                           //   word-sized field offsets
        struct Node* next;                   //   pointer + nested-struct
    };                                       //   fields, sizeof-driven
    int worker(int arg) {                    // functions, int/float params
        int i; int acc = 0;                  // locals (regs or stack)
        struct Node* n = new Node;           // heap objects: new/delete
        n->value = arg;                      // -> and (*p).field access
        for (i = 0; i < arg; i = i + 1) {    // for / while / if / switch
            acc = acc + table[i % 8];
        }
        delete n;                            // lowers to the free syscall
        return worker(acc / 2);              // recursion (self and mutual)
    }                                        // expressions: full C operator
                                             //   set incl. && || ! & * (ptr)

Structs are laid out with word-sized fields at sizeof-driven offsets;
struct-typed locals/globals/params work by value, and ``p->field`` /
``(*p).field`` compile to base+offset loads and stores through the
pointer register.  ``new T`` / ``delete p`` lower to the ``malloc`` /
``free`` syscalls (deterministic heap addresses; exact-size free-list
reuse), so heap topology replays bit-identically.  Field-access and
``delete`` misuse raise :class:`CompileError` with line/column
positions.

Builtins map 1:1 to VM syscalls: ``spawn(fn, arg)``, ``join(tid)``,
``lock(&m)``, ``unlock(&m)``, ``print(v)``, ``input()``, ``rand(n)``,
``time()``, ``malloc(n)``, ``free(p)``, ``assert(cond, code)``,
``yield()``, ``sleep(n)``, ``exit(code)``.
"""

from repro.lang.errors import CompileError
from repro.lang.frontend import compile_source
from repro.lang.lexer import tokenize
from repro.lang.parser import parse

__all__ = ["CompileError", "compile_source", "parse", "tokenize"]
