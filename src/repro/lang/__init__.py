"""MiniC: a small C-like language compiled to the mini-ISA.

The workloads, bug analogs, and examples are all written in MiniC rather
than raw assembly, because the paper's two precision problems only arise in
*compiled* code:

* ``switch`` statements with dense integer cases lower to a jump table
  dispatched through an indirect jump (``ijmp``), so the statically built
  CFG misses successor edges (paper Section 5.1, Figure 7);
* scalar locals are register-allocated into callee-saved registers
  ``r4``..``r7``, which functions save and restore with ``push``/``pop``
  pairs at entry/exit, creating the spurious save/restore data dependences
  the paper prunes (Section 5.2, Figure 8).

Language summary::

    int g;  float f;  int table[8];          // globals (arrays allowed)
    int worker(int arg) {                    // functions, int/float params
        int i; int acc = 0;                  // locals (regs or stack)
        for (i = 0; i < arg; i = i + 1) {    // for / while / if / switch
            acc = acc + table[i % 8];
        }
        return acc;                          // expressions: full C operator
    }                                        //   set incl. && || ! & * (ptr)

Builtins map 1:1 to VM syscalls: ``spawn(fn, arg)``, ``join(tid)``,
``lock(&m)``, ``unlock(&m)``, ``print(v)``, ``input()``, ``rand(n)``,
``time()``, ``malloc(n)``, ``free(p)``, ``assert(cond, code)``,
``yield()``, ``sleep(n)``, ``exit(code)``.
"""

from repro.lang.errors import CompileError
from repro.lang.frontend import compile_source
from repro.lang.lexer import tokenize
from repro.lang.parser import parse

__all__ = ["CompileError", "compile_source", "parse", "tokenize"]
