"""MiniC lexer: source text to a token stream.

Tokens carry line/column for error reporting and — more importantly here —
for the debug line table: every emitted instruction is attributed to the
source line of the statement it implements, which is what statement-level
slices and debugger breakpoints key on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Union

from repro.lang.errors import CompileError

KEYWORDS = frozenset((
    "int", "float", "void", "if", "else", "while", "do", "for", "switch",
    "case", "default", "break", "continue", "return",
    "struct", "new", "delete", "sizeof",
))

#: Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = (
    "<<=", ">>=",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "++", "--", "->",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
)
_SINGLE_OPS = "+-*/%<>=!&|^~(){}[];,?:."


@dataclass(frozen=True)
class Token:
    kind: str                      # "ident" | "int" | "float" | "kw" | "op" | "eof"
    text: str
    value: Union[int, float, None]
    line: int
    col: int

    def __repr__(self) -> str:
        return "Token(%s, %r, line %d)" % (self.kind, self.text, self.line)


def tokenize(source: str) -> List[Token]:
    """Lex ``source`` into a token list terminated by an ``eof`` token."""
    tokens: List[Token] = []
    line = 1
    col = 1
    index = 0
    length = len(source)

    def error(message: str) -> CompileError:
        return CompileError(message, line, col)

    while index < length:
        ch = source[index]
        # Whitespace.
        if ch == "\n":
            line += 1
            col = 1
            index += 1
            continue
        if ch in " \t\r":
            index += 1
            col += 1
            continue
        # Comments.
        if source.startswith("//", index):
            end = source.find("\n", index)
            index = length if end < 0 else end
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[index:end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            index = end + 2
            continue
        # Numbers (int and float literals; leading digit or ".5" form).
        if ch.isdigit() or (ch == "." and index + 1 < length
                            and source[index + 1].isdigit()):
            start = index
            seen_dot = False
            seen_exp = False
            while index < length:
                c = source[index]
                if c.isdigit():
                    index += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    index += 1
                elif c in "eE" and not seen_exp and index > start:
                    seen_exp = True
                    index += 1
                    if index < length and source[index] in "+-":
                        index += 1
                elif c == "x" and index == start + 1 and source[start] == "0":
                    # Hex literal.
                    index += 1
                    while index < length and source[index] in "0123456789abcdefABCDEF":
                        index += 1
                    break
                else:
                    break
            if index < length and (source[index] == "."
                                   or source[index].isalpha()
                                   or source[index] == "_"):
                raise error("bad numeric literal %r"
                            % source[start:index + 1])
            text = source[start:index]
            try:
                if text.startswith("0x") or text.startswith("0X"):
                    value: Union[int, float] = int(text, 16)
                    kind = "int"
                elif seen_dot or seen_exp:
                    value = float(text)
                    kind = "float"
                else:
                    value = int(text)
                    kind = "int"
            except ValueError:
                raise error("bad numeric literal %r" % text)
            tokens.append(Token(kind, text, value, line, col))
            col += len(text)
            continue
        # Identifiers / keywords.
        if ch.isalpha() or ch == "_":
            start = index
            while index < length and (source[index].isalnum()
                                      or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, None, line, col))
            col += len(text)
            continue
        # Operators and punctuation.
        matched = None
        for op in _MULTI_OPS:
            if source.startswith(op, index):
                matched = op
                break
        if matched is None and ch in _SINGLE_OPS:
            matched = ch
        if matched is None:
            raise error("unexpected character %r" % ch)
        tokens.append(Token("op", matched, None, line, col))
        index += len(matched)
        col += len(matched)

    tokens.append(Token("eof", "", None, line, col))
    return tokens
